"""Benchmark / regeneration harness for experiment E06.

Reproduces the Section 4 topology ordering: the ring (weak local mixing) is
the hardest topology for encounter-rate density estimation; the 2-D torus is
within a modest factor of the complete graph; 3-D torus, hypercube, and
expander essentially match independent sampling.
"""


def test_e06_topology_comparison(experiment_runner):
    result = experiment_runner("E06")
    epsilons = {record["topology"]: record["empirical_epsilon"] for record in result.records}
    assert "ring" in epsilons and "complete" in epsilons and "torus2d" in epsilons
    # The ring is never better than the complete graph; the torus sits between.
    assert epsilons["ring"] >= epsilons["complete"] * 0.9
    assert epsilons["torus2d"] <= epsilons["ring"] * 1.5
