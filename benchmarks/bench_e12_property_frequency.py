"""Benchmark / regeneration harness for experiment E12.

Reproduces the Section 5.2 property-frequency estimator: the ratio of marked
to overall encounter rates converges to the true relative frequency as the
round budget grows.
"""


def test_e12_property_frequency(experiment_runner):
    result = experiment_runner("E12")
    errors = result.column("median_relative_error")
    fractions = result.column("fraction_within_epsilon")
    assert errors[-1] <= errors[0]
    assert fractions[-1] >= fractions[0]
