"""Benchmark / regeneration harness for experiment E22.

Reproduces the Section 6.2 cooperation question: the majority vote over the
agents' individual quorum decisions fails at most about as often as a typical
individual agent, and usually much less often.
"""


def test_e22_collective_quorum(experiment_runner):
    result = experiment_runner("E22")
    for record in result.records:
        assert (
            record["collective_failure_rate"]
            <= record["individual_failure_rate"] + 0.15
        )
    # At the most separated settings the collective decision is essentially always right.
    extremes = [result.records[0], result.records[-1]]
    for record in extremes:
        assert record["collective_failure_rate"] <= 0.25
