"""Benchmark / regeneration harness for experiment E01.

Reproduces the Theorem 1 accuracy-vs-rounds curve on the two-dimensional
torus: the empirical ε should decay roughly as ``t^{-1/2}`` (times a log
factor) and stay above the pure independent-sampling prediction.
"""


def test_e01_accuracy_vs_rounds(experiment_runner):
    result = experiment_runner("E01")
    epsilons = result.column("empirical_epsilon")
    rounds = result.column("rounds")
    # More rounds => smaller error (the headline shape of Theorem 1).
    assert rounds == sorted(rounds)
    assert epsilons[-1] < epsilons[0]
