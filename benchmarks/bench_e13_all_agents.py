"""Benchmark / regeneration harness for experiment E13.

Reproduces the Section 3.1 union-bound remark: at the delta/n budget the
whole population is simultaneously accurate in most trials, and the budget
is only logarithmically larger than the single-agent budget.
"""


def test_e13_all_agents_union_bound(experiment_runner):
    result = experiment_runner("E13")
    rows = {record["budget"]: record for record in result.records}
    single = rows["single_agent_budget"]
    union = rows["union_bound_budget"]
    assert union["rounds"] >= single["rounds"]
    # At the union-bound budget most agents are simultaneously within epsilon.
    assert union["mean_fraction_of_agents_within"] >= single["mean_fraction_of_agents_within"]
    assert union["mean_fraction_of_agents_within"] > 0.8
