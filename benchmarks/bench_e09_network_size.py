"""Benchmark / regeneration harness for experiment E09.

Reproduces the Section 5.1 network-size estimation trade-off: Algorithm 2
with longer walks uses fewer walks (and therefore fewer burn-in link
queries) than the [KLSC14] single-shot baseline, at comparable accuracy.
"""


def test_e09_network_size_estimation(experiment_runner):
    result = experiment_runner("E09")
    algorithm_rows = [r for r in result.records if r["method"] == "algorithm2"]
    baseline_rows = [r for r in result.records if r["method"] == "katzir_baseline"]
    assert algorithm_rows and baseline_rows
    for graph in {r["graph"] for r in result.records}:
        graph_rows = [r for r in algorithm_rows if r["graph"] == graph]
        baseline = next(r for r in baseline_rows if r["graph"] == graph)
        # The longest-walk configuration uses no more walks than the baseline.
        longest = max(graph_rows, key=lambda r: r["rounds"])
        assert longest["num_walks"] <= baseline["num_walks"]
