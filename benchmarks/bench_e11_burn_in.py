"""Benchmark / regeneration harness for experiment E11.

Reproduces the Section 5.1.4 burn-in ablation: walks that are not burned in
are clustered near the seed, collide too often, and underestimate the
network size; the bias vanishes as the burn-in approaches the prescription.
"""


def test_e11_burn_in_sensitivity(experiment_runner):
    result = experiment_runner("E11")
    burn_ins = result.column("burn_in_steps")
    biases = [abs(b) for b in result.column("signed_bias")]
    assert burn_ins == sorted(burn_ins)
    # No (or almost no) burn-in gives a strongly biased estimate.
    assert result.records[0]["signed_bias"] < -0.3
    # The longest burn-in reduces the bias magnitude substantially.
    assert biases[-1] < biases[0] * 0.5
