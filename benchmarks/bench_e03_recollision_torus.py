"""Benchmark / regeneration harness for experiment E03.

Reproduces the Lemma 4 / Corollary 10 re-collision and equalization
probability decay on the torus: roughly ``1/(m+1)``, and always below a
constant multiple of the stated bound.
"""


def test_e03_recollision_torus(experiment_runner):
    result = experiment_runner("E03")
    probabilities = result.column("recollision_probability")
    bounds_column = result.column("lemma4_bound")
    assert probabilities[-1] < probabilities[0]
    for probability, bound in zip(probabilities, bounds_column):
        assert probability <= 4.0 * bound + 0.05
