"""Benchmark: the analytic backend vs the fused simulating backend.

ISSUE 8 acceptance gates, all measured on ``run_kernel`` itself so nothing
but the backend differs:

1. **Speedup**: on E01-class workloads at ``replicates=1000`` the analytic
   solve must be at least ``MIN_SPEEDUP`` (100x) faster than the fused
   simulation — replicates drop out of the analytic cost model entirely,
   so the gap *grows* with R (measured ~160x on Torus2D(32) and ~250x on
   Torus2D(48) on the reference container).
2. **O(1) in replicates**: the analytic backend's ``R=1000`` median must
   stay within ``MAX_REPLICATE_RATIO`` (3x) of its ``R=10`` median — the
   replicate axis is a broadcast view, so R never enters the arithmetic.
3. **Agreement**: before timing anything, the fused simulation's grand
   mean and pooled sample variance must land inside the analytic theory
   bands (``ORACLE_SAFETY`` standard errors) on every workload — the law
   being fast is worthless if it is not the law being sampled.

The measurements are written to ``BENCH_analytic.json`` — one record per
(workload, backend, replicates) with the median seconds and the speedup,
stamped with the shared provenance block — so the CI benchmarks job can
upload it and ``repro bench history`` can track the trajectory alongside
``BENCH_kernel.json``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_analytic.py

or through pytest (the assertions are the acceptance gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_analytic.py -s
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from _timing import best_of, write_bench_report
from repro.core.analytic import solve
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.topology.complete import CompleteGraph
from repro.topology.torus import Torus2D

MIN_SPEEDUP = 100.0
MAX_REPLICATE_RATIO = 3.0
ORACLE_SAFETY = 6.0
SMALL_REPLICATES = 10
LARGE_REPLICATES = 1000
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_analytic.json"


@dataclass(frozen=True)
class Workload:
    """One timed (topology, config) payload, replicates supplied per pass."""

    name: str
    topology_fn: Callable[[], object]
    config_fn: Callable[[], SimulationConfig]


WORKLOADS = (
    # The E01 quick profile: ~0.1 density on a 32-torus, 100 rounds.
    Workload(
        "E01-class torus",
        lambda: Torus2D(32),
        lambda: SimulationConfig(num_agents=104, rounds=100),
    ),
    # The same density regime on a bigger torus (the E05 direction).
    Workload(
        "E05-class torus",
        lambda: Torus2D(48),
        lambda: SimulationConfig(num_agents=232, rounds=100),
    ),
    # Well-mixed reference: the closed-form p_m path, no sparse recursion.
    Workload(
        "well-mixed complete graph",
        lambda: CompleteGraph(1024),
        lambda: SimulationConfig(num_agents=104, rounds=100),
    ),
)


def _run(workload: Workload, backend: str, replicates: int, seed: int = 0):
    return run_kernel(
        workload.topology_fn(), workload.config_fn(), replicates, seed, backend=backend
    )


def _assert_fused_inside_theory_bands(workload: Workload) -> None:
    """The agreement gate: fused moments inside the analytic oracle bands."""
    topology, config = workload.topology_fn(), workload.config_fn()
    solution = solve(topology, config)
    replicates = 64
    estimates = run_kernel(topology, config, replicates, 1234, backend="fused").estimates()
    total = estimates.size

    grand_sd = math.sqrt(solution.grand_mean_variance(replicates))
    mean_gap = abs(float(estimates.mean()) - solution.density)
    assert mean_gap < ORACLE_SAFETY * grand_sd, (
        f"{workload.name}: fused grand mean is {mean_gap / grand_sd:.1f} standard "
        f"errors from the analytic mean (gate: {ORACLE_SAFETY})"
    )

    expected_var = solution.expected_sample_variance(replicates)
    var_se = (
        expected_var
        * math.sqrt(2.0 / (total - 1))
        * math.sqrt(max(1.0, solution.variance_inflation))
    )
    var_gap = abs(float(estimates.var(ddof=1)) - expected_var)
    assert var_gap < ORACLE_SAFETY * var_se, (
        f"{workload.name}: fused sample variance is {var_gap / var_se:.1f} standard "
        f"errors from the analytic expectation (gate: {ORACLE_SAFETY})"
    )


def measure() -> list[dict]:
    """Per-(workload, backend, replicates) records."""
    records = []
    for workload in WORKLOADS:
        _assert_fused_inside_theory_bands(workload)
        # Best-of timing: the analytic solves are a few milliseconds, where a
        # single scheduler hiccup doubles a median; the best pass is the one
        # least biased by background load (same reduction as best_pair).
        analytic_small = best_of(
            lambda: _run(workload, "analytic", SMALL_REPLICATES), repeats=7
        )
        analytic_large = best_of(
            lambda: _run(workload, "analytic", LARGE_REPLICATES), repeats=7
        )
        fused_large = best_of(lambda: _run(workload, "fused", LARGE_REPLICATES), repeats=3)
        speedup = fused_large / analytic_large
        replicate_ratio = analytic_large / analytic_small
        # The replicate count joins the workload label: bench history keys
        # series on (benchmark, workload, backend), and the R=10 / R=1000
        # analytic passes are distinct series, not two points per build.
        records.extend(
            [
                {
                    "workload": f"{workload.name} R={SMALL_REPLICATES}",
                    "backend": "analytic",
                    "replicates": SMALL_REPLICATES,
                    "median_seconds": analytic_small,
                    "speedup": fused_large / analytic_small,
                },
                {
                    "workload": f"{workload.name} R={LARGE_REPLICATES}",
                    "backend": "analytic",
                    "replicates": LARGE_REPLICATES,
                    "median_seconds": analytic_large,
                    "speedup": speedup,
                    "replicate_ratio": replicate_ratio,
                },
                {
                    "workload": f"{workload.name} R={LARGE_REPLICATES}",
                    "backend": "fused",
                    "replicates": LARGE_REPLICATES,
                    "median_seconds": fused_large,
                    "speedup": 1.0,
                },
            ]
        )
        print(
            f"{workload.name:28s} analytic R={LARGE_REPLICATES} {analytic_large * 1e3:7.2f}ms "
            f"fused {fused_large:7.4f}s speedup {speedup:6.1f}x "
            f"R-ratio {replicate_ratio:4.2f}"
        )
    return records


def write_report(records: list[dict], path: Optional[Path] = None) -> Path:
    """Write the machine-readable benchmark record (BENCH_analytic.json)."""
    return write_bench_report(
        OUTPUT_PATH if path is None else path,
        "bench_analytic",
        {
            "min_speedup": MIN_SPEEDUP,
            "max_replicate_ratio": MAX_REPLICATE_RATIO,
            "oracle_safety": ORACLE_SAFETY,
            "small_replicates": SMALL_REPLICATES,
            "large_replicates": LARGE_REPLICATES,
        },
        records,
    )


def test_analytic_backend_meets_gates() -> None:
    """Acceptance gates: the 100x speedup and the O(1)-in-replicates ratio."""
    records = measure()
    path = write_report(records)
    print(f"wrote {path}")

    large = [
        r for r in records if r["backend"] == "analytic" and r["replicates"] == LARGE_REPLICATES
    ]
    for record in large:
        assert record["speedup"] >= MIN_SPEEDUP, (
            f"{record['workload']}: analytic is only {record['speedup']:.1f}x faster "
            f"than fused at R={LARGE_REPLICATES} — below the {MIN_SPEEDUP:.0f}x gate"
        )
        assert record["replicate_ratio"] <= MAX_REPLICATE_RATIO, (
            f"{record['workload']}: R={LARGE_REPLICATES} costs "
            f"{record['replicate_ratio']:.2f}x the R={SMALL_REPLICATES} solve — the "
            f"analytic backend must be O(1) in replicates "
            f"(gate: {MAX_REPLICATE_RATIO}x)"
        )


if __name__ == "__main__":
    test_analytic_backend_meets_gates()
    print("benchmark gate passed")
