"""Micro-benchmarks of the library's hot paths.

These are genuine pytest-benchmark timings (many iterations) of the
primitives the macro-experiments are built from: vectorised stepping,
collision counting, the full Algorithm 1 simulation, and the network-size
pipeline. They exist so performance regressions in the substrate are caught
independently of the experiment tables.
"""

import time

import networkx as nx
import numpy as np
import pytest

from repro.core.encounter import (
    batched_collision_counts,
    batched_collision_counts_linear,
    collision_counts,
    linear_counting_is_faster,
)
from repro.core.estimator import RandomWalkDensityEstimator
from repro.netsize.pipeline import NetworkSizeEstimationPipeline
from repro.topology.graph import NetworkXTopology
from repro.topology.hypercube import Hypercube
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D
from repro.walks.recollision import recollision_profile


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestSteppingThroughput:
    def test_torus_step_10k_agents(self, benchmark, rng):
        torus = Torus2D(256)
        positions = torus.uniform_nodes(10_000, rng)
        benchmark(lambda: torus.step_many(positions, rng))

    def test_ring_step_10k_agents(self, benchmark, rng):
        ring = Ring(100_000)
        positions = ring.uniform_nodes(10_000, rng)
        benchmark(lambda: ring.step_many(positions, rng))

    def test_hypercube_step_10k_agents(self, benchmark, rng):
        cube = Hypercube(20)
        positions = cube.uniform_nodes(10_000, rng)
        benchmark(lambda: cube.step_many(positions, rng))

    def test_graph_step_10k_walkers(self, benchmark, rng):
        topology = NetworkXTopology(nx.random_regular_graph(4, 5000, seed=0))
        positions = topology.uniform_nodes(10_000, rng)
        benchmark(lambda: topology.step_many(positions, rng))


class TestCollisionCounting:
    def test_collision_counts_10k_agents(self, benchmark, rng):
        positions = rng.integers(0, 65_536, size=10_000)
        benchmark(lambda: collision_counts(positions))

    def test_collision_counts_dense(self, benchmark, rng):
        # Dense regime: many collisions per node.
        positions = rng.integers(0, 100, size=10_000)
        benchmark(lambda: collision_counts(positions))


class TestCountingCrossover:
    """The unique-vs-bincount crossover grid pinning the auto heuristic.

    The fused fast path chooses between the sort-based and the linear
    (scatter-add) counting primitive with
    :func:`repro.core.encounter.linear_counting_is_faster`. This grid
    measures both primitives across (R, n, A) regimes from dense batched
    macro-workloads to huge sparse grids, prints the measured ratios next
    to the heuristic's verdict, and asserts the heuristic picks the faster
    side wherever the measurement is decisive (>= 1.5x either way —
    near-crossover points are noise and intentionally unasserted).
    """

    #: (replicates, agents, nodes): dense suite regimes, the crossover
    #: neighbourhood, clearly sort-favoured sparse grids, and the large-n
    #: frontier (million-agent rows) where the linear path's count buffer
    #: approaches the memory cap and the blocked variant takes over.
    GRID = (
        (32, 200, 1_024),
        (32, 200, 2_304),
        (64, 200, 2_304),
        (1, 232, 2_304),
        (8, 2_000, 65_536),
        (32, 200, 100_000),
        (32, 50, 262_144),
        (1, 16, 1_000_000),
        (8, 1_000_000, 65_536),
        (4, 1_000_000, 1_048_576),
        (1, 1_000_000, 1_000_000),
    )

    @staticmethod
    def _median_seconds(fn, repeats=5, inner=20):
        fn()
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(inner):
                fn()
            samples.append((time.perf_counter() - start) / inner)
        return sorted(samples)[len(samples) // 2]

    def test_heuristic_matches_measured_crossover(self, rng):
        rows = []
        for replicates, agents, nodes in self.GRID:
            positions = rng.integers(0, nodes, size=(replicates, agents))
            # Million-agent points would take minutes at the default inner
            # count; scale it down so each point costs roughly the same.
            inner = max(1, min(20, 2_000_000 // max(replicates * agents, 1)))
            sort_seconds = self._median_seconds(
                lambda: batched_collision_counts(positions, nodes), inner=inner
            )
            linear_seconds = self._median_seconds(
                lambda: batched_collision_counts_linear(positions, nodes), inner=inner
            )
            ratio = sort_seconds / linear_seconds  # > 1 means linear wins
            predicted = linear_counting_is_faster(replicates, agents, nodes)
            rows.append((replicates, agents, nodes, ratio, predicted))
            print(
                f"R={replicates:3d} n={agents:5d} A={nodes:8d}: sort/linear "
                f"{ratio:6.2f}x heuristic={'linear' if predicted else 'sort'}"
            )
        for replicates, agents, nodes, ratio, predicted in rows:
            if ratio >= 1.5:
                assert predicted, (
                    f"R={replicates} n={agents} A={nodes}: linear measured "
                    f"{ratio:.2f}x faster but the heuristic picked the sort path"
                )
            elif ratio <= 1 / 1.5:
                assert not predicted, (
                    f"R={replicates} n={agents} A={nodes}: sort measured "
                    f"{1 / ratio:.2f}x faster but the heuristic picked the linear path"
                )


class TestEndToEnd:
    def test_algorithm1_small_run(self, benchmark):
        torus = Torus2D(48)
        estimator = RandomWalkDensityEstimator(torus, num_agents=232, rounds=100)
        benchmark.pedantic(lambda: estimator.run(seed=0), rounds=3, iterations=1, warmup_rounds=0)

    def test_recollision_profile_torus(self, benchmark):
        torus = Torus2D(64)
        benchmark.pedantic(
            lambda: recollision_profile(torus, 32, trials=2000, seed=0),
            rounds=3,
            iterations=1,
            warmup_rounds=0,
        )

    def test_network_size_pipeline(self, benchmark):
        topology = NetworkXTopology(nx.random_regular_graph(4, 600, seed=1), name="expander")
        pipeline = NetworkSizeEstimationPipeline(topology, num_walks=80, rounds=25, burn_in=25)
        benchmark.pedantic(lambda: pipeline.run(seed=0), rounds=3, iterations=1, warmup_rounds=0)
