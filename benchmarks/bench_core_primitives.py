"""Micro-benchmarks of the library's hot paths.

These are genuine pytest-benchmark timings (many iterations) of the
primitives the macro-experiments are built from: vectorised stepping,
collision counting, the full Algorithm 1 simulation, and the network-size
pipeline. They exist so performance regressions in the substrate are caught
independently of the experiment tables.
"""

import networkx as nx
import numpy as np
import pytest

from repro.core.encounter import collision_counts
from repro.core.estimator import RandomWalkDensityEstimator
from repro.netsize.pipeline import NetworkSizeEstimationPipeline
from repro.topology.graph import NetworkXTopology
from repro.topology.hypercube import Hypercube
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D
from repro.walks.recollision import recollision_profile


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestSteppingThroughput:
    def test_torus_step_10k_agents(self, benchmark, rng):
        torus = Torus2D(256)
        positions = torus.uniform_nodes(10_000, rng)
        benchmark(lambda: torus.step_many(positions, rng))

    def test_ring_step_10k_agents(self, benchmark, rng):
        ring = Ring(100_000)
        positions = ring.uniform_nodes(10_000, rng)
        benchmark(lambda: ring.step_many(positions, rng))

    def test_hypercube_step_10k_agents(self, benchmark, rng):
        cube = Hypercube(20)
        positions = cube.uniform_nodes(10_000, rng)
        benchmark(lambda: cube.step_many(positions, rng))

    def test_graph_step_10k_walkers(self, benchmark, rng):
        topology = NetworkXTopology(nx.random_regular_graph(4, 5000, seed=0))
        positions = topology.uniform_nodes(10_000, rng)
        benchmark(lambda: topology.step_many(positions, rng))


class TestCollisionCounting:
    def test_collision_counts_10k_agents(self, benchmark, rng):
        positions = rng.integers(0, 65_536, size=10_000)
        benchmark(lambda: collision_counts(positions))

    def test_collision_counts_dense(self, benchmark, rng):
        # Dense regime: many collisions per node.
        positions = rng.integers(0, 100, size=10_000)
        benchmark(lambda: collision_counts(positions))


class TestEndToEnd:
    def test_algorithm1_small_run(self, benchmark):
        torus = Torus2D(48)
        estimator = RandomWalkDensityEstimator(torus, num_agents=232, rounds=100)
        benchmark.pedantic(lambda: estimator.run(seed=0), rounds=3, iterations=1, warmup_rounds=0)

    def test_recollision_profile_torus(self, benchmark):
        torus = Torus2D(64)
        benchmark.pedantic(
            lambda: recollision_profile(torus, 32, trials=2000, seed=0),
            rounds=3,
            iterations=1,
            warmup_rounds=0,
        )

    def test_network_size_pipeline(self, benchmark):
        topology = NetworkXTopology(nx.random_regular_graph(4, 600, seed=1), name="expander")
        pipeline = NetworkSizeEstimationPipeline(topology, num_walks=80, rounds=25, burn_in=25)
        benchmark.pedantic(lambda: pipeline.run(seed=0), rounds=3, iterations=1, warmup_rounds=0)
