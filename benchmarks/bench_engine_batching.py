"""Benchmark: batched replicate execution vs the sequential per-replicate loop.

Measures the engine's headline win (ISSUE 1 acceptance criterion): running
R = 32 replicates of Algorithm 1 (200 agents x 400 rounds on
``Torus2D(side=64)``) as one ``(R, n)`` matrix simulation must beat running
the same 32 replicates through ``simulate_density_estimation`` one at a time
by at least 3x throughput. The measurements are written to
``BENCH_batching.json`` with the shared provenance block so ``repro bench
history`` can track them across PRs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_batching.py

or through pytest (the assertion is the acceptance gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_batching.py -s
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from _timing import best_of, write_bench_report
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.engine import simulate_density_estimation_batch
from repro.topology.torus import Torus2D
from repro.utils.rng import spawn_seed_sequences

SIDE = 64
NUM_AGENTS = 200
ROUNDS = 400
REPLICATES = 32
MIN_SPEEDUP = 3.0
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batching.json"


def _run_sequential(seed: int = 0) -> np.ndarray:
    """The legacy path: one serial kernel run per replicate.

    Pinned to the reference backend: this is the pre-engine loop the ISSUE 1
    gate was defined against, and the gate measures the value of *batching*
    relative to it. The fused fast path (ISSUE 5) accelerates serial runs
    too; its own gate lives in bench_fastpath.py.
    """
    topology = Torus2D(SIDE)
    config = SimulationConfig(num_agents=NUM_AGENTS, rounds=ROUNDS)
    totals = np.empty((REPLICATES, NUM_AGENTS), dtype=np.float64)
    for index, child in enumerate(spawn_seed_sequences(seed, REPLICATES)):
        totals[index] = run_kernel(
            topology, config, None, child, backend="reference"
        ).collision_totals
    return totals


def _run_batched(seed: int = 0) -> np.ndarray:
    """The engine path: all replicates as one matrix simulation."""
    topology = Torus2D(SIDE)
    config = SimulationConfig(num_agents=NUM_AGENTS, rounds=ROUNDS)
    return simulate_density_estimation_batch(topology, config, REPLICATES, seed).collision_totals


def measure() -> dict[str, float]:
    sequential_seconds = best_of(_run_sequential)
    batched_seconds = best_of(_run_batched)
    return {
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "sequential_replicates_per_second": REPLICATES / sequential_seconds,
        "batched_replicates_per_second": REPLICATES / batched_seconds,
        "speedup": sequential_seconds / batched_seconds,
    }


def _report(stats: dict[str, float]) -> None:
    print(
        f"\n{REPLICATES} replicates of ({NUM_AGENTS} agents x {ROUNDS} rounds "
        f"on Torus2D(side={SIDE}))"
    )
    print(
        f"  sequential loop : {stats['sequential_seconds']:7.3f} s "
        f"({stats['sequential_replicates_per_second']:6.1f} replicates/s)"
    )
    print(
        f"  batched engine  : {stats['batched_seconds']:7.3f} s "
        f"({stats['batched_replicates_per_second']:6.1f} replicates/s)"
    )
    print(f"  speedup         : {stats['speedup']:7.2f}x (gate: >= {MIN_SPEEDUP}x)")


def write_report(stats: dict[str, float], path: Path | None = None) -> Path:
    """Write the machine-readable benchmark record (BENCH_batching.json)."""
    workload = f"{REPLICATES}x({NUM_AGENTS} agents x {ROUNDS} rounds) torus-{SIDE}"
    records = [
        {
            "workload": workload,
            "kind": "macro",
            "backend": "sequential",
            "best_seconds": stats["sequential_seconds"],
            "replicates_per_second": stats["sequential_replicates_per_second"],
            "speedup": 1.0,
        },
        {
            "workload": workload,
            "kind": "macro",
            "backend": "batched",
            "best_seconds": stats["batched_seconds"],
            "replicates_per_second": stats["batched_replicates_per_second"],
            "speedup": stats["speedup"],
        },
    ]
    return write_bench_report(
        OUTPUT_PATH if path is None else path,
        "bench_engine_batching",
        {"min_speedup": MIN_SPEEDUP},
        records,
    )


def test_batched_engine_speedup():
    """Acceptance gate: batched throughput >= 3x the sequential loop."""
    stats = measure()
    _report(stats)
    print(f"wrote {write_report(stats)}")

    # Same workload, so the estimates must agree statistically: both paths
    # are unbiased estimators of the same density.
    density = (NUM_AGENTS - 1) / (SIDE * SIDE)
    batched_mean = _run_batched().mean() / ROUNDS
    assert abs(batched_mean - density) / density < 0.1

    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"batched engine speedup {stats['speedup']:.2f}x below the {MIN_SPEEDUP}x gate"
    )


if __name__ == "__main__":
    test_batched_engine_speedup()
