"""Benchmark: the fused kernel fast path vs the reference round loop.

ISSUE 5 acceptance gates, all measured on `run_kernel` itself so nothing
but the backend differs:

1. **Macro**: on the batched macro-workloads the experiment suite actually
   runs (E14-class noisy ablation, E19-class movement models, E20-class
   boundary comparison, plus a marked-agent E12-class profile), the fused
   backend must be at least ``MIN_MACRO_SPEEDUP`` (2.5x) faster than the
   reference backend on **at least two** workloads, and never slower than
   ``MIN_MACRO_FLOOR`` on any.
2. **Micro**: on small-grid micro cases (tiny serial runs, sparse rings,
   a handful of replicates — the regime where per-run arming overhead
   could in principle hurt), ``backend="auto"`` must never fall below
   ``MIN_MICRO_RATIO`` (0.9x) of the reference backend.
3. **Bit-identity**: before timing anything, every workload's fused result
   is compared against its reference result array-for-array.

The measurements are also written to ``BENCH_kernel.json`` — one record
per (workload, backend) with the median seconds and the speedup — so the
kernel's performance trajectory is machine-readable across PRs (the CI
benchmarks job uploads it as an artifact).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fastpath.py

or through pytest (the assertions are the acceptance gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fastpath.py -s
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro import __version__
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.swarm.noise import NoisyCollisionModel
from repro.topology.bounded_grid import BoundedGrid
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D
from repro.walks.movement import LazyRandomWalk, UniformRandomWalk

MIN_MACRO_SPEEDUP = 2.5
MIN_MACRO_HITS = 2
MIN_MACRO_FLOOR = 0.9
MIN_MICRO_RATIO = 0.9
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


@dataclass(frozen=True)
class Workload:
    """One timed (topology, config, replicates) kernel payload."""

    name: str
    kind: str  # "macro" | "micro"
    build: Callable[[], tuple]
    #: Number of seeded kernel calls per timed pass (micro cases run many
    #: small calls so per-run overhead, the thing they guard, dominates).
    calls: int = 1


def _macro(name, topology_fn, config_fn, replicates=32):
    return Workload(
        name=name,
        kind="macro",
        build=lambda: (topology_fn(), config_fn(), replicates),
    )


WORKLOADS = (
    # The regimes the suite's full configurations run in (cf. the E14/E19/
    # E20 experiment configs and bench_kernel_migration.py).
    _macro(
        "E14-class noisy ablation",
        lambda: Torus2D(48),
        lambda: SimulationConfig(
            num_agents=200,
            rounds=400,
            collision_model=NoisyCollisionModel(miss_probability=0.3, spurious_rate=0.05),
        ),
    ),
    _macro(
        "E19-class uniform movement",
        lambda: Torus2D(48),
        lambda: SimulationConfig(num_agents=200, rounds=300, movement=UniformRandomWalk()),
    ),
    _macro(
        "E19-class lazy movement",
        lambda: Torus2D(48),
        lambda: SimulationConfig(
            num_agents=200, rounds=300, movement=LazyRandomWalk(stay_probability=0.1)
        ),
    ),
    _macro(
        "E20-class bounded grid",
        lambda: BoundedGrid(32),
        lambda: SimulationConfig(num_agents=206, rounds=300),
    ),
    _macro(
        "E20-class torus",
        lambda: Torus2D(32),
        lambda: SimulationConfig(num_agents=206, rounds=300),
    ),
    _macro(
        "E12-class marked profile",
        lambda: Torus2D(48),
        lambda: SimulationConfig(num_agents=200, rounds=300, marked_fraction=0.3),
    ),
    # Small-grid micro cases: per-run overhead regime for the auto floor.
    Workload(
        name="micro serial small torus",
        kind="micro",
        build=lambda: (Torus2D(16), SimulationConfig(num_agents=40, rounds=60), None),
        calls=40,
    ),
    Workload(
        name="micro serial sparse ring",
        kind="micro",
        build=lambda: (Ring(5000), SimulationConfig(num_agents=8, rounds=50), None),
        calls=40,
    ),
    Workload(
        name="micro tiny batch",
        kind="micro",
        build=lambda: (Torus2D(12), SimulationConfig(num_agents=20, rounds=40), 4),
        calls=40,
    ),
)


def _run(workload: Workload, backend: str, seed_base: int = 0):
    topology, config, replicates = workload.build()
    result = None
    for index in range(workload.calls):
        result = run_kernel(topology, config, replicates, seed_base + index, backend=backend)
    return result


def _assert_bit_identical(workload: Workload) -> None:
    reference = _run(workload, "reference")
    for backend in ("fused", "auto"):
        other = _run(workload, backend)
        for field in ("collision_totals", "marked_collision_totals", "final_positions", "marked"):
            assert np.array_equal(getattr(reference, field), getattr(other, field)), (
                f"{workload.name}: backend {backend!r} diverged from reference on {field}"
            )


def _median_seconds(workload: Workload, backend: str, repeats: int = 5) -> float:
    _run(workload, backend)  # warm caches / first-touch allocations
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        _run(workload, backend)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def measure() -> list[dict]:
    """Per-(workload, backend) records; interleaved timing keeps pairs fair."""
    records = []
    for workload in WORKLOADS:
        _assert_bit_identical(workload)
        fast_backend = "fused" if workload.kind == "macro" else "auto"
        reference_seconds = _median_seconds(workload, "reference")
        fast_seconds = _median_seconds(workload, fast_backend)
        speedup = reference_seconds / fast_seconds
        records.append(
            {
                "workload": workload.name,
                "kind": workload.kind,
                "backend": "reference",
                "median_seconds": reference_seconds,
                "speedup": 1.0,
            }
        )
        records.append(
            {
                "workload": workload.name,
                "kind": workload.kind,
                "backend": fast_backend,
                "median_seconds": fast_seconds,
                "speedup": speedup,
            }
        )
        print(
            f"{workload.name:32s} reference {reference_seconds:7.4f}s "
            f"{fast_backend:9s} {fast_seconds:7.4f}s speedup {speedup:5.2f}x"
        )
    return records


def write_report(records: list[dict], path: Optional[Path] = None) -> Path:
    """Write the machine-readable benchmark record (BENCH_kernel.json)."""
    path = OUTPUT_PATH if path is None else path
    payload = {
        "benchmark": "bench_fastpath",
        "version": __version__,
        "gates": {
            "min_macro_speedup": MIN_MACRO_SPEEDUP,
            "min_macro_hits": MIN_MACRO_HITS,
            "min_macro_floor": MIN_MACRO_FLOOR,
            "min_micro_ratio": MIN_MICRO_RATIO,
        },
        "records": records,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def test_fused_backend_meets_speedup_gates() -> None:
    """Acceptance gates: macro speedups, macro floor, and the auto micro floor."""
    records = measure()
    path = write_report(records)
    print(f"wrote {path}")

    macro = [r for r in records if r["kind"] == "macro" and r["backend"] != "reference"]
    micro = [r for r in records if r["kind"] == "micro" and r["backend"] != "reference"]

    hits = [r for r in macro if r["speedup"] >= MIN_MACRO_SPEEDUP]
    assert len(hits) >= MIN_MACRO_HITS, (
        f"only {len(hits)} macro workload(s) reached {MIN_MACRO_SPEEDUP}x "
        f"(need {MIN_MACRO_HITS}); measured: "
        + ", ".join(f"{r['workload']}={r['speedup']:.2f}x" for r in macro)
    )
    for record in macro:
        assert record["speedup"] >= MIN_MACRO_FLOOR, (
            f"{record['workload']}: fused backend is {record['speedup']:.2f}x — "
            f"below the {MIN_MACRO_FLOOR}x floor"
        )
    for record in micro:
        assert record["speedup"] >= MIN_MICRO_RATIO, (
            f"{record['workload']}: auto backend is {record['speedup']:.2f}x of "
            f"reference — below the {MIN_MICRO_RATIO}x small-grid floor"
        )


if __name__ == "__main__":
    test_fused_backend_meets_speedup_gates()
    print("benchmark gate passed")
