"""Benchmark: the fused kernel fast path vs the reference round loop.

ISSUE 5 acceptance gates, all measured on `run_kernel` itself so nothing
but the backend differs:

1. **Macro**: on the batched macro-workloads the experiment suite actually
   runs (E14-class noisy ablation, E19-class movement models, E20-class
   boundary comparison, plus a marked-agent E12-class profile), the fused
   backend must be at least ``MIN_MACRO_SPEEDUP`` (2.5x) faster than the
   reference backend on **at least two** workloads, and never slower than
   ``MIN_MACRO_FLOOR`` on any.
2. **Micro**: on small-grid micro cases (tiny serial runs, sparse rings,
   a handful of replicates — the regime where per-run arming overhead
   could in principle hurt), ``backend="auto"`` must never fall below
   ``MIN_MICRO_RATIO`` (0.9x) of the reference backend.
3. **Bit-identity**: before timing anything, every workload's fused result
   is compared against its reference result array-for-array.
4. **Telemetry overhead** (ISSUE 6): installing a live
   :class:`~repro.obs.telemetry.TelemetryRecorder` on a macro workload must
   cost at most ``MAX_TELEMETRY_OVERHEAD`` (5%) over the no-op default —
   which upper-bounds the no-op default's own overhead, since the no-op
   does strictly less work per probe site.

The measurements are also written to ``BENCH_kernel.json`` — one record
per (workload, backend) with the median seconds and the speedup, stamped
with the shared provenance block — so the kernel's performance trajectory
is machine-readable across PRs (the CI benchmarks job uploads it as an
artifact and feeds it through ``repro bench history``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fastpath.py

or through pytest (the assertions are the acceptance gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fastpath.py -s
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from _timing import interleaved_pairs, median_of, write_bench_report
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.obs.telemetry import TelemetryRecorder, use_telemetry
from repro.swarm.noise import NoisyCollisionModel
from repro.topology.bounded_grid import BoundedGrid
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D
from repro.walks.movement import LazyRandomWalk, UniformRandomWalk

MIN_MACRO_SPEEDUP = 2.5
MIN_MACRO_HITS = 2
MIN_MACRO_FLOOR = 0.9
MIN_MICRO_RATIO = 0.9
MAX_TELEMETRY_OVERHEAD = 1.05
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


@dataclass(frozen=True)
class Workload:
    """One timed (topology, config, replicates) kernel payload."""

    name: str
    kind: str  # "macro" | "micro"
    build: Callable[[], tuple]
    #: Number of seeded kernel calls per timed pass (micro cases run many
    #: small calls so per-run overhead, the thing they guard, dominates).
    calls: int = 1


def _macro(name, topology_fn, config_fn, replicates=32):
    return Workload(
        name=name,
        kind="macro",
        build=lambda: (topology_fn(), config_fn(), replicates),
    )


WORKLOADS = (
    # The regimes the suite's full configurations run in (cf. the E14/E19/
    # E20 experiment configs and bench_kernel_migration.py).
    _macro(
        "E14-class noisy ablation",
        lambda: Torus2D(48),
        lambda: SimulationConfig(
            num_agents=200,
            rounds=400,
            collision_model=NoisyCollisionModel(miss_probability=0.3, spurious_rate=0.05),
        ),
    ),
    _macro(
        "E19-class uniform movement",
        lambda: Torus2D(48),
        lambda: SimulationConfig(num_agents=200, rounds=300, movement=UniformRandomWalk()),
    ),
    _macro(
        "E19-class lazy movement",
        lambda: Torus2D(48),
        lambda: SimulationConfig(
            num_agents=200, rounds=300, movement=LazyRandomWalk(stay_probability=0.1)
        ),
    ),
    _macro(
        "E20-class bounded grid",
        lambda: BoundedGrid(32),
        lambda: SimulationConfig(num_agents=206, rounds=300),
    ),
    _macro(
        "E20-class torus",
        lambda: Torus2D(32),
        lambda: SimulationConfig(num_agents=206, rounds=300),
    ),
    _macro(
        "E12-class marked profile",
        lambda: Torus2D(48),
        lambda: SimulationConfig(num_agents=200, rounds=300, marked_fraction=0.3),
    ),
    # Small-grid micro cases: per-run overhead regime for the auto floor.
    Workload(
        name="micro serial small torus",
        kind="micro",
        build=lambda: (Torus2D(16), SimulationConfig(num_agents=40, rounds=60), None),
        calls=40,
    ),
    Workload(
        name="micro serial sparse ring",
        kind="micro",
        build=lambda: (Ring(5000), SimulationConfig(num_agents=8, rounds=50), None),
        calls=40,
    ),
    Workload(
        name="micro tiny batch",
        kind="micro",
        build=lambda: (Torus2D(12), SimulationConfig(num_agents=20, rounds=40), 4),
        calls=40,
    ),
)


def _run(workload: Workload, backend: str, seed_base: int = 0):
    topology, config, replicates = workload.build()
    result = None
    for index in range(workload.calls):
        result = run_kernel(topology, config, replicates, seed_base + index, backend=backend)
    return result


def _assert_bit_identical(workload: Workload) -> None:
    reference = _run(workload, "reference")
    for backend in ("fused", "auto"):
        other = _run(workload, backend)
        for field in ("collision_totals", "marked_collision_totals", "final_positions", "marked"):
            assert np.array_equal(getattr(reference, field), getattr(other, field)), (
                f"{workload.name}: backend {backend!r} diverged from reference on {field}"
            )


def _median_seconds(workload: Workload, backend: str, repeats: int = 5) -> float:
    # median_of warms caches / first-touch allocations with an untimed call.
    return median_of(lambda: _run(workload, backend), repeats=repeats)


def measure() -> list[dict]:
    """Per-(workload, backend) records; interleaved timing keeps pairs fair."""
    records = []
    for workload in WORKLOADS:
        _assert_bit_identical(workload)
        fast_backend = "fused" if workload.kind == "macro" else "auto"
        reference_seconds = _median_seconds(workload, "reference")
        fast_seconds = _median_seconds(workload, fast_backend)
        speedup = reference_seconds / fast_seconds
        records.append(
            {
                "workload": workload.name,
                "kind": workload.kind,
                "backend": "reference",
                "median_seconds": reference_seconds,
                "speedup": 1.0,
            }
        )
        records.append(
            {
                "workload": workload.name,
                "kind": workload.kind,
                "backend": fast_backend,
                "median_seconds": fast_seconds,
                "speedup": speedup,
            }
        )
        print(
            f"{workload.name:32s} reference {reference_seconds:7.4f}s "
            f"{fast_backend:9s} {fast_seconds:7.4f}s speedup {speedup:5.2f}x"
        )
    return records


def write_report(records: list[dict], path: Optional[Path] = None) -> Path:
    """Write the machine-readable benchmark record (BENCH_kernel.json)."""
    return write_bench_report(
        OUTPUT_PATH if path is None else path,
        "bench_fastpath",
        {
            "min_macro_speedup": MIN_MACRO_SPEEDUP,
            "min_macro_hits": MIN_MACRO_HITS,
            "min_macro_floor": MIN_MACRO_FLOOR,
            "min_micro_ratio": MIN_MICRO_RATIO,
            "max_telemetry_overhead": MAX_TELEMETRY_OVERHEAD,
        },
        records,
    )


def test_fused_backend_meets_speedup_gates() -> None:
    """Acceptance gates: macro speedups, macro floor, and the auto micro floor."""
    records = measure()
    path = write_report(records)
    print(f"wrote {path}")

    macro = [r for r in records if r["kind"] == "macro" and r["backend"] != "reference"]
    micro = [r for r in records if r["kind"] == "micro" and r["backend"] != "reference"]

    hits = [r for r in macro if r["speedup"] >= MIN_MACRO_SPEEDUP]
    assert len(hits) >= MIN_MACRO_HITS, (
        f"only {len(hits)} macro workload(s) reached {MIN_MACRO_SPEEDUP}x "
        f"(need {MIN_MACRO_HITS}); measured: "
        + ", ".join(f"{r['workload']}={r['speedup']:.2f}x" for r in macro)
    )
    for record in macro:
        assert record["speedup"] >= MIN_MACRO_FLOOR, (
            f"{record['workload']}: fused backend is {record['speedup']:.2f}x — "
            f"below the {MIN_MACRO_FLOOR}x floor"
        )
    for record in micro:
        assert record["speedup"] >= MIN_MICRO_RATIO, (
            f"{record['workload']}: auto backend is {record['speedup']:.2f}x of "
            f"reference — below the {MIN_MICRO_RATIO}x small-grid floor"
        )


def test_telemetry_overhead_within_gate() -> None:
    """Observability gate: telemetry costs at most 5% on a macro workload.

    There is no probe-free build to compare against, so the gate times a
    live ``"events"``-level recorder against the no-op default. The no-op
    does strictly less work at every probe site (one attribute lookup plus
    a predicted branch), so the measured ratio upper-bounds the default's
    overhead — the quantity the telemetry spine promises stays at ≤ a few
    percent.
    """
    # The heaviest macro workload, 4 runs per timed sample: percent-level
    # ratios need samples long enough (~0.6 s) that scheduler jitter stays
    # well below the 5% gate.
    workload = next(w for w in WORKLOADS if w.name == "E14-class noisy ablation")
    runs_per_sample = 4

    def noop_run() -> None:
        for _ in range(runs_per_sample):
            _run(workload, "fused")

    def recorded_run() -> None:
        with use_telemetry(TelemetryRecorder(level="events")):
            for _ in range(runs_per_sample):
                _run(workload, "fused")

    # Warm caches before pairing: the cold first call would otherwise land
    # on the no-op side of pair 1 and flatter the recorder. The gate takes
    # the *cleanest* interleaved pair: background load on a shared runner
    # inflates one side of some pairs, but a genuine probe-cost regression
    # inflates the recorded side of every pair, so even the minimum ratio
    # shows it.
    noop_run()
    pairs = interleaved_pairs(noop_run, recorded_run, repeats=5)
    overhead = min(recorded / noop for noop, recorded in pairs)
    print(
        f"telemetry overhead on {workload.name!r}: {(overhead - 1.0) * 100:+.2f}% "
        f"(gate: <= {(MAX_TELEMETRY_OVERHEAD - 1.0) * 100:.0f}%)"
    )
    assert overhead <= MAX_TELEMETRY_OVERHEAD, (
        f"recording telemetry cost {(overhead - 1.0) * 100:.2f}% on "
        f"{workload.name!r} — above the {(MAX_TELEMETRY_OVERHEAD - 1.0) * 100:.0f}% gate"
    )


if __name__ == "__main__":
    test_fused_backend_meets_speedup_gates()
    test_telemetry_overhead_within_gate()
    print("benchmark gate passed")
