"""Benchmark / regeneration harness for experiment E14.

Reproduces the Section 6.1 robustness extension: missed/spurious collision
detections bias the raw encounter rate in the predicted direction and the
closed-form correction removes the bias.
"""


def test_e14_noise_ablation(experiment_runner):
    result = experiment_runner("E14")
    for record in result.records:
        truth = record["true_density"]
        raw_bias = abs(record["raw_mean_estimate"] - truth)
        corrected_bias = abs(record["corrected_mean_estimate"] - truth)
        if record["miss_probability"] == 0 and record["spurious_rate"] == 0:
            # Noiseless: correction is a no-op.
            assert corrected_bias == raw_bias
        else:
            # Correction never increases the bias (up to small sampling noise).
            assert corrected_bias <= raw_bias + 0.02 * truth
