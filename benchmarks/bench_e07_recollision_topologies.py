"""Benchmark / regeneration harness for experiment E07.

Reproduces the per-topology re-collision decay rates of Lemmas 20/4/22/23/25:
polynomial exponents near -1/2 (ring), -1 (2-D torus), -3/2 (3-D torus) and
geometric decay on the hypercube and expander.
"""


def test_e07_recollision_decay_per_topology(experiment_runner):
    result = experiment_runner("E07")
    by_topology = {record["topology"]: record for record in result.records}
    # The decay steepens with local mixing strength: ring < torus2d < torus_3d.
    assert (
        by_topology["ring"]["probability_at_max_offset"]
        > by_topology["torus2d"]["probability_at_max_offset"]
    )
    assert (
        by_topology["torus2d"]["probability_at_max_offset"]
        >= by_topology["torus_3d"]["probability_at_max_offset"]
    )
    # Fitted exponents keep the expected ordering (ring shallowest).
    assert by_topology["ring"]["fitted_exponent"] > by_topology["torus_3d"]["fitted_exponent"]
