"""Benchmark / regeneration harness for experiment E04.

Reproduces the Lemma 11 / Corollary 15-16 moment bounds: empirical central
moments of the pairwise collision count stay within a constant factor of the
``(t/A)·w^k·k!·log^k(2t)`` shape once the constant is fitted at k = 2.
"""


def test_e04_collision_moments(experiment_runner):
    result = experiment_runner("E04")
    for record in result.records:
        assert record["pair_collision_moment"] >= 0
        assert record["lemma11_bound_fitted"] > 0
        assert record["within_bound"]
