"""Benchmark: migrated experiments vs their pre-migration trial loops.

ISSUE 4 acceptance gate: migrating the experiment suite onto the unified
kernel's batched ``(R, n)`` path must pay for itself. For three migrated
experiments — E14 (noise ablation), E19 (movement models, including the
newly vectorized collision-avoiding walk), and E20 (boundary effects) —
this benchmark reruns the simulation workload the way the legacy
experiment code did (one serial simulation per trial, one child stream per
trial) and compares against the migrated module's actual ``run``. The
migrated path must be at least ``MIN_SPEEDUP`` times faster on every one
of the three.

The trial counts are raised above the defaults so the batch has enough
replicates to amortise the per-round NumPy overhead — the same regime the
full (non-quick) configurations run in. The measurements are written to
``BENCH_migration.json`` with the shared provenance block so ``repro bench
history`` can track them across PRs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernel_migration.py

or through pytest (the assertion is the acceptance gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel_migration.py -s
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from _timing import best_pair, interleaved_pairs, write_bench_report
from repro.analysis.accuracy import empirical_epsilon
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.experiments import (
    e14_noise_ablation,
    e19_movement_models,
    e20_boundary_effects,
)
from repro.swarm.noise import NoisyCollisionModel, correct_noisy_estimate
from repro.topology.bounded_grid import BoundedGrid
from repro.topology.torus import Torus2D
from repro.utils.rng import spawn_seed_sequences
from repro.walks.movement import (
    BiasedTorusWalk,
    CollisionAvoidingWalk,
    LazyRandomWalk,
    UniformRandomWalk,
)

MIN_SPEEDUP = 3.0
TRIALS = 32
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_migration.json"

# Populations around 200 agents are the regime the suite's full
# configurations run in (and the regime bench_engine_batching gates): small
# enough that per-round interpreter overhead dominates the serial loop,
# which is exactly the overhead batching amortises.
E14_CONFIG = e14_noise_ablation.NoiseAblationConfig(
    side=48, num_agents=200, rounds=400, miss_probabilities=(0.0, 0.3),
    spurious_rates=(0.05,), trials=TRIALS,
)
E19_CONFIG = e19_movement_models.MovementModelsConfig(
    side=48, num_agents=200, rounds=300, trials=TRIALS,
)
E20_CONFIG = e20_boundary_effects.BoundaryEffectsConfig(
    sides=(32,), rounds=300, trials=TRIALS,
)


def _legacy_trials(topology, config: SimulationConfig, trials: int, seed, delta: float) -> None:
    """The pre-migration shape of every experiment's inner loop: one serial
    simulation per trial, one spawned child stream per trial, per-trial
    summary statistics (the old loops computed the mean estimate and the
    empirical epsilon of every trial as they went). Pinned to the reference
    backend: the loop being emulated predates the fused fast path, and the
    gate measures the value of the *batched migration* against it — the
    fast path's own gate lives in bench_fastpath.py."""
    density = (config.num_agents - 1) / topology.num_nodes
    for child in spawn_seed_sequences(seed, trials):
        outcome = run_kernel(topology, config, None, child, backend="reference")
        estimates = outcome.estimates()
        float(estimates.mean())
        empirical_epsilon(estimates, density, delta)


def legacy_e14() -> None:
    topology = Torus2D(E14_CONFIG.side)
    density = (E14_CONFIG.num_agents - 1) / topology.num_nodes
    for index, miss in enumerate(E14_CONFIG.miss_probabilities):
        for spurious in E14_CONFIG.spurious_rates:
            model = NoisyCollisionModel(miss_probability=miss, spurious_rate=spurious)
            config = SimulationConfig(
                num_agents=E14_CONFIG.num_agents,
                rounds=E14_CONFIG.rounds,
                collision_model=model,
            )
            # The old E14 loop additionally bias-corrected every trial's
            # estimates and scored both vectors. Reference backend: see
            # _legacy_trials.
            for child in spawn_seed_sequences(index, E14_CONFIG.trials):
                outcome = run_kernel(topology, config, None, child, backend="reference")
                raw = outcome.estimates()
                corrected = np.asarray(correct_noisy_estimate(raw, model))
                float(raw.mean())
                float(corrected.mean())
                empirical_epsilon(raw, density, E14_CONFIG.delta)
                empirical_epsilon(corrected, density, E14_CONFIG.delta)


def legacy_e19() -> None:
    topology = Torus2D(E19_CONFIG.side)
    models = [
        UniformRandomWalk(),
        LazyRandomWalk(stay_probability=E19_CONFIG.lazy_probability),
        BiasedTorusWalk(bias=E19_CONFIG.bias),
        CollisionAvoidingWalk(avoidance_steps=E19_CONFIG.avoidance_steps),
    ]
    for index, model in enumerate(models):
        config = SimulationConfig(
            num_agents=E19_CONFIG.num_agents, rounds=E19_CONFIG.rounds, movement=model
        )
        _legacy_trials(topology, config, E19_CONFIG.trials, index, E19_CONFIG.delta)


def legacy_e20() -> None:
    for side in E20_CONFIG.sides:
        for index, topology in enumerate((Torus2D(side), BoundedGrid(side))):
            num_agents = max(2, int(round(E20_CONFIG.target_density * topology.num_nodes)) + 1)
            config = SimulationConfig(num_agents=num_agents, rounds=E20_CONFIG.rounds)
            _legacy_trials(topology, config, E20_CONFIG.trials, index, E20_CONFIG.delta)


CASES = (
    ("E14", legacy_e14, lambda: e14_noise_ablation.run(E14_CONFIG, seed=0)),
    ("E19", legacy_e19, lambda: e19_movement_models.run(E19_CONFIG, seed=0)),
    ("E20", legacy_e20, lambda: e20_boundary_effects.run(E20_CONFIG, seed=0)),
)


def measure() -> list[dict]:
    """Per-experiment records from the best interleaved (legacy, migrated) pair.

    The interleaved-pairs reduction (see ``_timing.interleaved_pairs``)
    keeps both sides of each ratio under the same background load; taking
    the best pair discards repeats hit by load spikes. The first pair also
    warms caches.
    """
    records = []
    for name, legacy, migrated in CASES:
        legacy_seconds, migrated_seconds = best_pair(interleaved_pairs(legacy, migrated))
        records.append(
            {
                "workload": name,
                "kind": "macro",
                "backend": "migrated",
                "legacy_seconds": legacy_seconds,
                "migrated_seconds": migrated_seconds,
                "speedup": legacy_seconds / migrated_seconds,
            }
        )
    return records


def write_report(records: list[dict], path: Path | None = None) -> Path:
    """Write the machine-readable benchmark record (BENCH_migration.json)."""
    return write_bench_report(
        OUTPUT_PATH if path is None else path,
        "bench_kernel_migration",
        {"min_speedup": MIN_SPEEDUP},
        records,
    )


def test_migrated_experiments_at_least_3x_faster() -> None:
    """Acceptance gate: every gated experiment beats its legacy loop >= 3x."""
    records = measure()
    print(f"wrote {write_report(records)}")
    for record in records:
        print(f"{record['workload']}: speedup x{record['speedup']:.2f} (gate: >= x{MIN_SPEEDUP})")
        assert record["speedup"] >= MIN_SPEEDUP, (
            f"{record['workload']}: migrated path only x{record['speedup']:.2f} faster "
            f"than its legacy trial loop (required x{MIN_SPEEDUP})"
        )


if __name__ == "__main__":
    test_migrated_experiments_at_least_3x_faster()
    print("benchmark gate passed")
