"""Benchmark / regeneration harness for experiment E02.

Reproduces the Theorem 1 density dependence: at a fixed round budget the
empirical ε shrinks as the density grows (roughly like ``d^{-1/2}``).
"""


def test_e02_accuracy_vs_density(experiment_runner):
    result = experiment_runner("E02")
    densities = result.column("true_density")
    epsilons = result.column("empirical_epsilon")
    assert densities == sorted(densities)
    # Densest setting is estimated at least as well as the sparsest one.
    assert epsilons[-1] <= epsilons[0]
