"""Benchmark / regeneration harness for experiment E08.

Reproduces the Section 4 local mixing sums B(t): growing like sqrt(t) on the
ring, like log(t) on the 2-D torus, and saturating on the strongly locally
mixing topologies (3-D torus, hypercube, expander).
"""


def test_e08_local_mixing_growth(experiment_runner):
    result = experiment_runner("E08")
    growth = {record["topology"]: record["growth_ratio"] for record in result.records}
    assert growth["ring"] >= growth["torus2d"] * 0.9
    assert growth["ring"] > growth["torus_3d"]
    assert growth["ring"] > growth["hypercube"]
