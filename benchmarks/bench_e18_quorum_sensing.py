"""Benchmark / regeneration harness for experiment E18.

Reproduces the Section 6.2 quorum-sensing application: when the true density
is separated from the threshold, nearly all agents answer the quorum
question correctly.
"""


def test_e18_quorum_sensing(experiment_runner):
    result = experiment_runner("E18")
    for record in result.records:
        assert record["fraction_correct"] > 0.6
    # The most separated settings (extreme multipliers) are decided best.
    extremes = [result.records[0], result.records[-1]]
    for record in extremes:
        assert record["fraction_correct"] > 0.8
