"""Benchmark: the million-agent scaling observatory (ISSUE 9 acceptance gates).

The intra-kernel sharding path (:mod:`repro.core.shardpath`) splits the
``(R, n)`` position matrix into contiguous replicate-row shards on a
worker pool, each shard seeded from per-replicate SeedSequence children so
the merged result is bit-identical for every shard count. This benchmark
is the scaling observatory for that path:

1. **Invariance precheck**: before timing anything, ``shard_workers=K``
   must reproduce ``shard_workers=1`` array-for-array on a marked + noisy
   workload — a wrong-but-fast sharded kernel must never produce a record.
2. **Scaling curve**: every (workload, shard_workers) cell on the agents ×
   replicates grid is timed and written to ``BENCH_scaling.json`` — one
   record per cell with the median seconds and the speedup over the
   single-shard run — so ``repro bench history --metric speedup`` tracks
   the curve across PRs.
3. **Parallel gate** (machines with >= ``MIN_GATE_CPUS`` cores only): at
   ``shard_workers=4`` at least one scaling workload must reach
   ``MIN_SPEEDUP_AT_4`` (1.8x) over its single-shard time. The gate is
   skipped, loudly, on smaller runners — a 1-core container cannot
   demonstrate parallel speedup and a red herring there would train
   people to ignore the gate.
4. **Frontier gate**: the two frontier workloads — a million agents at
   small ``R``, and ``R = 10^3`` replicates at moderate ``n`` — must each
   complete their full round budget under ``FRONTIER_BUDGET_SECONDS``
   with the sharded fused kernel, and a measured reference-backend probe,
   extrapolated to frontier scale by element-rounds, must cost at least
   ``MIN_FRONTIER_ADVANTAGE`` times the fused wall-clock. (The reference
   loop is never *run* at frontier scale; that is the point.)

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scaling.py

or through pytest (the assertions are the acceptance gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scaling.py -s
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from _timing import median_of, once, write_bench_report
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.swarm.noise import NoisyCollisionModel
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D

SHARD_GRID = (1, 2, 4)
MIN_SPEEDUP_AT_4 = 1.8
MIN_GATE_CPUS = 4
FRONTIER_BUDGET_SECONDS = 180.0
MIN_FRONTIER_ADVANTAGE = 1.0
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"


@dataclass(frozen=True)
class ScalingWorkload:
    """One (topology, agents, replicates, rounds) cell of the scaling grid."""

    name: str
    kind: str  # "scaling" | "frontier"
    side: int
    agents: int
    replicates: int
    rounds: int
    #: Scaled-down (agents, replicates, rounds) for the reference probe the
    #: frontier gate extrapolates from; None for plain scaling cells.
    probe: Optional[tuple[int, int, int]] = None

    def build(self, agents=None, replicates=None, rounds=None):
        topology = Torus2D(self.side)
        config = SimulationConfig(
            num_agents=self.agents if agents is None else agents,
            rounds=self.rounds if rounds is None else rounds,
        )
        return topology, config, (self.replicates if replicates is None else replicates)

    def element_rounds(self, agents=None, replicates=None, rounds=None) -> int:
        return (
            (self.agents if agents is None else agents)
            * (self.replicates if replicates is None else replicates)
            * (self.rounds if rounds is None else rounds)
        )


WORKLOADS = (
    # The scaling grid: agents x replicates regimes between the macro suite
    # and the frontier, where per-shard work is large enough that thread
    # fan-out pays (NumPy releases the GIL inside the hot primitives).
    ScalingWorkload("agents=20k R=32", "scaling", side=128, agents=20_000, replicates=32, rounds=30),
    ScalingWorkload("agents=100k R=16", "scaling", side=256, agents=100_000, replicates=16, rounds=20),
    ScalingWorkload("agents=4k R=256", "scaling", side=64, agents=4_000, replicates=256, rounds=30),
    # The frontier: a million agents, and a thousand replicates — the
    # regimes the acceptance criteria name. Probes are ~500x smaller.
    ScalingWorkload(
        "frontier agents=1M R=4",
        "frontier",
        side=1_024,
        agents=1_000_000,
        replicates=4,
        rounds=100,
        probe=(20_000, 4, 10),
    ),
    ScalingWorkload(
        "frontier R=1000 n=2000",
        "frontier",
        side=64,
        agents=2_000,
        replicates=1_000,
        rounds=300,
        probe=(2_000, 50, 20),
    ),
)


def _gate_workers() -> int:
    return min(4, os.cpu_count() or 1)


def assert_shard_invariance() -> None:
    """Precheck: sharded results are bit-identical to single-shard results."""
    topology = Ring(512)
    config = SimulationConfig(
        num_agents=64,
        rounds=40,
        marked_fraction=0.25,
        collision_model=NoisyCollisionModel(miss_probability=0.2, spurious_rate=0.05),
    )
    baseline = run_kernel(topology, config, 23, seed=7, shard_workers=1)
    for workers in (2, 4, 7):
        other = run_kernel(topology, config, 23, seed=7, shard_workers=workers)
        for field in ("collision_totals", "marked_collision_totals", "final_positions", "marked"):
            assert np.array_equal(getattr(baseline, field), getattr(other, field)), (
                f"shard_workers={workers} diverged from shard_workers=1 on {field}"
            )


def _timed_cell(workload: ScalingWorkload, shard_workers: int, repeats: int = 3) -> float:
    topology, config, replicates = workload.build()
    return median_of(
        lambda: run_kernel(topology, config, replicates, seed=0, shard_workers=shard_workers),
        repeats=repeats,
    )


def measure_scaling() -> list[dict]:
    """The scaling curve: one record per (workload, shard_workers) cell."""
    records = []
    for workload in (w for w in WORKLOADS if w.kind == "scaling"):
        base_seconds = None
        for shard_workers in SHARD_GRID:
            seconds = _timed_cell(workload, shard_workers)
            if base_seconds is None:
                base_seconds = seconds
            speedup = base_seconds / seconds
            records.append(
                {
                    "workload": workload.name,
                    "kind": workload.kind,
                    "backend": f"fused-k{shard_workers}",
                    "shard_workers": shard_workers,
                    "median_seconds": seconds,
                    "speedup": speedup,
                }
            )
            print(
                f"{workload.name:24s} shard_workers={shard_workers} "
                f"{seconds:7.4f}s speedup {speedup:5.2f}x"
            )
    return records


def measure_frontier() -> list[dict]:
    """The frontier gate cells: fused wall-clock vs extrapolated reference."""
    records = []
    workers = _gate_workers()
    for workload in (w for w in WORKLOADS if w.kind == "frontier"):
        topology, config, replicates = workload.build()
        fused_seconds = once(
            lambda: run_kernel(topology, config, replicates, seed=0, shard_workers=workers)
        )

        probe_agents, probe_replicates, probe_rounds = workload.probe
        probe_topology, probe_config, _ = workload.build(
            agents=probe_agents, rounds=probe_rounds
        )
        reference_probe_seconds = median_of(
            lambda: run_kernel(
                probe_topology, probe_config, probe_replicates, seed=0, backend="reference"
            ),
            repeats=3,
        )
        scale = workload.element_rounds() / workload.element_rounds(
            agents=probe_agents, replicates=probe_replicates, rounds=probe_rounds
        )
        reference_extrapolated = reference_probe_seconds * scale
        advantage = reference_extrapolated / fused_seconds
        records.append(
            {
                "workload": workload.name,
                "kind": workload.kind,
                "backend": f"fused-k{workers}",
                "shard_workers": workers,
                "median_seconds": fused_seconds,
                "speedup": advantage,
                "reference_extrapolated_seconds": reference_extrapolated,
                "rounds_per_second": workload.rounds / fused_seconds,
            }
        )
        print(
            f"{workload.name:24s} fused(k={workers}) {fused_seconds:7.2f}s "
            f"reference~{reference_extrapolated:8.1f}s advantage {advantage:5.2f}x "
            f"({workload.rounds / fused_seconds:.1f} rounds/s)"
        )
    return records


def write_report(records: list[dict], path: Optional[Path] = None) -> Path:
    """Write the machine-readable benchmark record (BENCH_scaling.json)."""
    return write_bench_report(
        OUTPUT_PATH if path is None else path,
        "bench_scaling",
        {
            "min_speedup_at_4": MIN_SPEEDUP_AT_4,
            "min_gate_cpus": MIN_GATE_CPUS,
            "frontier_budget_seconds": FRONTIER_BUDGET_SECONDS,
            "min_frontier_advantage": MIN_FRONTIER_ADVANTAGE,
            "cpu_count": os.cpu_count() or 1,
        },
        records,
    )


def test_sharded_kernel_meets_scaling_gates() -> None:
    """Acceptance gates: invariance, the 4-worker speedup, the frontier budget."""
    assert_shard_invariance()
    records = measure_scaling() + measure_frontier()
    path = write_report(records)
    print(f"wrote {path}")

    cpus = os.cpu_count() or 1
    scaling_at_4 = [
        r for r in records if r["kind"] == "scaling" and r["shard_workers"] == 4
    ]
    if cpus >= MIN_GATE_CPUS:
        best = max(r["speedup"] for r in scaling_at_4)
        assert best >= MIN_SPEEDUP_AT_4, (
            f"no scaling workload reached {MIN_SPEEDUP_AT_4}x at shard_workers=4 "
            f"on a {cpus}-core machine; measured: "
            + ", ".join(f"{r['workload']}={r['speedup']:.2f}x" for r in scaling_at_4)
        )
    else:
        print(
            f"SKIPPED parallel gate: {cpus} core(s) < {MIN_GATE_CPUS} — "
            "a single-core runner cannot demonstrate shard speedup"
        )

    for record in (r for r in records if r["kind"] == "frontier"):
        assert record["median_seconds"] <= FRONTIER_BUDGET_SECONDS, (
            f"{record['workload']}: sharded fused took {record['median_seconds']:.1f}s — "
            f"over the {FRONTIER_BUDGET_SECONDS:.0f}s frontier budget"
        )
        assert record["speedup"] >= MIN_FRONTIER_ADVANTAGE, (
            f"{record['workload']}: extrapolated reference is only "
            f"{record['speedup']:.2f}x the fused wall-clock — the frontier "
            f"workload no longer demonstrates an advantage over the seed loop"
        )


if __name__ == "__main__":
    test_sharded_kernel_meets_scaling_gates()
    print("benchmark gate passed")
