"""Benchmark: batched online density tracking vs the static batched path.

The dynamics driver adds a per-round hook to the batched ``(R, n)``
simulation loop: three online estimators, a change detector, a confidence
band, and the event-schedule lookup. The hook's work is O(R) per round
(ring-buffer sums over replicate columns) against the loop's O(R·n log
R·n) collision counting, so tracking must remain a small constant
overhead — the ISSUE 2 acceptance gate pins it at **within 1.5x** of the
static batched path on the same 32 replicates x 200 agents x 400 rounds
``Torus2D(side=32)`` workload.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dynamics_tracking.py

or through pytest (the assertion is the acceptance gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_dynamics_tracking.py -s
"""

from __future__ import annotations

import time

from repro.core.simulation import SimulationConfig
from repro.dynamics.driver import track_scenario_batch
from repro.dynamics.scenario import build_scenario
from repro.engine import simulate_density_estimation_batch
from repro.topology.torus import Torus2D

SIDE = 32
NUM_AGENTS = 200
ROUNDS = 400
REPLICATES = 32
MAX_SLOWDOWN = 1.5


def _run_static() -> None:
    """The PR-1 path: batched replicates, no per-round hook."""
    topology = Torus2D(SIDE)
    config = SimulationConfig(num_agents=NUM_AGENTS, rounds=ROUNDS)
    simulate_density_estimation_batch(topology, config, REPLICATES, seed=0)


def _run_tracked() -> None:
    """The dynamics path: same workload with full online tracking installed."""
    scenario = build_scenario(
        "stable", rounds=ROUNDS, side=SIDE, num_agents=NUM_AGENTS
    )
    track_scenario_batch(scenario, REPLICATES, seed=0)


def _time(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds (first call also warms caches)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> dict[str, float]:
    static_seconds = _time(_run_static)
    tracked_seconds = _time(_run_tracked)
    return {
        "static_seconds": static_seconds,
        "tracked_seconds": tracked_seconds,
        "slowdown": tracked_seconds / static_seconds,
    }


def _report(stats: dict[str, float]) -> None:
    print(
        f"\n{REPLICATES} replicates of ({NUM_AGENTS} agents x {ROUNDS} rounds "
        f"on Torus2D(side={SIDE}))"
    )
    print(f"  static batched    : {stats['static_seconds']:7.3f} s")
    print(f"  online tracking   : {stats['tracked_seconds']:7.3f} s")
    print(f"  tracking overhead : {stats['slowdown']:7.2f}x (gate: <= {MAX_SLOWDOWN}x)")


def test_tracking_overhead_within_gate():
    """Acceptance gate: batched online tracking within 1.5x of static batched."""
    stats = measure()
    _report(stats)

    # Sanity: the tracked run produces per-round estimates that agree with
    # the true density of the static world.
    scenario = build_scenario("stable", rounds=ROUNDS, side=SIDE, num_agents=NUM_AGENTS)
    outcome = track_scenario_batch(scenario, 4, seed=0)
    density = (NUM_AGENTS - 1) / (SIDE * SIDE)
    final = outcome.estimates["window"][-1].mean()
    assert abs(final - density) / density < 0.15

    assert stats["slowdown"] <= MAX_SLOWDOWN, (
        f"online tracking overhead {stats['slowdown']:.2f}x exceeds the "
        f"{MAX_SLOWDOWN}x gate"
    )


if __name__ == "__main__":
    test_tracking_overhead_within_gate()
