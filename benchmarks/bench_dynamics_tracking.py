"""Benchmark: batched online density tracking vs the static batched path.

The dynamics driver adds a per-round hook to the batched ``(R, n)``
simulation loop: three online estimators, a change detector, a confidence
band, and the event-schedule lookup. The hook's work is O(R) per round
(ring-buffer sums over replicate columns), so tracking must remain an
affordable overhead. Two gates pin that, both on the same 32 replicates x
200 agents x 400 rounds ``Torus2D(side=32)`` workload:

1. **Relative**: tracked <= 3x the static path on the *default* kernel
   backend. The original ISSUE 2 gate was 1.5x against the sort-based
   reference loop; the ISSUE 5 fused fast path made the static substrate
   ~4-5x faster while the hook's Python-level work per round is unchanged,
   so the same absolute overhead is now a larger fraction of a much
   shorter round. 3x keeps the hook honest (it may not *grow*) without
   punishing the substrate for getting faster.
2. **Absolute yardstick**: tracked on the default backend must stay
   within the original 1.5x budget measured against the *reference*
   backend's static loop — the yardstick the 1.5x gate was defined
   against. Full online tracking plus the fast path together must beat
   what plain static simulation used to cost (currently ~0.5x: tracking
   everything is faster than the old loop tracking nothing).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dynamics_tracking.py

or through pytest (the assertion is the acceptance gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_dynamics_tracking.py -s
"""

from __future__ import annotations

import time

from repro.core.simulation import SimulationConfig
from repro.dynamics.driver import track_scenario_batch
from repro.dynamics.scenario import build_scenario
from repro.engine import simulate_density_estimation_batch
from repro.topology.torus import Torus2D

SIDE = 32
NUM_AGENTS = 200
ROUNDS = 400
REPLICATES = 32
MAX_SLOWDOWN = 3.0
MAX_VS_REFERENCE_STATIC = 1.5


def _run_static(backend: str | None = None) -> None:
    """The hook-free path: batched replicates, no per-round tracking."""
    topology = Torus2D(SIDE)
    config = SimulationConfig(num_agents=NUM_AGENTS, rounds=ROUNDS)
    simulate_density_estimation_batch(topology, config, REPLICATES, seed=0, backend=backend)


def _run_tracked() -> None:
    """The dynamics path: same workload with full online tracking installed."""
    scenario = build_scenario(
        "stable", rounds=ROUNDS, side=SIDE, num_agents=NUM_AGENTS
    )
    track_scenario_batch(scenario, REPLICATES, seed=0)


def _time(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds (first call also warms caches)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> dict[str, float]:
    static_seconds = _time(_run_static)
    reference_static_seconds = _time(lambda: _run_static(backend="reference"))
    tracked_seconds = _time(_run_tracked)
    return {
        "static_seconds": static_seconds,
        "reference_static_seconds": reference_static_seconds,
        "tracked_seconds": tracked_seconds,
        "slowdown": tracked_seconds / static_seconds,
        "vs_reference_static": tracked_seconds / reference_static_seconds,
    }


def _report(stats: dict[str, float]) -> None:
    print(
        f"\n{REPLICATES} replicates of ({NUM_AGENTS} agents x {ROUNDS} rounds "
        f"on Torus2D(side={SIDE}))"
    )
    print(f"  static batched (default backend)  : {stats['static_seconds']:7.3f} s")
    print(f"  static batched (reference backend): {stats['reference_static_seconds']:7.3f} s")
    print(f"  online tracking (default backend) : {stats['tracked_seconds']:7.3f} s")
    print(f"  tracking overhead                 : {stats['slowdown']:7.2f}x (gate: <= {MAX_SLOWDOWN}x)")
    print(
        f"  tracking vs reference static      : {stats['vs_reference_static']:7.2f}x "
        f"(gate: <= {MAX_VS_REFERENCE_STATIC}x)"
    )


def test_tracking_overhead_within_gate():
    """Acceptance gates: tracking overhead bounded relatively and absolutely."""
    stats = measure()
    _report(stats)

    # Sanity: the tracked run produces per-round estimates that agree with
    # the true density of the static world.
    scenario = build_scenario("stable", rounds=ROUNDS, side=SIDE, num_agents=NUM_AGENTS)
    outcome = track_scenario_batch(scenario, 4, seed=0)
    density = (NUM_AGENTS - 1) / (SIDE * SIDE)
    final = outcome.estimates["window"][-1].mean()
    assert abs(final - density) / density < 0.15

    assert stats["slowdown"] <= MAX_SLOWDOWN, (
        f"online tracking overhead {stats['slowdown']:.2f}x exceeds the "
        f"{MAX_SLOWDOWN}x gate"
    )
    assert stats["vs_reference_static"] <= MAX_VS_REFERENCE_STATIC, (
        f"online tracking costs {stats['vs_reference_static']:.2f}x the reference "
        f"backend's static loop (the original 1.5x yardstick); the hook has "
        f"grown more expensive than the pre-fastpath round budget allowed"
    )


if __name__ == "__main__":
    test_tracking_overhead_within_gate()
