"""Benchmark: out-of-core result-store reads (ISSUE 10 acceptance gates).

The streaming read path (:meth:`repro.store.ResultStore.iter_select`)
replaced the materialise-everything ``select`` with a per-segment,
per-row generator, and sweep sharding (``repro sweep run --shard i/N``
plus ``repro store merge``) split one sweep across machines without
perturbing a single byte. This benchmark is the observatory for both:

1. **Memory gate**: a streaming aggregate over a >= 200k-row store must
   hold its peak incremental memory at or below ``MEMORY_RATIO_MAX``
   (1/4) of the materialised baseline's peak — the baseline being a
   faithful reimplementation of the old ``select`` (decode every row of
   every segment into one list).
2. **Limit gate**: a ``limit``-ed streaming query must beat the old
   full-scan-then-slice by at least ``MIN_LIMIT_SPEEDUP``, because the
   generator stops before later segments are even opened.
3. **Parquet projection gate**: when pyarrow is installed, a
   column-projected query over a Parquet store must beat the same query
   reading full rows (projection skips whole column chunks). Without
   pyarrow the gate is *skipped loudly* — the report records the skip so
   a CI image silently losing pyarrow shows up in the artifact, not as a
   green gate.
4. **Shard-merge identity gate**: a real (tiny) sweep run as two shards
   and merged must be byte-for-byte identical, file by file, to the same
   sweep run unsharded.

Every record carries ``workload`` / ``backend`` / ``median_seconds`` /
``speedup`` so ``repro bench history`` tracks the series across PRs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_store.py

or through pytest (the assertions are the acceptance gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_store.py -s
"""

from __future__ import annotations

import tempfile
import tracemalloc
from pathlib import Path

from _timing import interleaved_best_speedup, median_of, write_bench_report
from repro.engine import RunCache
from repro.store import ResultStore, merge_stores
from repro.store.store import _matches
from repro.sweeps import GridAxis, SweepSpec, TargetSpec, run_sweep_spec

SEGMENTS = 64
ROWS_PER_SEGMENT = 3_200  # 64 x 3200 = 204,800 rows, past the 200k floor
MEMORY_RATIO_MAX = 0.25
MIN_LIMIT_SPEEDUP = 3.0
MIN_PROJECTION_SPEEDUP = 1.0
LIMIT = 500
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow  # noqa: F401

    HAVE_PYARROW = True
except ImportError:
    HAVE_PYARROW = False


def build_store(root: Path, *, fmt: str = "ndjson") -> ResultStore:
    """A >= 200k-row store of synthetic sweep-shaped rows, many segments wide."""
    store = ResultStore(root, fmt=fmt)
    counter = 0
    for segment_index in range(SEGMENTS):
        rows = []
        for _ in range(ROWS_PER_SEGMENT):
            rows.append(
                {
                    "cell": segment_index,
                    "row": counter,
                    "value": (counter % 997) * 0.5,
                    "parity": counter % 2,
                    "label": f"item-{counter % 5}",
                    "padding": f"row-{counter:09d}-" + "x" * 40,
                }
            )
            counter += 1
        store.append(f"seg-{segment_index:03d}", rows)
    return store


def materialized_select(store: ResultStore, *, where=None, columns=None, limit=None):
    """The pre-streaming ``select``: decode everything, filter the list.

    This is the baseline both gates compare against — kept here (not in
    the package) precisely so the package no longer contains a
    materialise-everything read path.
    """
    rows = []
    for segment in store.segments():
        rows.extend(store._read_segment(segment))
    if where:
        rows = [row for row in rows if _matches(row, where)]
    if columns is not None:
        rows = [{column: row.get(column) for column in columns} for row in rows]
    if limit is not None:
        rows = rows[:limit]
    return rows


def _peak_bytes(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def measure_memory(store: ResultStore) -> dict:
    """Gate 1: peak incremental memory, streaming vs materialised."""

    def streaming():
        total = 0.0
        for row in store.iter_select(where={"parity": 0}):
            total += row["value"]
        return total

    streaming_peak = _peak_bytes(streaming)
    materialized_peak = _peak_bytes(lambda: materialized_select(store, where={"parity": 0}))
    ratio = streaming_peak / materialized_peak
    print(
        f"memory: streaming peak {streaming_peak / 1e6:8.2f} MB, "
        f"materialized peak {materialized_peak / 1e6:8.2f} MB, ratio {ratio:.4f}"
    )
    return {
        "workload": f"filtered scan {SEGMENTS * ROWS_PER_SEGMENT} rows",
        "backend": "iter_select",
        "streaming_peak_bytes": streaming_peak,
        "materialized_peak_bytes": materialized_peak,
        "memory_ratio": ratio,
        "speedup": materialized_peak / max(streaming_peak, 1),
        "median_seconds": None,
    }


def measure_limit(store: ResultStore) -> dict:
    """Gate 2: the limit short-circuit vs the old full-scan-then-slice."""
    speedup = interleaved_best_speedup(
        lambda: materialized_select(store, limit=LIMIT),
        lambda: list(store.iter_select(limit=LIMIT)),
        repeats=3,
    )
    seconds = median_of(lambda: list(store.iter_select(limit=LIMIT)), repeats=3)
    print(f"limit={LIMIT}: streaming {seconds:8.5f}s, speedup {speedup:6.2f}x over full scan")
    return {
        "workload": f"limit {LIMIT} of {SEGMENTS * ROWS_PER_SEGMENT} rows",
        "backend": "iter_select",
        "median_seconds": seconds,
        "speedup": speedup,
    }


def measure_parquet_projection(root: Path) -> dict:  # pragma: no cover - needs pyarrow
    """Gate 3: column projection on a Parquet store vs full-row reads."""
    store = build_store(root, fmt="parquet")
    projected = {"columns": ["value"], "where": {"parity": 0}}
    speedup = interleaved_best_speedup(
        lambda: list(store.iter_select(where={"parity": 0})),
        lambda: list(store.iter_select(**projected)),
        repeats=3,
    )
    seconds = median_of(lambda: list(store.iter_select(**projected)), repeats=3)
    print(f"parquet projection: {seconds:8.5f}s, speedup {speedup:6.2f}x over full rows")
    return {
        "workload": "parquet projected filter",
        "backend": "iter_select+pushdown",
        "median_seconds": seconds,
        "speedup": speedup,
    }


def _tiny_spec() -> SweepSpec:
    return SweepSpec(
        name="bench-shard",
        seed=17,
        targets=(
            TargetSpec(
                kind="experiment",
                name="E02",
                base={"quick": True, "side": 8, "rounds": 10, "trials": 1},
                axes=(GridAxis("densities", ((0.1,), (0.2,))),),
            ),
            TargetSpec(
                kind="scenario",
                name="stable",
                base={"side": 8, "num_agents": 4, "replicates": 2},
                axes=(GridAxis("rounds", (4, 8)),),
            ),
        ),
    )


def _store_files(root: Path) -> dict:
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in root.rglob("*")
        if path.is_file()
    }


def measure_shard_merge(workdir: Path) -> dict:
    """Gate 4: two shards merged == one unsharded run, byte for byte."""
    spec = _tiny_spec()
    unsharded = workdir / "unsharded"
    run_sweep_spec(spec, cache=RunCache(workdir / "cache-u"), store=ResultStore(unsharded))
    shard_roots = []
    for index in range(2):
        shard_root = workdir / f"shard-{index}"
        run_sweep_spec(
            spec,
            cache=RunCache(workdir / f"cache-{index}"),
            store=ResultStore(shard_root),
            shard=(index, 2),
        )
        shard_roots.append(shard_root)
    merged = workdir / "merged"
    summary = merge_stores(shard_roots, merged)
    identical = _store_files(merged) == _store_files(unsharded)
    print(
        f"shard merge: {summary['segments_copied']} segments from 2 shards, "
        f"byte-identical={identical}"
    )
    return {
        "workload": "2-shard sweep merge",
        "backend": "merge_stores",
        "segments": summary["segments_copied"],
        "rows": summary["rows"],
        "byte_identical": identical,
        "median_seconds": None,
        "speedup": 1.0 if identical else 0.0,
    }


def run_benchmark(output_path: Path | None = None) -> dict:
    """Run every gate workload; write BENCH_store.json; return the payload."""
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        workdir = Path(tmp)
        store = build_store(workdir / "big-store")
        records = [measure_memory(store), measure_limit(store)]
        if HAVE_PYARROW:  # pragma: no cover - needs pyarrow
            records.append(measure_parquet_projection(workdir / "parquet-store"))
            parquet_gate = "measured"
        else:
            parquet_gate = "SKIPPED (pyarrow not installed)"
            print(f"parquet projection gate: {parquet_gate}")
        records.append(measure_shard_merge(workdir / "shards"))
    gates = {
        "rows": SEGMENTS * ROWS_PER_SEGMENT,
        "memory_ratio_max": MEMORY_RATIO_MAX,
        "min_limit_speedup": MIN_LIMIT_SPEEDUP,
        "min_projection_speedup": MIN_PROJECTION_SPEEDUP,
        "parquet_gate": parquet_gate,
    }
    path = write_bench_report(
        OUTPUT_PATH if output_path is None else output_path, "bench_store", gates, records
    )
    print(f"wrote {path}")
    return {"gates": gates, "records": records}


def test_out_of_core_store_meets_gates() -> None:
    """Acceptance gates: memory ratio, limit speedup, projection, byte identity."""
    payload = run_benchmark()

    memory = next(
        record for record in payload["records"] if record["workload"].startswith("filtered scan")
    )
    assert memory["memory_ratio"] <= MEMORY_RATIO_MAX, (
        f"streaming peak is {memory['memory_ratio']:.3f} of the materialised "
        f"baseline; the gate is {MEMORY_RATIO_MAX}"
    )

    limit_record = next(
        record for record in payload["records"] if record["workload"].startswith("limit")
    )
    assert limit_record["speedup"] >= MIN_LIMIT_SPEEDUP, (
        f"limit query speedup {limit_record['speedup']:.2f}x is under "
        f"{MIN_LIMIT_SPEEDUP}x — the short-circuit is not short-circuiting"
    )

    if HAVE_PYARROW:  # pragma: no cover - needs pyarrow
        projection = next(
            record
            for record in payload["records"]
            if record["backend"] == "iter_select+pushdown"
        )
        assert projection["speedup"] >= MIN_PROJECTION_SPEEDUP, (
            f"parquet projection speedup {projection['speedup']:.2f}x shows no win"
        )
    else:
        assert payload["gates"]["parquet_gate"].startswith("SKIPPED")

    merge_record = next(
        record for record in payload["records"] if record["backend"] == "merge_stores"
    )
    assert merge_record["byte_identical"], "merged shard store diverged from the unsharded run"


if __name__ == "__main__":
    test_out_of_core_store_meets_gates()
