"""Shared timing harness for the benchmark suite.

Every ``benchmarks/bench_*.py`` script times the same way — wall-clock
``time.perf_counter`` passes over a callable, reduced to a best/median, and
(for A/B gates) *interleaved* (baseline, candidate) pairs so a noisy
neighbour on a shared CI runner slows both sides of a ratio together
instead of biasing one. This module is that harness, extracted so the
scripts share one implementation, and so every ``BENCH_*.json`` artifact
carries the same provenance block (package version, git SHA, hostname,
numpy version) the bench-history observatory (``repro bench history``)
keys its series on.

The module is imported as a plain sibling (``from _timing import …``): the
``benchmarks/`` directory is on ``sys.path`` both when a script runs
standalone (script directory) and under pytest's default prepend import
mode (no ``__init__.py`` here, by design — benchmarks are scripts, not a
package).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro import __version__
from repro.utils.provenance import provenance_stamp

#: The BENCH_*.json artifact format version (the report schema, not the
#: package). Bump when the report shape changes incompatibly.
BENCH_SCHEMA = 1


def once(fn: Callable[[], Any]) -> float:
    """One timed call: wall-clock seconds of ``fn()``."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def best_of(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds (first call also warms caches)."""
    return min(once(fn) for _ in range(max(1, repeats)))


def median_of(fn: Callable[[], Any], repeats: int = 5, warmup: bool = True) -> float:
    """Median-of-``repeats`` wall-clock seconds, after an untimed warmup call."""
    if warmup:
        fn()
    return statistics.median(once(fn) for _ in range(max(1, repeats)))


def interleaved_pairs(
    baseline_fn: Callable[[], Any],
    candidate_fn: Callable[[], Any],
    repeats: int = 3,
) -> list[tuple[float, float]]:
    """``repeats`` interleaved (baseline, candidate) timing pairs.

    Interleaving keeps both sides of each ratio under the same background
    load, so a load spike slows the pair together instead of biasing one
    side; the first pair also warms caches for both.
    """
    return [(once(baseline_fn), once(candidate_fn)) for _ in range(max(1, repeats))]


def best_pair(pairs: Sequence[tuple[float, float]]) -> tuple[float, float]:
    """The pair with the highest baseline/candidate ratio (least load-biased)."""
    return max(pairs, key=lambda pair: pair[0] / pair[1])


def interleaved_best_speedup(
    baseline_fn: Callable[[], Any],
    candidate_fn: Callable[[], Any],
    repeats: int = 3,
) -> float:
    """Best candidate speedup over interleaved (baseline, candidate) pairs.

    Taking the best pair discards repeats hit by load spikes — the standard
    reduction for every A/B acceptance gate in this suite.
    """
    baseline_seconds, candidate_seconds = best_pair(
        interleaved_pairs(baseline_fn, candidate_fn, repeats)
    )
    return baseline_seconds / candidate_seconds


def bench_provenance(**extra: Any) -> dict[str, Any]:
    """The provenance block every ``BENCH_*.json`` artifact carries."""
    return provenance_stamp(**extra)


def write_bench_report(
    path: str | Path,
    benchmark: str,
    gates: Mapping[str, Any],
    records: Sequence[Mapping[str, Any]],
) -> Path:
    """Write one machine-readable ``BENCH_*.json`` benchmark artifact.

    The shape is shared by every emitter so ``repro bench history`` can
    ingest any of them: identity fields (``benchmark``, per-record
    ``workload``/``backend``) plus numeric measurements, stamped with
    :func:`bench_provenance`. Legacy artifacts without the provenance
    block still ingest (the observatory tolerates missing fields).
    """
    path = Path(path)
    payload = {
        "benchmark": benchmark,
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "provenance": bench_provenance(),
        "gates": dict(gates),
        "records": [dict(record) for record in records],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
