"""Benchmark / regeneration harness for experiment E16.

Reproduces the Section 6.3.1 sensor-network claim: a token relayed along a
random walk aggregates readings nearly as accurately as independent sampling
with the same number of probes, because repeat visits are rare on the grid.
"""


def test_e16_sensor_token_sampling(experiment_runner):
    result = experiment_runner("E16")
    for record in result.records:
        # Walk sampling stays within a small factor of independent sampling.
        assert record["error_ratio"] < 6.0
        assert record["mean_repeat_visit_fraction"] < 0.6
    errors = result.column("token_mean_error")
    assert errors[-1] <= errors[0]
