"""Benchmark / regeneration harness for experiment E15.

Reproduces the Section 6.1 placement ablation: clustered initial placements
break global density estimation — per-agent estimates spread out far more
than under the uniform placement the analysis assumes.
"""


def test_e15_nonuniform_placement(experiment_runner):
    result = experiment_runner("E15")
    rows = {record["placement"]: record for record in result.records}
    assert rows["clustered_80pct"]["estimate_spread"] > rows["uniform"]["estimate_spread"]
    assert rows["clustered_80pct"]["p90_relative_error"] > rows["uniform"]["p90_relative_error"]
    assert rows["gaussian_blob"]["p90_relative_error"] > rows["uniform"]["p90_relative_error"]
