"""Benchmark / regeneration harness for experiment E21.

Reproduces the adaptive-estimation extension: the doubling/stopping schedule
chooses more rounds in sparser environments (recovering the ~1/d scaling of
Theorem 1 without being told the density) and meets the requested accuracy.
"""


def test_e21_adaptive_estimation(experiment_runner):
    result = experiment_runner("E21")
    records = sorted(result.records, key=lambda r: r["true_density"], reverse=True)
    rounds = [record["rounds_used"] for record in records]
    # Sparser settings (later in the sorted list) use at least as many rounds.
    assert rounds == sorted(rounds)
    # Accuracy is met where the estimator converged.
    for record in result.records:
        if record["converged_fraction"] >= 0.9:
            assert record["median_relative_error"] <= 1.5 * 0.3
