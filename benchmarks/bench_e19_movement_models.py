"""Benchmark / regeneration harness for experiment E19.

Reproduces the Section 6.1 movement-model ablation: lazy and uniformly
biased walks keep the estimator unbiased, while collision-avoiding movement
depresses the measured encounter rate below the true density.
"""


def test_e19_movement_models(experiment_runner):
    result = experiment_runner("E19")
    rows = {record["movement_model"]: record for record in result.records}
    # Unbiased families stay close to the truth.
    for name in ("uniform_random_walk", "lazy_random_walk", "biased_torus_walk"):
        assert abs(rows[name]["relative_bias"]) < 0.25
    # Collision avoidance lowers the encounter rate (negative bias), and by
    # more than the unbiased families fluctuate.
    assert rows["collision_avoiding_walk"]["relative_bias"] < -0.05
