"""Benchmark / regeneration harness for experiment E05.

Reproduces the paper's central comparison: Algorithm 1 (random-walk
encounter rates) versus Algorithm 4 (independent sampling). The error ratio
stays bounded by a small factor at every round budget.
"""

import numpy as np


def test_e05_random_walk_vs_independent(experiment_runner):
    result = experiment_runner("E05")
    ratios = [r for r in result.column("ratio") if np.isfinite(r)]
    assert ratios, "expected at least one finite error ratio"
    # Random walks lose at most a small multiplicative factor (poly-log in theory).
    assert max(ratios) < 10.0
