"""Benchmark / regeneration harness for experiment E20.

Reproduces the Section 2 modelling-choice ablation: on a bounded grid with
reflecting boundaries the estimator remains unbiased (the chain is doubly
stochastic), and the boundary shows up only as a mild accuracy penalty
relative to the torus of the same size.
"""


def test_e20_boundary_effects(experiment_runner):
    result = experiment_runner("E20")
    torus_rows = [r for r in result.records if r["topology"] == "torus2d"]
    grid_rows = [r for r in result.records if r["topology"] == "bounded_grid"]
    assert torus_rows and grid_rows
    # Both models stay essentially unbiased at every size.
    for record in torus_rows + grid_rows:
        assert abs(record["relative_bias"]) < 0.15
    # The boundary never makes estimation substantially *better* than the torus;
    # typically it is mildly worse.
    for torus_record, grid_record in zip(
        sorted(torus_rows, key=lambda r: r["side"]), sorted(grid_rows, key=lambda r: r["side"])
    ):
        assert grid_record["empirical_epsilon"] >= 0.75 * torus_record["empirical_epsilon"]
