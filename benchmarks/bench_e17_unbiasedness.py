"""Benchmark / regeneration harness for experiment E17.

Reproduces Lemma 2 / Corollary 3: the encounter-rate estimator is unbiased
on every regular topology — the grand mean over agents and trials sits on
the true density up to sampling noise.
"""


def test_e17_unbiasedness(experiment_runner):
    result = experiment_runner("E17")
    for record in result.records:
        assert abs(record["relative_bias"]) < 0.25
