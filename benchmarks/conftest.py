"""Shared helpers for the benchmark harness.

Each ``bench_eXX_*.py`` file regenerates one experiment from the per-
experiment index in DESIGN.md. Benchmarks default to the experiment's
``quick()`` configuration so the whole harness completes in a couple of
minutes; set the environment variable ``REPRO_BENCH_FULL=1`` to run the full
configurations used to produce EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.base import ExperimentResult

#: Run the full (paper-scale) configurations instead of the quick ones.
FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "False")


def run_experiment_benchmark(benchmark, experiment_id: str, seed: int = 0) -> ExperimentResult:
    """Run one experiment under pytest-benchmark and echo its table.

    The experiment is executed exactly once per benchmark round (these are
    macro-benchmarks: the interesting output is the table, the timing is a
    bonus), and the resulting table is printed so ``--benchmark-only -s``
    reproduces the numbers recorded in EXPERIMENTS.md.
    """
    module, config_cls = EXPERIMENTS[experiment_id]
    config = config_cls() if FULL_SCALE else config_cls.quick()
    result = benchmark.pedantic(
        lambda: module.run(config, seed=seed), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.to_table())
    assert len(result.records) > 0
    return result


@pytest.fixture
def experiment_runner(benchmark):
    """Fixture exposing :func:`run_experiment_benchmark` bound to the benchmark."""

    def runner(experiment_id: str, seed: int = 0) -> ExperimentResult:
        return run_experiment_benchmark(benchmark, experiment_id, seed)

    return runner
