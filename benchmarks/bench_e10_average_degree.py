"""Benchmark / regeneration harness for experiment E10.

Reproduces Theorem 31: with the prescribed number of stationary samples,
inverse-degree sampling estimates the average degree within the target ε.
"""


def test_e10_average_degree_estimation(experiment_runner):
    result = experiment_runner("E10")
    for record in result.records:
        # Allow slack for the unit constant in the Theta(.) of Theorem 31.
        assert record["median_relative_error"] <= 2.0 * record["target_epsilon"]
