"""Ant colony quorum sensing during nest-site selection.

Models the Temnothorax house-hunting scenario described in the paper's
introduction [Pra05]: scout ants at a candidate nest site estimate the local
scout density via encounter rates, and commit to the site once a quorum
threshold is sensed. The example runs the quorum detector at several scout
populations around the threshold and shows how reliably the colony decides.

Run with::

    python examples/ant_colony_quorum_sensing.py
"""

from __future__ import annotations

from repro import QuorumDetector, Torus2D
from repro.utils.tables import format_table


def main() -> None:
    nest_site = Torus2D(24)        # the candidate nest site, modelled as a small torus
    quorum_threshold = 0.08        # scouts per grid cell needed to trigger commitment
    margin = 0.5
    delta = 0.05

    print(
        "Temnothorax scouts assess a candidate nest site of "
        f"{nest_site.num_nodes} cells; quorum threshold = {quorum_threshold} scouts/cell\n"
    )

    rows = []
    for scouts in (15, 30, 70, 120):
        density = (scouts - 1) / nest_site.num_nodes
        detector = QuorumDetector(
            topology=nest_site,
            num_agents=scouts,
            threshold=quorum_threshold,
            margin=margin,
            delta=delta,
            rounds=600,
        )
        fraction_above = detector.fraction_above(seed=scouts)
        decision = "commit (quorum met)" if fraction_above > 0.5 else "keep searching"
        rows.append([scouts, density, fraction_above, decision])

    print(
        format_table(
            ["scouts", "true density", "fraction sensing quorum", "colony decision"],
            rows,
            title="Quorum sensing by encounter rates",
        )
    )
    print(
        "\nScout populations well below the threshold almost never trigger the quorum, and\n"
        "populations well above it almost always do - the separation the paper's Section 6.2\n"
        "argues suffices for reliable collective decisions."
    )


if __name__ == "__main__":
    main()
