"""Minimal stdlib client for the ``repro serve`` daemon.

Everything here is ``urllib`` + ``json`` — no requests, no SSE library —
to show (and test) that the daemon's whole surface is reachable from a
bare Python install. The same helpers double as the CI smoke driver.

As a library::

    from serve_client import ServeClient
    client = ServeClient("http://127.0.0.1:8765")
    job = client.submit({"kind": "experiment", "name": "E01", "quick": True})
    record = client.wait(job["id"])
    payload = client.result(job["id"])
    for event in client.stream(job["id"]):      # SSE: 'round' ... 'final'
        print(event["event"], event["data"])

As a script (used by the CI serve smoke job)::

    python examples/serve_client.py wait-ready --base http://127.0.0.1:8765
    python examples/serve_client.py run '{"kind": "experiment", "name": "E01", "quick": true}'
    python examples/serve_client.py stream-demo --events 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Iterator


class ServeClient:
    """Submit, poll, fetch, and stream against one ``repro serve`` daemon."""

    def __init__(self, base: str = "http://127.0.0.1:8765", *, timeout: float = 30.0):
        self.base = base.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _request(self, path: str, *, method: str = "GET", body: Any = None):
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        return urllib.request.urlopen(request, timeout=self.timeout)

    def _json(self, path: str, *, method: str = "GET", body: Any = None) -> Any:
        with self._request(path, method=method, body=body) as response:
            return json.loads(response.read())

    # -- API -----------------------------------------------------------
    def health(self) -> dict:
        return self._json("/healthz")

    def openapi(self) -> dict:
        return self._json("/openapi.json")

    def submit(self, submission: dict) -> dict:
        """POST /jobs; returns the job record (raises on 4xx/5xx)."""
        return self._json("/jobs", method="POST", body=submission)

    def job(self, job_id: str) -> dict:
        return self._json(f"/jobs/{job_id}")

    def wait(self, job_id: str, *, timeout: float = 300.0, poll: float = 0.2) -> dict:
        """Poll until the job reaches a terminal status; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {record['status']} after {timeout}s")
            time.sleep(poll)

    def result(self, job_id: str) -> dict:
        return self._json(f"/jobs/{job_id}/result")

    def result_bytes(self, job_id: str) -> bytes:
        """The result payload's exact bytes (for bit-identity checks)."""
        with self._request(f"/jobs/{job_id}/result") as response:
            return response.read()

    def cancel(self, job_id: str) -> dict:
        return self._json(f"/jobs/{job_id}", method="DELETE")

    def stream(self, job_id: str, *, max_events: int | None = None) -> Iterator[dict]:
        """Yield parsed SSE events (``{"event", "data", "id"}``) until
        the ``final`` event (inclusive) or ``max_events``."""
        count = 0
        with self._request(f"/jobs/{job_id}/stream") as response:
            event: dict[str, Any] = {}
            data_lines: list[str] = []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith(":"):  # keep-alive comment
                    continue
                if line.startswith("id: "):
                    event["id"] = int(line[4:])
                elif line.startswith("event: "):
                    event["event"] = line[7:]
                elif line.startswith("data: "):
                    data_lines.append(line[6:])
                elif not line and event:
                    event["data"] = json.loads("\n".join(data_lines) or "null")
                    yield event
                    count += 1
                    if event.get("event") == "final":
                        return
                    if max_events is not None and count >= max_events:
                        return
                    event, data_lines = {}, []

    def wait_ready(self, *, timeout: float = 30.0, poll: float = 0.25) -> dict:
        """Block until ``/healthz`` answers ``ok``; returns the health body."""
        deadline = time.monotonic() + timeout
        last: Any = None
        while time.monotonic() < deadline:
            try:
                health = self.health()
                if health.get("status") == "ok":
                    return health
                last = health
            except (urllib.error.URLError, ConnectionError, OSError) as error:
                last = str(error)
            time.sleep(poll)
        raise TimeoutError(f"daemon not ready after {timeout}s (last: {last})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base", default="http://127.0.0.1:8765", help="daemon base URL")
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("wait-ready", help="block until /healthz reports ok")
    run_parser = commands.add_parser("run", help="submit a JSON workload, wait, print the result")
    run_parser.add_argument("submission", help="submission JSON, e.g. "
                            '\'{"kind": "experiment", "name": "E01", "quick": true}\'')
    stream_parser = commands.add_parser(
        "stream-demo", help="submit a quick crash scenario and print streamed events"
    )
    stream_parser.add_argument("--events", type=int, default=5, help="events to print")
    args = parser.parse_args(argv)
    client = ServeClient(args.base)

    if args.command == "wait-ready":
        health = client.wait_ready()
        print(json.dumps(health))
        return 0
    if args.command == "run":
        job = client.submit(json.loads(args.submission))
        record = client.wait(job["id"])
        if record["status"] != "done":
            print(json.dumps(record), file=sys.stderr)
            return 1
        sys.stdout.write(client.result_bytes(job["id"]).decode("utf-8"))
        # The record (with its hit/computed/dedupe result_status) goes to
        # stderr so stdout stays exactly the payload bytes.
        print(json.dumps(record), file=sys.stderr)
        return 0
    # stream-demo: a scenario small enough to finish fast, streamed live.
    job = client.submit(
        {"kind": "scenario", "name": "crash", "quick": True, "replicates": 2, "seed": 0}
    )
    shown = 0
    for event in client.stream(job["id"]):
        print(json.dumps({"event": event["event"], "round": event["data"].get("round")}))
        shown += 1
        if event["event"] == "final" or shown >= args.events:
            break
    if shown == 0:
        print("no events streamed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
