"""Quickstart: ant-inspired density estimation on a torus.

Runs Algorithm 1 (random-walk encounter-rate density estimation) for a
colony of agents on a two-dimensional torus, prints the accuracy achieved,
and compares it against the Theorem 1 prediction and the independent-sampling
baseline of Appendix A.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Torus2D, bounds, estimate_density, estimate_density_independent
from repro.utils.tables import format_table


def main() -> None:
    side = 64                      # the torus is side x side (A = 4096 nodes)
    num_agents = 410               # density d ~ 0.1
    delta = 0.1                    # failure probability used for reporting

    topology = Torus2D(side)
    density = (num_agents - 1) / topology.num_nodes
    print(f"Torus {side}x{side} with {num_agents} agents -> density d = {density:.4f}\n")

    rows = []
    for rounds in (50, 200, 800):
        walk_run = estimate_density(topology, num_agents, rounds, seed=0)
        rows.append(
            [
                rounds,
                walk_run.mean_estimate(),
                walk_run.empirical_epsilon(delta),
                bounds.theorem1_epsilon(rounds, density, delta),
            ]
        )

    print(
        format_table(
            ["rounds", "mean estimate", "empirical eps (RW)", "Theorem 1 eps bound"],
            rows,
            title="Algorithm 1 (random-walk encounter rates) vs the Theorem 1 bound",
        )
    )

    # Algorithm 4's analysis (Theorem 32) assumes t < sqrt(A), so the baseline
    # comparison uses a round budget below the torus side length.
    baseline_rounds = side - 4
    walk_run = estimate_density(topology, num_agents, baseline_rounds, seed=1)
    independent_run = estimate_density_independent(topology, num_agents, baseline_rounds, seed=1)
    print(
        f"\nAt t = {baseline_rounds} (the regime where Theorem 32 applies):\n"
        f"  random-walk epsilon        = {walk_run.empirical_epsilon(delta):.3f}\n"
        f"  independent-sampling epsilon = {independent_run.empirical_epsilon(delta):.3f}"
    )
    print(
        "\nThe mean estimate sits on the true density (the estimator is unbiased), the\n"
        "empirical epsilon shrinks roughly like 1/sqrt(rounds) as Theorem 1 predicts, and the\n"
        "random-walk estimator stays within a small factor of independent sampling."
    )


if __name__ == "__main__":
    main()
