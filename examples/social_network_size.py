"""Estimating the size of a hidden social network with random walks.

Reproduces the Section 5.1 application end-to-end: a graph that can only be
accessed through link queries is sized by (1) burning in a set of random
walks from a single seed profile, (2) estimating the average degree by
inverse-degree sampling (Algorithm 3), and (3) counting degree-weighted
collisions over many rounds (Algorithm 2). The example also runs the
single-shot [KLSC14] baseline with the same burn-in so the link-query
trade-off of Section 5.1.5 is visible.

Run with::

    python examples/social_network_size.py
"""

from __future__ import annotations

import networkx as nx

from repro import NetworkXTopology
from repro.netsize import NetworkSizeEstimationPipeline
from repro.utils.tables import format_table


def build_hidden_network(seed: int = 7) -> NetworkXTopology:
    """A synthetic social-network-like graph (power-law-ish degrees, triadic closure)."""
    graph = nx.powerlaw_cluster_graph(3000, 4, 0.2, seed=seed)
    return NetworkXTopology(graph, name="hidden_social_network")


def main() -> None:
    network = build_hidden_network()
    print(
        f"Hidden network: |V| = {network.num_nodes}, |E| = {network.num_edges}, "
        f"average degree = {network.average_degree:.2f}"
    )
    print("(the estimators below see it only through link queries)\n")

    rows = []
    for label, num_walks, rounds in (
        ("Algorithm 2, t = 8", 400, 8),
        ("Algorithm 2, t = 64", 160, 64),
        ("Katzir baseline (t = 0)", 400, 1),
    ):
        pipeline = NetworkSizeEstimationPipeline(
            network, num_walks=num_walks, rounds=rounds, burn_in=80
        )
        if label.startswith("Katzir"):
            report = pipeline.run_katzir_baseline(seed=1)
        else:
            report = pipeline.run(seed=1)
        rows.append(
            [
                label,
                num_walks,
                report.size_estimate,
                report.relative_error,
                report.average_degree_estimate,
                report.link_queries,
            ]
        )

    print(
        format_table(
            ["method", "walks", "size estimate", "rel. error", "deg estimate", "link queries"],
            rows,
            title=f"Estimating |V| = {network.num_nodes} through link queries",
        )
    )
    print(
        "\nLonger walks (larger t) let Algorithm 2 use fewer walkers, which cuts the burn-in\n"
        "query cost - the trade-off the paper highlights over the halt-and-count baseline."
    )


if __name__ == "__main__":
    main()
