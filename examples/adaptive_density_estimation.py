"""Adaptive density estimation: walking until the estimate is good enough.

Theorem 1 prescribes a round budget that depends on the unknown density
``d`` — awkward when ``d`` is exactly what the agent is trying to learn. The
adaptive estimator removes the circularity with a doubling schedule: agents
keep walking, and stop once the confidence interval around their running
encounter rate is narrower than the requested relative width. The example
runs the same adaptive procedure in a dense and a sparse environment and
shows that the stopping time automatically scales like ``~ 1/d``, matching
the fixed-budget prescription without ever being told the density.

Run with::

    python examples/adaptive_density_estimation.py
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core import bounds
from repro.topology.torus import Torus2D
from repro.utils.tables import format_table


def main() -> None:
    target_epsilon = 0.3
    delta = 0.1
    scenarios = [
        ("dense nest chamber", Torus2D(20), 120),    # d ~ 0.30
        ("normal arena", Torus2D(40), 120),          # d ~ 0.074
        ("sparse foraging ground", Torus2D(64), 120),  # d ~ 0.029
    ]

    rows = []
    for label, workspace, agents in scenarios:
        estimator = AdaptiveDensityEstimator(
            workspace,
            num_agents=agents,
            target_epsilon=target_epsilon,
            delta=delta,
            max_rounds=60_000,
        )
        outcome = estimator.run(seed=7)
        prescription = bounds.theorem1_rounds(outcome.true_density, target_epsilon, delta)
        rows.append(
            [
                label,
                outcome.true_density,
                outcome.rounds_used,
                prescription,
                outcome.mean_estimate(),
                outcome.converged_fraction,
            ]
        )

    print(
        format_table(
            [
                "scenario",
                "true density",
                "adaptive rounds used",
                "Theorem 1 prescription",
                "mean estimate",
                "fraction converged",
            ],
            rows,
            title=f"Adaptive estimation to relative width {target_epsilon} (delta = {delta})",
        )
    )
    print(
        "\nNo agent was told the density, yet the adaptive stopping times track the\n"
        "~1/d scaling of the fixed-budget prescription: sparser environments automatically\n"
        "earn longer walks."
    )


if __name__ == "__main__":
    main()
