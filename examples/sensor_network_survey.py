"""Surveying a sensor network with a randomly walking query token.

Reproduces the Section 6.3.1 application: a base station injects a query
token into a grid of sensors; the token is relayed to a random neighbouring
sensor at every hop and averages the readings it sees. Because the grid has
strong local mixing, repeat visits are rare and the token's estimate is
nearly as good as independently sampling sensors - without any node having
to remember which sensors were already visited.

Run with::

    python examples/sensor_network_survey.py
"""

from __future__ import annotations

import numpy as np

from repro.sensor import SensorGrid, independent_sample_mean, token_mean_estimate
from repro.utils.tables import format_table


def main() -> None:
    side = 80
    # Each sensor records an independent reading (e.g. whether a local event was
    # detected plus measurement noise). Independence across sensors is the
    # regime the paper's analysis covers - see the note printed at the end for
    # what happens with spatially correlated fields.
    def readings(num_sensors: int, rng: np.random.Generator) -> np.ndarray:
        return 20.0 + 5.0 * rng.standard_normal(num_sensors)

    network = SensorGrid(side, readings, seed=0)
    print(
        f"Sensor grid with {network.num_sensors} sensors; true mean reading = "
        f"{network.true_mean:.3f}\n"
    )

    rows = []
    for budget in (200, 1000, 5000):
        token = token_mean_estimate(network, budget, seed=budget)
        baseline = independent_sample_mean(network, budget, seed=budget + 1)
        rows.append(
            [
                budget,
                token.estimate,
                token.relative_error,
                token.repeat_visit_fraction,
                baseline.estimate,
                baseline.relative_error,
            ]
        )

    print(
        format_table(
            [
                "probes",
                "token estimate",
                "token rel. error",
                "repeat-visit fraction",
                "indep. estimate",
                "indep. rel. error",
            ],
            rows,
            title="Token random-walk survey vs independent sampling",
        )
    )
    print(
        "\nThe token's error tracks the independent-sampling error closely even though a\n"
        "noticeable fraction of hops revisit sensors - the strong local mixing of the grid\n"
        "(Corollary 15 of the paper) keeps the redundancy from hurting. Note that this holds\n"
        "for readings that are independent across sensors; for strongly spatially correlated\n"
        "fields a local walk needs to cover more ground, which is outside the paper's claim."
    )


if __name__ == "__main__":
    main()
