"""Robot swarm task allocation via encounter-rate density estimation.

Reproduces the Section 5.2 application: a swarm of robots on a grid
workspace tracks, purely through collisions, (a) the overall swarm density
and (b) the fraction of robots currently performing each task. A robot that
senses too few foragers switches to foraging - the decentralised
task-reallocation rule ant colonies are believed to use [Gor99].

Run with::

    python examples/robot_swarm_task_allocation.py
"""

from __future__ import annotations

import numpy as np

from repro.swarm import NoisyCollisionModel, RobotSwarm
from repro.topology.torus import Torus2D
from repro.utils.tables import format_table


def main() -> None:
    workspace = Torus2D(40)
    num_robots = 480
    target_forager_fraction = 0.4

    swarm = RobotSwarm(
        workspace=workspace,
        num_robots=num_robots,
        groups={"forager": 0.25, "explorer": 0.35},
        collision_model=NoisyCollisionModel(miss_probability=0.1),
        seed=3,
    )
    print(
        f"Swarm of {num_robots} robots on a {workspace.side}x{workspace.side} workspace; "
        f"25% foragers, 35% explorers, 10% of collisions go undetected\n"
    )

    report = swarm.estimate_densities(rounds=500, seed=4)

    rows = []
    for group in ("forager", "explorer"):
        estimates = report.frequency_estimates(group)
        rows.append(
            [
                group,
                report.true_frequency(group),
                float(np.median(estimates)),
                float(np.quantile(np.abs(estimates - report.true_frequency(group)), 0.9)),
            ]
        )
    print(
        format_table(
            ["task group", "true fraction", "median estimated fraction", "p90 absolute error"],
            rows,
            title="Per-robot task-fraction estimates from encounter rates",
        )
    )

    forager_estimates = report.frequency_estimates("forager")
    switching = float(np.mean(forager_estimates < target_forager_fraction))
    print(
        f"\nWith a target forager fraction of {target_forager_fraction:.0%}, "
        f"{switching:.0%} of the non-forager robots would switch to foraging based on\n"
        "their own local estimate - no central coordinator or message passing required."
    )


if __name__ == "__main__":
    main()
