"""Online density tracking through a population crash.

Runs the ``crash`` scenario from the dynamics catalog — 60% of the swarm
departs at mid-run — and shows what each anytime estimator reports round by
round: Algorithm 1's running ``c/t`` average goes stale after the shock,
while the sliding-window tracker (reset by the change detector) re-converges
to the new density within one window. Finishes with a churn sweep showing
that uniformly placed arrivals keep the estimate unbiased.

Run with::

    PYTHONPATH=src python examples/dynamic_density_tracking.py
"""

from __future__ import annotations

from repro import build_scenario, run_scenario
from repro.dynamics import Scenario, random_churn_schedule
from repro.utils.tables import format_table


def crash_tracking() -> None:
    scenario = build_scenario("crash", rounds=240, side=24, num_agents=120)
    shock_round = scenario.events.events[0].round + 1
    print(
        f"Scenario '{scenario.name}': {scenario.description}\n"
        f"Torus 24x24, {scenario.num_agents} agents, {scenario.rounds} rounds; "
        f"the crash hits after round {shock_round}.\n"
    )

    outcome = run_scenario(scenario, replicates=8, seed=0)
    rows = []
    for record in outcome.records()[19::20]:
        rows.append(
            [
                record["round"],
                record["population"],
                record["true_density"],
                record["running"],
                record["window"],
                f"[{record['ci_low']:.3f}, {record['ci_high']:.3f}]",
                "*" if record["change_fraction"] > 0 else "",
            ]
        )
    print(
        format_table(
            ["round", "agents", "true d", "running c/t", "window", "90% CI", "flag"],
            rows,
            float_format=".4f",
        )
    )

    detections = []
    false_alarms = 0
    for rounds in outcome.change_rounds():
        post = [r for r in rounds if r >= shock_round]
        false_alarms += len(rounds) - len(post)
        if post:
            detections.append(post[0])
    print(
        f"\nchange detector: {len(detections)}/{outcome.replicates} replicates "
        f"flagged the crash (rounds {sorted(detections)}), "
        f"{false_alarms} pre-shock false alarm(s)"
    )
    summary = outcome.summary()
    print("mean relative tracking error over the whole run:")
    for name, error in summary["mean_relative_error"].items():
        print(f"  {name:11s} {error:.3f}")


def churn_sweep() -> None:
    print("\nSymmetric Poisson churn (arrivals = departures in expectation):\n")
    rows = []
    for rate in (0.0, 0.01, 0.05):
        events = random_churn_schedule(200, rate * 120, rate * 120, seed=7)
        scenario = Scenario(
            name=f"churn-{rate:g}",
            description="uniform arrivals keep the encounter rate unbiased",
            topology={"kind": "torus2d", "side": 24},
            num_agents=120,
            rounds=200,
            events=events,
        )
        outcome = run_scenario(scenario, replicates=8, seed=1)
        density = outcome.true_density
        window = outcome.estimates["window"].mean(axis=1)
        tail = slice(100, None)
        error = float(
            (abs(window[tail] - density[tail]) / density[tail]).mean()
        )
        rows.append([rate, int(outcome.population[-1]), float(density[-1]), error])
    print(
        format_table(
            ["churn rate", "final agents", "final d", "window rel. error"],
            rows,
            float_format=".4f",
        )
    )
    print("\nTracking error grows only mildly with churn: arrivals land on the")
    print("walk's stationary distribution, so the estimator stays unbiased.")


def main() -> None:
    crash_tracking()
    churn_sweep()


if __name__ == "__main__":
    main()
