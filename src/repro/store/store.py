"""The append-only, schema-versioned columnar result store.

On-disk layout::

    <root>/
      _schema.json             # schema version, format, provenance, columns
      segments/
        <segment>.ndjson       # one part file per append (or .parquet)
        <segment>.meta.json    # optional sidecar metadata for the segment

Design constraints, in order:

1. **Durability / atomicity** — every file is written to a temp name and
   published with ``os.replace``, so a killed writer never leaves a torn
   segment and concurrent writers never observe partial data.
2. **Idempotent appends** — a segment name identifies its content (sweep
   cells use ``<sweep>-cell-<index>-<cellkey12>``); appending a segment that
   already exists is a no-op. Resuming an interrupted producer therefore
   reconstructs a byte-identical store.
3. **Determinism** — rows are serialised with sorted keys and fixed
   separators, column unions are kept sorted, and no wall-clock timestamps
   enter any file, so two runs of the same workload produce bit-identical
   stores regardless of worker count or completion order.
4. **Zero hard dependencies** — Parquet via ``pyarrow`` when it is
   installed, NDJSON otherwise. The format is pinned per store at creation
   and validated on every open.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro import __version__
from repro.utils.atomic import atomic_write_bytes as _atomic_write_bytes
from repro.utils.atomic import atomic_write_text as _atomic_write_text
from repro.utils.provenance import git_sha as _git_sha
from repro.utils.serialization import rows_to_csv, to_jsonable

#: Bump when the on-disk layout or row conventions change incompatibly.
STORE_SCHEMA_VERSION = 1

_SEGMENT_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow as _pa
    import pyarrow.parquet as _pq

    _HAVE_PYARROW = True
except ImportError:
    _pa = _pq = None
    _HAVE_PYARROW = False


class StoreError(RuntimeError):
    """A store is unreadable, incompatible, or was asked to do the impossible."""


def default_store_format() -> str:
    """The best format this environment can write: parquet if available, else ndjson."""
    return "parquet" if _HAVE_PYARROW else "ndjson"


def _encode_rows_ndjson(rows: Sequence[Mapping[str, Any]]) -> str:
    lines = [
        json.dumps(to_jsonable(row), sort_keys=True, separators=(",", ":"), ensure_ascii=True)
        for row in rows
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _matches(row: Mapping[str, Any], where: Mapping[str, Any]) -> bool:
    for key, expected in where.items():
        if key not in row:
            return False
        actual = row[key]
        if actual == expected:
            continue
        # CLI filters arrive as strings; compare loosely against the stored
        # value's canonical text so `--where rounds=100` matches the int 100.
        if str(actual) == str(expected):
            continue
        try:
            if float(actual) == float(expected):
                continue
        except (TypeError, ValueError):
            pass
        return False
    return True


class ResultStore:
    """An append-only store of row segments with a small query API.

    Parameters
    ----------
    directory:
        Store root; created (with its schema document) on first append.
    fmt:
        ``"parquet"``, ``"ndjson"``, or ``None`` (default) for the best
        format available. Only consulted when the store is *created*; an
        existing store keeps the format pinned in its schema document, and
        asking for a different one raises :class:`StoreError`.
    """

    def __init__(self, directory: str | Path, fmt: str | None = None):
        self.directory = Path(directory)
        if fmt is not None and fmt not in ("parquet", "ndjson"):
            raise StoreError(f"unknown store format {fmt!r}; expected 'parquet' or 'ndjson'")
        self._requested_format = fmt
        #: In-memory copy of the schema document. Safe to cache: the format
        #: and provenance are pinned at creation, and this process is the
        #: only writer of its own document updates. Spares one open+parse of
        #: _schema.json per segment operation.
        self._schema_cache: dict[str, Any] | None = None
        schema = self._read_schema()
        if schema is not None and fmt is not None and schema["format"] != fmt:
            raise StoreError(
                f"store at {self.directory} is pinned to format {schema['format']!r}, "
                f"but {fmt!r} was requested"
            )

    # ------------------------------------------------------------------
    # Schema / provenance
    # ------------------------------------------------------------------
    @property
    def schema_path(self) -> Path:
        return self.directory / "_schema.json"

    @property
    def segments_dir(self) -> Path:
        return self.directory / "segments"

    def _read_schema(self) -> dict[str, Any] | None:
        if self._schema_cache is not None:
            return self._schema_cache
        try:
            with open(self.schema_path, "r", encoding="utf-8") as handle:
                schema = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            raise StoreError(f"unreadable store schema at {self.schema_path}: {error}") from error
        version = schema.get("schema_version")
        if version != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"store at {self.directory} has schema version {version!r}; "
                f"this build reads version {STORE_SCHEMA_VERSION}"
            )
        if schema.get("format") not in ("parquet", "ndjson"):
            raise StoreError(f"store schema pins unknown format {schema.get('format')!r}")
        if schema["format"] == "parquet" and not _HAVE_PYARROW:
            raise StoreError(
                f"store at {self.directory} is in parquet format but pyarrow is not installed"
            )
        self._schema_cache = schema
        return schema

    def _write_schema(self, schema: Mapping[str, Any]) -> None:
        _atomic_write_text(self.schema_path, json.dumps(schema, indent=2, sort_keys=True) + "\n")
        self._schema_cache = dict(schema)

    def _ensure_schema(self, provenance: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Load the schema document, creating it (with provenance) on first use.

        Provenance is captured once, at creation: the first writer pins the
        package version, python version, git SHA, and any extra keys it
        passes (the sweep runner records the sweep name and seed root).
        Later appends leave it untouched, so an interrupted-then-resumed
        producer yields the same schema document as an uninterrupted one.
        """
        schema = self._read_schema()
        if schema is not None:
            return schema
        base_provenance: dict[str, Any] = {
            "package_version": __version__,
            "python": ".".join(str(part) for part in sys.version_info[:2]),
            "git_sha": _git_sha(),
        }
        if provenance:
            base_provenance.update(to_jsonable(provenance))
        schema = {
            "schema_version": STORE_SCHEMA_VERSION,
            "format": self._requested_format or default_store_format(),
            "provenance": base_provenance,
        }
        self._write_schema(schema)
        return schema

    def schema(self) -> dict[str, Any]:
        """The store's schema document (raises :class:`StoreError` if absent)."""
        schema = self._read_schema()
        if schema is None:
            raise StoreError(f"no store exists at {self.directory} (no _schema.json)")
        return schema

    def exists(self) -> bool:
        return self.schema_path.is_file()

    def format(self) -> str:
        return str(self.schema()["format"])

    def provenance(self) -> dict[str, Any]:
        """Run-provenance metadata recorded when the store was created."""
        return dict(self.schema().get("provenance", {}))

    def columns(self) -> list[str]:
        """Sorted union of the column names across every stored row.

        Derived from the data on every call rather than accumulated in the
        schema document: an incremental read-modify-write there could lose
        columns under concurrent writers and leave a killed append
        half-recorded, whereas the data files themselves are the single
        source of truth.
        """
        seen: set[str] = set()
        for row in self.rows():
            seen.update(row)
        return sorted(seen)

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def _segment_path(self, segment: str) -> Path:
        if not segment or set(segment) - _SEGMENT_CHARS or segment.startswith("."):
            raise StoreError(
                f"segment names use [A-Za-z0-9._-] and must not start with '.', got {segment!r}"
            )
        extension = "parquet" if self.format() == "parquet" else "ndjson"
        return self.segments_dir / f"{segment}.{extension}"

    def has_segment(self, segment: str) -> bool:
        return self.exists() and self._segment_path(segment).exists()

    def append(
        self,
        segment: str,
        rows: Sequence[Mapping[str, Any]],
        *,
        meta: Mapping[str, Any] | None = None,
        provenance: Mapping[str, Any] | None = None,
    ) -> bool:
        """Append ``rows`` as one atomically-written segment.

        Returns ``True`` if the segment was written, ``False`` if a segment
        of that name already exists (the append is skipped — idempotence is
        what makes interrupted sweeps resumable without duplicating rows).
        ``meta`` is stored as a JSON sidecar next to the part file;
        ``provenance`` only matters for the very first append, which creates
        the store.

        The part file is the **commit point**: the meta sidecar is published
        first, so once the part file exists the segment is complete in every
        respect. A writer killed before the part file lands leaves at most a
        meta sidecar that the retried (idempotent, deterministic) append
        simply rewrites with identical bytes.
        """
        self._ensure_schema(provenance)
        path = self._segment_path(segment)
        if path.exists():
            return False
        if meta is not None:
            meta_path = self.segments_dir / f"{segment}.meta.json"
            _atomic_write_text(
                meta_path, json.dumps(to_jsonable(meta), indent=2, sort_keys=True) + "\n"
            )
        normalised = [dict(to_jsonable(row)) for row in rows]
        if self.format() == "parquet":  # pragma: no cover - needs pyarrow
            table = _pa.Table.from_pylist(normalised)
            import io

            sink = io.BytesIO()
            _pq.write_table(table, sink)
            _atomic_write_bytes(path, sink.getvalue())
        else:
            _atomic_write_text(path, _encode_rows_ndjson(normalised))
        return True

    def read_meta(self, segment: str) -> dict[str, Any] | None:
        """The sidecar metadata of ``segment``, or ``None`` if it has none."""
        meta_path = self.segments_dir / f"{segment}.meta.json"
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            raise StoreError(f"unreadable segment metadata {meta_path}: {error}") from error

    # ------------------------------------------------------------------
    # Read / query
    # ------------------------------------------------------------------
    def segments(self) -> list[str]:
        """Sorted names of all segments in the store."""
        if not self.segments_dir.is_dir():
            return []
        extension = ".parquet" if self.format() == "parquet" else ".ndjson"
        return sorted(
            entry.name[: -len(extension)]
            for entry in self.segments_dir.iterdir()
            if entry.name.endswith(extension)
        )

    def read_segment(self, segment: str) -> list[dict[str, Any]]:
        """All rows of one segment, in append order."""
        return self._read_segment(segment)

    def _read_segment(self, segment: str) -> list[dict[str, Any]]:
        path = self._segment_path(segment)
        if self.format() == "parquet":  # pragma: no cover - needs pyarrow
            return _pq.read_table(path).to_pylist()
        rows = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rows.append(json.loads(line))
                    except ValueError as error:
                        raise StoreError(
                            f"corrupt row in segment {segment!r} line {line_number}: {error}"
                        ) from error
        except FileNotFoundError as error:
            raise StoreError(f"segment {segment!r} does not exist") from error
        return rows

    def rows(self) -> Iterator[dict[str, Any]]:
        """All rows of the store, in (segment name, row) order."""
        for segment in self.segments():
            yield from self._read_segment(segment)

    def count(self) -> int:
        return sum(1 for _ in self.rows())

    def select(
        self,
        *,
        where: Mapping[str, Any] | None = None,
        predicate: Callable[[Mapping[str, Any]], bool] | None = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Rows matching the given filters, optionally projected to ``columns``.

        ``where`` applies per-column equality filters (numeric strings match
        their numeric values, so CLI-sourced filters work); ``predicate`` is
        an arbitrary row test applied after ``where``. Rows come back in
        deterministic (segment, row) order.
        """
        out: list[dict[str, Any]] = []
        for row in self.rows():
            if where and not _matches(row, where):
                continue
            if predicate is not None and not predicate(row):
                continue
            if columns is not None:
                row = {column: row.get(column) for column in columns}
            out.append(row)
            if limit is not None and len(out) >= limit:
                break
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, output: str | Path, *, fmt: str = "csv", columns: Sequence[str] | None = None) -> int:
        """Write every row to ``output`` as CSV or NDJSON; returns the row count."""
        rows = self.select(columns=list(columns) if columns is not None else None)
        if fmt == "csv":
            # Column union from the rows already in hand — no second scan.
            cols = (
                list(columns)
                if columns is not None
                else sorted({key for row in rows for key in row})
            )
            text = rows_to_csv(rows, columns=cols)
        elif fmt == "ndjson":
            text = _encode_rows_ndjson(rows)
        else:
            raise StoreError(f"unknown export format {fmt!r}; expected 'csv' or 'ndjson'")
        _atomic_write_text(Path(output), text)
        return len(rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore(directory={str(self.directory)!r})"


__all__ = ["ResultStore", "StoreError", "STORE_SCHEMA_VERSION", "default_store_format"]
