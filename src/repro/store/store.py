"""The append-only, schema-versioned columnar result store.

On-disk layout::

    <root>/
      _schema.json             # schema version, format, provenance, columns
      segments/
        <segment>.ndjson       # one part file per append (or .parquet)
        <segment>.meta.json    # optional sidecar metadata for the segment

Design constraints, in order:

1. **Durability / atomicity** — every file is written to a temp name and
   published with ``os.replace``, so a killed writer never leaves a torn
   segment and concurrent writers never observe partial data.
2. **Idempotent appends** — a segment name identifies its content (sweep
   cells use ``<sweep>-cell-<index>-<cellkey12>``); appending a segment that
   already exists is a no-op. Resuming an interrupted producer therefore
   reconstructs a byte-identical store.
3. **Determinism** — rows are serialised with sorted keys and fixed
   separators, column unions are kept sorted, and no wall-clock timestamps
   enter any file, so two runs of the same workload produce bit-identical
   stores regardless of worker count or completion order.
4. **Zero hard dependencies** — Parquet via ``pyarrow`` when it is
   installed, NDJSON otherwise. The format is pinned per store at creation
   and validated on every open.
"""

from __future__ import annotations

import filecmp
import json
import sys
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro import __version__
from repro.obs.telemetry import get_telemetry
from repro.utils.atomic import atomic_copy_file as _atomic_copy_file
from repro.utils.atomic import atomic_text_writer as _atomic_text_writer
from repro.utils.atomic import atomic_write_bytes as _atomic_write_bytes
from repro.utils.atomic import atomic_write_text as _atomic_write_text
from repro.utils.provenance import git_sha as _git_sha
from repro.utils.serialization import csv_line, to_jsonable

#: Bump when the on-disk layout or row conventions change incompatibly.
STORE_SCHEMA_VERSION = 1

_SEGMENT_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow as _pa
    import pyarrow.parquet as _pq

    _HAVE_PYARROW = True
except ImportError:
    _pa = _pq = None
    _HAVE_PYARROW = False


class StoreError(RuntimeError):
    """A store is unreadable, incompatible, or was asked to do the impossible."""


def default_store_format() -> str:
    """The best format this environment can write: parquet if available, else ndjson."""
    return "parquet" if _HAVE_PYARROW else "ndjson"


def _encode_row_ndjson(row: Mapping[str, Any]) -> str:
    """One row in the store's canonical NDJSON form (no trailing newline)."""
    return json.dumps(to_jsonable(row), sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def _encode_rows_ndjson(rows: Sequence[Mapping[str, Any]]) -> str:
    lines = [_encode_row_ndjson(row) for row in rows]
    return "\n".join(lines) + ("\n" if lines else "")


def _matches(row: Mapping[str, Any], where: Mapping[str, Any]) -> bool:
    for key, expected in where.items():
        if key not in row:
            return False
        actual = row[key]
        if actual == expected:
            continue
        # CLI filters arrive as strings; compare loosely against the stored
        # value's canonical text so `--where rounds=100` matches the int 100.
        if str(actual) == str(expected):
            continue
        try:
            if float(actual) == float(expected):
                continue
        except (TypeError, ValueError):
            pass
        return False
    return True


def _parquet_pushdown(arrow_schema: Any, where: Mapping[str, Any]) -> tuple[list | None, int]:  # pragma: no cover
    """The ``where`` clauses that can safely push into the Parquet reader.

    Returns ``(filters, pushed)`` where ``filters`` is a pyarrow
    ``read_table`` DNF filter list (or ``None``) and ``pushed`` counts the
    clauses it covers. A clause is pushed only when reader-side equality
    provably implies :func:`_matches` equality — numeric expected value
    against a numeric (non-bool) column, bool against bool, or a
    non-numeric string against a string column. Everything else (numeric
    strings against string columns, cross-type comparisons) stays
    reader-side: :func:`_matches` is re-applied to every returned row, so a
    skipped clause costs I/O, never correctness.
    """
    filters: list[tuple[str, str, Any]] = []
    pushed = 0
    names = set(arrow_schema.names)
    for key, expected in where.items():
        if key not in names:
            continue
        column_type = arrow_schema.field(key).type
        numeric_column = (
            _pa.types.is_integer(column_type) or _pa.types.is_floating(column_type)
        )
        if isinstance(expected, bool):
            if _pa.types.is_boolean(column_type):
                filters.append((key, "==", expected))
                pushed += 1
            continue
        if isinstance(expected, (int, float)):
            if numeric_column:
                filters.append((key, "==", expected))
                pushed += 1
            continue
        if isinstance(expected, str):
            try:
                number = float(expected)
            except ValueError:
                if _pa.types.is_string(column_type) or _pa.types.is_large_string(column_type):
                    filters.append((key, "==", expected))
                    pushed += 1
                continue
            if numeric_column:
                filters.append((key, "==", number))
                pushed += 1
    return (filters or None), pushed


class ResultStore:
    """An append-only store of row segments with a small query API.

    Parameters
    ----------
    directory:
        Store root; created (with its schema document) on first append.
    fmt:
        ``"parquet"``, ``"ndjson"``, or ``None`` (default) for the best
        format available. Only consulted when the store is *created*; an
        existing store keeps the format pinned in its schema document, and
        asking for a different one raises :class:`StoreError`.
    """

    def __init__(self, directory: str | Path, fmt: str | None = None):
        self.directory = Path(directory)
        if fmt is not None and fmt not in ("parquet", "ndjson"):
            raise StoreError(f"unknown store format {fmt!r}; expected 'parquet' or 'ndjson'")
        self._requested_format = fmt
        #: In-memory copy of the schema document. Safe to cache: the format
        #: and provenance are pinned at creation, and this process is the
        #: only writer of its own document updates. Spares one open+parse of
        #: _schema.json per segment operation.
        self._schema_cache: dict[str, Any] | None = None
        schema = self._read_schema()
        if schema is not None and fmt is not None and schema["format"] != fmt:
            raise StoreError(
                f"store at {self.directory} is pinned to format {schema['format']!r}, "
                f"but {fmt!r} was requested"
            )

    # ------------------------------------------------------------------
    # Schema / provenance
    # ------------------------------------------------------------------
    @property
    def schema_path(self) -> Path:
        return self.directory / "_schema.json"

    @property
    def segments_dir(self) -> Path:
        return self.directory / "segments"

    def _read_schema(self) -> dict[str, Any] | None:
        if self._schema_cache is not None:
            return self._schema_cache
        try:
            with open(self.schema_path, "r", encoding="utf-8") as handle:
                schema = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            raise StoreError(f"unreadable store schema at {self.schema_path}: {error}") from error
        version = schema.get("schema_version")
        if version != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"store at {self.directory} has schema version {version!r}; "
                f"this build reads version {STORE_SCHEMA_VERSION}"
            )
        if schema.get("format") not in ("parquet", "ndjson"):
            raise StoreError(f"store schema pins unknown format {schema.get('format')!r}")
        if schema["format"] == "parquet" and not _HAVE_PYARROW:
            raise StoreError(
                f"store at {self.directory} is in parquet format but pyarrow is not installed"
            )
        self._schema_cache = schema
        return schema

    def _write_schema(self, schema: Mapping[str, Any]) -> None:
        _atomic_write_text(self.schema_path, json.dumps(schema, indent=2, sort_keys=True) + "\n")
        self._schema_cache = dict(schema)

    def _ensure_schema(self, provenance: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Load the schema document, creating it (with provenance) on first use.

        Provenance is captured once, at creation: the first writer pins the
        package version, python version, git SHA, and any extra keys it
        passes (the sweep runner records the sweep name and seed root).
        Later appends leave it untouched, so an interrupted-then-resumed
        producer yields the same schema document as an uninterrupted one.
        """
        schema = self._read_schema()
        if schema is not None:
            return schema
        base_provenance: dict[str, Any] = {
            "package_version": __version__,
            "python": ".".join(str(part) for part in sys.version_info[:2]),
            "git_sha": _git_sha(),
        }
        if provenance:
            base_provenance.update(to_jsonable(provenance))
        schema = {
            "schema_version": STORE_SCHEMA_VERSION,
            "format": self._requested_format or default_store_format(),
            "provenance": base_provenance,
        }
        self._write_schema(schema)
        return schema

    def schema(self) -> dict[str, Any]:
        """The store's schema document (raises :class:`StoreError` if absent)."""
        schema = self._read_schema()
        if schema is None:
            raise StoreError(f"no store exists at {self.directory} (no _schema.json)")
        return schema

    def exists(self) -> bool:
        return self.schema_path.is_file()

    def format(self) -> str:
        return str(self.schema()["format"])

    def provenance(self) -> dict[str, Any]:
        """Run-provenance metadata recorded when the store was created."""
        return dict(self.schema().get("provenance", {}))

    def columns(self) -> list[str]:
        """Sorted union of the column names across every stored row.

        Derived from the data on every call rather than accumulated in the
        schema document: an incremental read-modify-write there could lose
        columns under concurrent writers and leave a killed append
        half-recorded, whereas the data files themselves are the single
        source of truth.
        """
        seen: set[str] = set()
        for row in self.rows():
            seen.update(row)
        return sorted(seen)

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def _segment_path(self, segment: str) -> Path:
        if not segment or set(segment) - _SEGMENT_CHARS or segment.startswith("."):
            raise StoreError(
                f"segment names use [A-Za-z0-9._-] and must not start with '.', got {segment!r}"
            )
        extension = "parquet" if self.format() == "parquet" else "ndjson"
        return self.segments_dir / f"{segment}.{extension}"

    def has_segment(self, segment: str) -> bool:
        return self.exists() and self._segment_path(segment).exists()

    def append(
        self,
        segment: str,
        rows: Sequence[Mapping[str, Any]],
        *,
        meta: Mapping[str, Any] | None = None,
        provenance: Mapping[str, Any] | None = None,
    ) -> bool:
        """Append ``rows`` as one atomically-written segment.

        Returns ``True`` if the segment was written, ``False`` if a segment
        of that name already exists (the append is skipped — idempotence is
        what makes interrupted sweeps resumable without duplicating rows).
        ``meta`` is stored as a JSON sidecar next to the part file;
        ``provenance`` only matters for the very first append, which creates
        the store.

        The part file is the **commit point**: the meta sidecar is published
        first, so once the part file exists the segment is complete in every
        respect. A writer killed before the part file lands leaves at most a
        meta sidecar that the retried (idempotent, deterministic) append
        simply rewrites with identical bytes.
        """
        self._ensure_schema(provenance)
        path = self._segment_path(segment)
        if path.exists():
            return False
        if meta is not None:
            meta_path = self.segments_dir / f"{segment}.meta.json"
            _atomic_write_text(
                meta_path, json.dumps(to_jsonable(meta), indent=2, sort_keys=True) + "\n"
            )
        normalised = [dict(to_jsonable(row)) for row in rows]
        if self.format() == "parquet":  # pragma: no cover - needs pyarrow
            table = _pa.Table.from_pylist(normalised)
            import io

            sink = io.BytesIO()
            _pq.write_table(table, sink)
            _atomic_write_bytes(path, sink.getvalue())
        else:
            _atomic_write_text(path, _encode_rows_ndjson(normalised))
        return True

    def read_meta(self, segment: str) -> dict[str, Any] | None:
        """The sidecar metadata of ``segment``, or ``None`` if it has none."""
        meta_path = self.segments_dir / f"{segment}.meta.json"
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            raise StoreError(f"unreadable segment metadata {meta_path}: {error}") from error

    # ------------------------------------------------------------------
    # Read / query
    # ------------------------------------------------------------------
    def segments(self) -> list[str]:
        """Sorted names of all segments in the store."""
        if not self.segments_dir.is_dir():
            return []
        extension = ".parquet" if self.format() == "parquet" else ".ndjson"
        return sorted(
            entry.name[: -len(extension)]
            for entry in self.segments_dir.iterdir()
            if entry.name.endswith(extension)
        )

    def read_segment(self, segment: str) -> list[dict[str, Any]]:
        """All rows of one segment, in append order."""
        return self._read_segment(segment)

    def _read_segment(self, segment: str) -> list[dict[str, Any]]:
        if self.format() == "parquet":  # pragma: no cover - needs pyarrow
            path = self._segment_path(segment)
            return _pq.read_table(path).to_pylist()
        return list(self._iter_segment_ndjson(segment))

    def _iter_segment_ndjson(self, segment: str) -> Iterator[dict[str, Any]]:
        """Decode one NDJSON segment lazily, line by line."""
        path = self._segment_path(segment)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except ValueError as error:
                        raise StoreError(
                            f"corrupt row in segment {segment!r} line {line_number}: {error}"
                        ) from error
        except FileNotFoundError as error:
            raise StoreError(f"segment {segment!r} does not exist") from error
        except OSError as error:
            raise StoreError(f"unreadable segment {segment!r}: {error}") from error

    def _iter_segment_parquet(  # pragma: no cover - needs pyarrow
        self,
        segment: str,
        *,
        where: Mapping[str, Any] | None,
        predicate: Callable[[Mapping[str, Any]], bool] | None,
        columns: Sequence[str] | None,
        stats: dict[str, int],
    ) -> Iterator[dict[str, Any]]:
        """Read one Parquet segment with column projection and filter pushdown.

        Projection never drops a column a later stage needs: the ``where``
        keys ride along so :func:`_matches` can re-check every row, and an
        arbitrary ``predicate`` disables projection entirely. Pushdown only
        narrows I/O (see :func:`_parquet_pushdown`); a ``where`` key missing
        from the segment's schema rejects the whole segment unopened, since
        ``_matches`` maps a missing key to ``False`` for every row.
        """
        path = self._segment_path(segment)
        try:
            parquet_file = _pq.ParquetFile(path)
        except FileNotFoundError as error:
            raise StoreError(f"segment {segment!r} does not exist") from error
        except OSError as error:
            raise StoreError(f"unreadable segment {segment!r}: {error}") from error
        arrow_schema = parquet_file.schema_arrow
        names = set(arrow_schema.names)
        if where:
            missing = [key for key in where if key not in names]
            if missing:
                stats["skipped"] += 1
                stats["pushdown"] += 1
                return
        filters, pushed = _parquet_pushdown(arrow_schema, where or {})
        read_columns: list[str] | None = None
        if columns is not None and predicate is None:
            wanted = set(columns) | set(where or {})
            read_columns = sorted(wanted & names)
        stats["opened"] += 1
        stats["pushdown"] += pushed
        table = _pq.read_table(path, columns=read_columns, filters=filters)
        for row in table.to_pylist():
            # Projected-away requested columns come back as None via the
            # common projection step, matching the NDJSON path.
            yield row

    def _segment_row_stream(
        self,
        segment: str,
        *,
        where: Mapping[str, Any] | None,
        predicate: Callable[[Mapping[str, Any]], bool] | None,
        columns: Sequence[str] | None,
        stats: dict[str, int],
    ) -> Iterator[dict[str, Any]]:
        if self.format() == "parquet":  # pragma: no cover - needs pyarrow
            yield from self._iter_segment_parquet(
                segment, where=where, predicate=predicate, columns=columns, stats=stats
            )
            return
        stats["opened"] += 1
        yield from self._iter_segment_ndjson(segment)

    def rows(self) -> Iterator[dict[str, Any]]:
        """All rows of the store, in (segment name, row) order."""
        for segment in self.segments():
            if self.format() == "parquet":  # pragma: no cover - needs pyarrow
                yield from self._read_segment(segment)
            else:
                yield from self._iter_segment_ndjson(segment)

    def _segment_row_count(self, segment: str) -> int:
        """Row count of one segment without decoding any row.

        NDJSON counts non-blank lines; Parquet reads the footer's
        ``num_rows``. Unreadable part files still surface as
        :class:`StoreError` — only *decoding* is skipped, not validation of
        the file's existence and readability.
        """
        path = self._segment_path(segment)
        if self.format() == "parquet":  # pragma: no cover - needs pyarrow
            try:
                return int(_pq.ParquetFile(path).metadata.num_rows)
            except FileNotFoundError as error:
                raise StoreError(f"segment {segment!r} does not exist") from error
            except (OSError, _pa.ArrowInvalid) as error:
                raise StoreError(f"unreadable segment {segment!r}: {error}") from error
        total = 0
        try:
            with open(path, "rb") as handle:
                for line in handle:
                    if line.strip():
                        total += 1
        except FileNotFoundError as error:
            raise StoreError(f"segment {segment!r} does not exist") from error
        except OSError as error:
            raise StoreError(f"unreadable segment {segment!r}: {error}") from error
        return total

    def count(self) -> int:
        """Total row count, from line counts / Parquet footers — no row decoding."""
        return sum(self._segment_row_count(segment) for segment in self.segments())

    def iter_select(
        self,
        *,
        where: Mapping[str, Any] | None = None,
        predicate: Callable[[Mapping[str, Any]], bool] | None = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Stream rows matching the given filters, one segment at a time.

        The out-of-core form of :meth:`select`: segment part files are
        opened lazily and never materialised whole (NDJSON decodes line by
        line; Parquet reads with column projection and equality-filter
        pushdown), so peak memory is one row — independent of store size.
        ``limit`` short-circuits *before* later segments are opened. Rows
        come back in the same deterministic (segment, row) order as
        :meth:`select`.

        When telemetry is enabled the read path's counters are flushed on
        completion (including early exits): ``store.segments_opened``,
        ``store.segments_skipped``, ``store.rows_scanned``,
        ``store.rows_returned``, and ``store.pushdown_hits``.
        """
        tel = get_telemetry()
        stats = {"opened": 0, "skipped": 0, "scanned": 0, "returned": 0, "pushdown": 0}
        column_list = list(columns) if columns is not None else None
        try:
            if limit is not None and limit <= 0:
                return
            for segment in self.segments():
                for row in self._segment_row_stream(
                    segment, where=where, predicate=predicate, columns=column_list, stats=stats
                ):
                    stats["scanned"] += 1
                    if where and not _matches(row, where):
                        continue
                    if predicate is not None and not predicate(row):
                        continue
                    if column_list is not None:
                        row = {column: row.get(column) for column in column_list}
                    stats["returned"] += 1
                    yield row
                    if limit is not None and stats["returned"] >= limit:
                        return
        finally:
            if tel.enabled:
                tel.counter("store.segments_opened", stats["opened"])
                tel.counter("store.segments_skipped", stats["skipped"])
                tel.counter("store.rows_scanned", stats["scanned"])
                tel.counter("store.rows_returned", stats["returned"])
                tel.counter("store.pushdown_hits", stats["pushdown"])

    def select(
        self,
        *,
        where: Mapping[str, Any] | None = None,
        predicate: Callable[[Mapping[str, Any]], bool] | None = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Rows matching the given filters, optionally projected to ``columns``.

        ``where`` applies per-column equality filters (numeric strings match
        their numeric values, so CLI-sourced filters work); ``predicate`` is
        an arbitrary row test applied after ``where``. Rows come back in
        deterministic (segment, row) order. This is the materialised form of
        :meth:`iter_select` — prefer the iterator when the result set may be
        large.
        """
        return list(
            self.iter_select(where=where, predicate=predicate, columns=columns, limit=limit)
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, output: str | Path, *, fmt: str = "csv", columns: Sequence[str] | None = None) -> int:
        """Write every row to ``output`` as CSV or NDJSON; returns the row count.

        Rows stream straight from :meth:`iter_select` into a temp file that
        is atomically renamed into place, so exporting a store larger than
        memory works and a killed export never leaves a torn output file.
        The CSV header is written lazily on the first row, so an empty store
        exports an empty file (matching :func:`rows_to_csv` of no records).
        """
        if fmt not in ("csv", "ndjson"):
            raise StoreError(f"unknown export format {fmt!r}; expected 'csv' or 'ndjson'")
        column_list = list(columns) if columns is not None else None
        written = 0
        with _atomic_text_writer(Path(output)) as handle:
            if fmt == "csv":
                # Explicit columns avoid any pre-scan; otherwise one cheap
                # metadata pass derives the sorted column union up front.
                header = column_list if column_list is not None else self.columns()
                header_written = False
                for row in self.iter_select(columns=column_list):
                    if not header_written:
                        handle.write(",".join(header) + "\n")
                        header_written = True
                    handle.write(csv_line(row, header) + "\n")
                    written += 1
            else:
                for row in self.iter_select(columns=column_list):
                    handle.write(_encode_row_ndjson(row) + "\n")
                    written += 1
        return written

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore(directory={str(self.directory)!r})"


def merge_stores(sources: Sequence[str | Path], into: str | Path) -> dict[str, Any]:
    """Union the segments of ``sources`` into the store at ``into``.

    The distributed-sweep join: each shard of a sharded sweep writes its own
    store, and merging them reproduces the unsharded store **byte for
    byte** — segment part files and meta sidecars are copied verbatim, and a
    fresh destination takes the first source's ``_schema.json`` bytes as-is
    (shards of one sweep pin identical provenance, since no timestamps or
    host state enter the document).

    The merge is idempotent: a segment already present with identical bytes
    is skipped, so re-running a merge (or merging overlapping shards, e.g.
    an interrupted shard resumed on another machine) is safe. A segment
    name carrying *different* bytes raises :class:`StoreError` — that is
    never a legal state for shards of one deterministic sweep.

    Returns a summary dict: source count, segments copied/skipped, and the
    merged store's total row count.
    """
    if not sources:
        raise StoreError("merge needs at least one source store")
    stores = []
    for source in sources:
        store = ResultStore(source)
        if not store.exists():
            raise StoreError(f"no store exists at {store.directory} (no _schema.json)")
        stores.append(store)
    formats = sorted({store.format() for store in stores})
    if len(formats) != 1:
        raise StoreError(f"cannot merge stores of mixed formats {formats}")
    fmt = formats[0]
    dest = ResultStore(into)
    if dest.exists():
        if dest.format() != fmt:
            raise StoreError(
                f"destination store at {dest.directory} is pinned to format "
                f"{dest.format()!r}, but the sources are {fmt!r}"
            )
    else:
        _atomic_copy_file(stores[0].schema_path, dest.schema_path)
    copied = 0
    skipped = 0
    for store in stores:
        for segment in store.segments():
            source_part = store._segment_path(segment)
            dest_part = dest._segment_path(segment)
            source_meta = store.segments_dir / f"{segment}.meta.json"
            dest_meta = dest.segments_dir / f"{segment}.meta.json"
            # Sidecar before part file, mirroring append's commit ordering:
            # once the part file exists the segment is complete.
            if source_meta.is_file():
                if dest_meta.is_file():
                    if not filecmp.cmp(source_meta, dest_meta, shallow=False):
                        raise StoreError(
                            f"segment {segment!r} metadata differs between "
                            f"{store.directory} and {dest.directory}"
                        )
                else:
                    _atomic_copy_file(source_meta, dest_meta)
            if dest_part.exists():
                if not filecmp.cmp(source_part, dest_part, shallow=False):
                    raise StoreError(
                        f"segment {segment!r} conflicts: {source_part} and "
                        f"{dest_part} hold different bytes"
                    )
                skipped += 1
                continue
            _atomic_copy_file(source_part, dest_part)
            copied += 1
    return {
        "into": str(dest.directory),
        "format": fmt,
        "sources": len(stores),
        "segments_copied": copied,
        "segments_skipped": skipped,
        "rows": dest.count(),
    }


__all__ = [
    "ResultStore",
    "StoreError",
    "STORE_SCHEMA_VERSION",
    "default_store_format",
    "merge_stores",
]
