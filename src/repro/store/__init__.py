"""Persistent columnar result store.

Experiments and sweeps produce tabular records; this package persists them
durably so reports and analyses can be regenerated without re-running any
simulation:

* :class:`ResultStore` — an append-only, schema-versioned store of row
  segments. Each append is one atomically-written part file (Parquet when
  ``pyarrow`` is installed, NDJSON otherwise — the on-disk format is pinned
  per store at creation), so concurrent writers and killed processes never
  leave a half-written segment, and re-appending an existing segment is a
  no-op (idempotent resume).
* a small query API — :meth:`ResultStore.iter_select` streams matching rows
  segment by segment (NDJSON line-by-line; Parquet with column projection
  and equality-filter pushdown) so queries run out-of-core,
  :meth:`ResultStore.select` is its materialised form, and
  :meth:`ResultStore.export` streams CSV/NDJSON to disk — plus
  run-provenance metadata (package version, seed root, git SHA) recorded in
  the store's schema document.
* :func:`merge_stores` — union the segments of several stores (the shards
  of a distributed sweep) into one, idempotently and byte-identically to
  the equivalent unsharded run.

The sweep orchestrator (:mod:`repro.sweeps`) writes one segment per
completed sweep cell; ``repro store query`` and
:func:`repro.experiments.report.results_from_store` read them back.
"""

from repro.store.store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreError,
    default_store_format,
    merge_stores,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "StoreError",
    "default_store_format",
    "merge_stores",
]
