"""Statistical analysis toolkit used by the experiments and applications.

* :mod:`repro.analysis.concentration` — the concentration inequalities the
  paper's proofs use (Chernoff, Chebyshev, the Bernstein-type bound of
  Lemma 18) and the median-of-means amplification trick.
* :mod:`repro.analysis.accuracy` — empirical accuracy summaries of estimator
  outputs (relative errors, empirical ε at a target δ, error decay fits).
* :mod:`repro.analysis.sweep` — a small parameter-sweep harness that the
  experiment modules and benchmarks share (its declarative, resumable big
  sibling is :mod:`repro.sweeps`).
* :mod:`repro.analysis.aggregate` — deterministic group-by aggregation over
  dict records, the read-side counterpart of the result store
  (:mod:`repro.store`): ``repro store query --aggregate`` and report
  regeneration both reduce persisted rows with it instead of re-running
  simulations.
"""

from repro.analysis.aggregate import (
    StreamStats,
    aggregate_records,
    aggregate_stream,
    parse_metric,
    statistic_names,
)

from repro.analysis.concentration import (
    chebyshev_deviation,
    chernoff_deviation,
    chernoff_interval,
    median_of_means,
    subexponential_deviation,
)
from repro.analysis.accuracy import (
    empirical_epsilon,
    empirical_failure_probability,
    fit_power_law,
    fraction_within,
    relative_errors,
)
from repro.analysis.sweep import cartesian_grid, run_sweep
from repro.analysis.bootstrap import (
    BootstrapInterval,
    bootstrap_interval,
    difference_is_significant,
)
from repro.analysis.theory_tables import (
    network_size_budget_table,
    required_rounds_by_topology,
    rounds_table,
    torus_overhead_table,
)

__all__ = [
    "required_rounds_by_topology",
    "rounds_table",
    "torus_overhead_table",
    "network_size_budget_table",
    "BootstrapInterval",
    "bootstrap_interval",
    "difference_is_significant",
    "chernoff_deviation",
    "chernoff_interval",
    "chebyshev_deviation",
    "subexponential_deviation",
    "median_of_means",
    "relative_errors",
    "fraction_within",
    "empirical_epsilon",
    "empirical_failure_probability",
    "fit_power_law",
    "cartesian_grid",
    "run_sweep",
    "StreamStats",
    "aggregate_records",
    "aggregate_stream",
    "parse_metric",
    "statistic_names",
]
