"""A small parameter-sweep harness shared by experiments and benchmarks.

Experiments are parameter sweeps producing one record (dict) per setting;
:func:`run_sweep` handles seeding each setting independently (so results are
reproducible and settings are statistically independent) and collecting the
records in order.

Both entry points accept an optional ``engine``
(:class:`repro.engine.ExecutionEngine`): when given, the settings are
dispatched through the engine's deterministic scheduler — serially at
``workers=1``, across a process pool otherwise — with results identical to
the default in-process loop for any worker count (runners must then be
picklable, i.e. module-level callables).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.utils.rng import SeedLike, spawn_generators

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports nothing from analysis)
    from repro.engine import ExecutionEngine


def cartesian_grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """All combinations of the given axes as a list of parameter dicts.

    >>> cartesian_grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        return [{}]
    names = list(axes.keys())
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    runner: Callable[..., Mapping[str, Any]],
    settings: Iterable[Mapping[str, Any]],
    seed: SeedLike = None,
    engine: "ExecutionEngine | None" = None,
) -> list[dict[str, Any]]:
    """Run ``runner(**setting, rng=...)`` for every setting and collect records.

    Each setting receives its own child generator derived from ``seed``.
    The returned records are the runner's outputs merged over the input
    setting (so the sweep parameters always appear in the record). With an
    ``engine``, settings may execute in parallel worker processes; the
    records are the same either way.
    """
    settings = list(settings)
    if engine is not None:
        outputs = engine.map(runner, settings, seed)
    else:
        rngs = spawn_generators(seed, len(settings))
        outputs = [runner(**setting, rng=rng) for setting, rng in zip(settings, rngs)]
    records: list[dict[str, Any]] = []
    for setting, output in zip(settings, outputs):
        record: dict[str, Any] = {**setting}
        record.update(output)
        records.append(record)
    return records


def repeat_and_average(
    runner: Callable[[np.random.Generator], float],
    repetitions: int,
    seed: SeedLike = None,
    engine: "ExecutionEngine | None" = None,
) -> tuple[float, float]:
    """Run a scalar-valued trial ``repetitions`` times; return (mean, std)."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if engine is not None:
        values = engine.repeat(runner, repetitions, seed)
    else:
        rngs = spawn_generators(seed, repetitions)
        values = np.array([float(runner(rng)) for rng in rngs])
    return float(values.mean()), float(values.std())


__all__ = ["cartesian_grid", "run_sweep", "repeat_and_average"]
