"""A small parameter-sweep harness shared by experiments and benchmarks.

Experiments are parameter sweeps producing one record (dict) per setting;
:func:`run_sweep` handles seeding each setting independently (so results are
reproducible and settings are statistically independent) and collecting the
records in order.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.utils.rng import SeedLike, spawn_generators


def cartesian_grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """All combinations of the given axes as a list of parameter dicts.

    >>> cartesian_grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        return [{}]
    names = list(axes.keys())
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    runner: Callable[..., Mapping[str, Any]],
    settings: Iterable[Mapping[str, Any]],
    seed: SeedLike = None,
) -> list[dict[str, Any]]:
    """Run ``runner(**setting, rng=...)`` for every setting and collect records.

    Each setting receives its own child generator derived from ``seed``.
    The returned records are the runner's outputs merged over the input
    setting (so the sweep parameters always appear in the record).
    """
    settings = list(settings)
    rngs = spawn_generators(seed, len(settings))
    records: list[dict[str, Any]] = []
    for setting, rng in zip(settings, rngs):
        output = runner(**setting, rng=rng)
        record: dict[str, Any] = {**setting}
        record.update(output)
        records.append(record)
    return records


def repeat_and_average(
    runner: Callable[[np.random.Generator], float],
    repetitions: int,
    seed: SeedLike = None,
) -> tuple[float, float]:
    """Run a scalar-valued trial ``repetitions`` times; return (mean, std)."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    rngs = spawn_generators(seed, repetitions)
    values = np.array([float(runner(rng)) for rng in rngs])
    return float(values.mean()), float(values.std())


__all__ = ["cartesian_grid", "run_sweep", "repeat_and_average"]
