"""Tabulation of the paper's theoretical round requirements.

The closed-form bounds in :mod:`repro.core.bounds` answer "how many rounds
does topology X need for (d, ε, δ)?". This module sweeps those functions
over parameter grids and produces the comparison tables a reader of Section
4 would want — e.g. the required ``t`` per topology side by side, or the
ring/torus gap as ε shrinks — without running any simulation. The experiment
suite uses these as the "paper says" columns; users can also consult them
directly for sizing their own deployments.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core import bounds
from repro.utils.validation import require_probability


def required_rounds_by_topology(
    density: float,
    epsilon: float,
    delta: float,
    *,
    expander_lambda: float = 0.9,
    dims: int = 3,
) -> dict[str, int]:
    """Rounds prescribed by the paper for each analysed topology at one setting."""
    require_probability(epsilon, "epsilon", allow_zero=False, allow_one=False)
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    return {
        "complete_graph": bounds.independent_sampling_rounds(density, epsilon, delta),
        "torus_2d": bounds.theorem1_rounds(density, epsilon, delta),
        "ring": bounds.ring_rounds_theorem21(density, epsilon, delta),
        f"torus_{dims}d": bounds.torus_kd_rounds(density, epsilon, delta, dims),
        "hypercube": bounds.hypercube_rounds(density, epsilon, delta),
        "expander": bounds.expander_rounds(density, epsilon, delta, expander_lambda),
    }


def rounds_table(
    densities: Sequence[float],
    epsilons: Sequence[float],
    delta: float = 0.05,
    *,
    expander_lambda: float = 0.9,
) -> list[dict[str, Any]]:
    """One record per (density, epsilon) with the per-topology round requirements."""
    records: list[dict[str, Any]] = []
    for density in densities:
        for epsilon in epsilons:
            record: dict[str, Any] = {"density": density, "epsilon": epsilon, "delta": delta}
            record.update(
                required_rounds_by_topology(
                    density, epsilon, delta, expander_lambda=expander_lambda
                )
            )
            records.append(record)
    return records


def torus_overhead_table(
    densities: Sequence[float],
    epsilons: Sequence[float],
    delta: float = 0.05,
) -> list[dict[str, Any]]:
    """How much the 2-D torus loses to independent sampling (the paper's headline ratio).

    The ratio equals the ``[log log(1/δ) + log(1/dε)]²`` factor of Theorem 1
    and is the quantity the abstract calls "nearly matching".
    """
    records = []
    for density in densities:
        for epsilon in epsilons:
            torus = bounds.theorem1_rounds(density, epsilon, delta)
            ideal = bounds.independent_sampling_rounds(density, epsilon, delta)
            records.append(
                {
                    "density": density,
                    "epsilon": epsilon,
                    "torus_rounds": torus,
                    "independent_rounds": ideal,
                    "overhead_factor": torus / ideal if ideal else float("inf"),
                }
            )
    return records


def network_size_budget_table(
    num_nodes: int,
    num_edges: int,
    rounds_options: Sequence[int],
    epsilon: float = 0.2,
    delta: float = 0.1,
    *,
    local_mixing: float = 2.0,
    burn_in: int = 50,
) -> list[dict[str, Any]]:
    """Walks and total link queries prescribed by Theorem 27 for each ``t``.

    Reproduces, in closed form, the Section 5.1.5 trade-off: larger ``t``
    means fewer walks, and when burn-in dominates, fewer total queries.
    """
    records = []
    for rounds in rounds_options:
        walks = bounds.theorem27_walks_required(
            num_nodes, num_edges, local_mixing, rounds, epsilon, delta
        )
        records.append(
            {
                "rounds": rounds,
                "walks": walks,
                "burn_in_queries": walks * burn_in,
                "estimation_queries": walks * rounds,
                "total_queries": walks * (burn_in + rounds),
            }
        )
    return records


__all__ = [
    "required_rounds_by_topology",
    "rounds_table",
    "torus_overhead_table",
    "network_size_budget_table",
]
