"""Empirical accuracy summaries for estimator outputs.

The paper's guarantees are (ε, δ) statements; these helpers compute the
empirical counterparts from a vector of estimates, plus a small power-law
fitting routine used to check decay exponents (e.g. that the empirical ε of
Algorithm 1 decays roughly as ``t^{-1/2}``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_probability


def relative_errors(estimates: np.ndarray, truth: float) -> np.ndarray:
    """``|estimate - truth| / truth`` elementwise."""
    if truth == 0:
        raise ValueError("truth must be non-zero for relative errors")
    return np.abs(np.asarray(estimates, dtype=np.float64) - truth) / abs(truth)


def fraction_within(estimates: np.ndarray, truth: float, epsilon: float) -> float:
    """Fraction of estimates within a ``(1 ± ε)`` factor of ``truth``."""
    require_probability(epsilon, "epsilon", allow_zero=False)
    return float(np.mean(relative_errors(estimates, truth) <= epsilon))


def empirical_epsilon(estimates: np.ndarray, truth: float, delta: float = 0.1) -> float:
    """The ε achieved by a ``1 - δ`` fraction of the estimates (error quantile)."""
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    return float(np.quantile(relative_errors(estimates, truth), 1.0 - delta))


def empirical_failure_probability(estimates: np.ndarray, truth: float, epsilon: float) -> float:
    """Fraction of estimates *outside* the ``(1 ± ε)`` band — the empirical δ."""
    return 1.0 - fraction_within(estimates, truth, epsilon)


def fit_power_law(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    """Least-squares fit of ``y ≈ a · x^b`` in log-log space.

    Returns ``(a, b)``. Used to verify decay exponents of error curves and
    re-collision profiles (only strictly positive data points are used).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    mask = (x > 0) & (y > 0)
    if np.count_nonzero(mask) < 2:
        raise ValueError("need at least two positive (x, y) points to fit a power law")
    log_x = np.log(x[mask])
    log_y = np.log(y[mask])
    slope, intercept = np.polyfit(log_x, log_y, 1)
    return float(np.exp(intercept)), float(slope)


def summarize_estimates(estimates: np.ndarray, truth: float) -> dict[str, float]:
    """Dictionary of the headline accuracy statistics of an estimate vector."""
    errors = relative_errors(estimates, truth)
    return {
        "truth": float(truth),
        "mean_estimate": float(np.mean(estimates)),
        "mean_relative_error": float(np.mean(errors)),
        "median_relative_error": float(np.median(errors)),
        "p90_relative_error": float(np.quantile(errors, 0.9)),
        "max_relative_error": float(np.max(errors)),
    }


__all__ = [
    "relative_errors",
    "fraction_within",
    "empirical_epsilon",
    "empirical_failure_probability",
    "fit_power_law",
    "summarize_estimates",
]
