"""Bootstrap confidence intervals for experiment metrics.

The experiment tables report point estimates (medians, empirical ε values);
bootstrap resampling provides uncertainty bands without distributional
assumptions, which is useful when judging whether a measured ordering (e.g.
ring vs torus accuracy in E06) is outside noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer, require_probability


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap percentile confidence interval for a statistic."""

    point_estimate: float
    lower: float
    upper: float
    confidence: float
    resamples: int

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper


def bootstrap_interval(
    samples: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: SeedLike = None,
) -> BootstrapInterval:
    """Percentile bootstrap interval for ``statistic`` of ``samples``.

    Parameters
    ----------
    samples:
        One-dimensional array of observations.
    statistic:
        Function mapping a sample array to a scalar (default: the mean).
    confidence:
        Two-sided confidence level in (0, 1).
    resamples:
        Number of bootstrap resamples.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    require_probability(confidence, "confidence", allow_zero=False, allow_one=False)
    require_integer(resamples, "resamples", minimum=1)
    rng = as_generator(seed)

    point = float(statistic(samples))
    indices = rng.integers(0, samples.size, size=(resamples, samples.size))
    replicates = np.array([float(statistic(samples[row])) for row in indices])
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(replicates, [alpha, 1.0 - alpha])
    return BootstrapInterval(
        point_estimate=point,
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        resamples=resamples,
    )


def difference_is_significant(
    samples_a: np.ndarray,
    samples_b: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: SeedLike = None,
) -> bool:
    """Whether the bootstrap interval of ``statistic(a) - statistic(b)`` excludes 0.

    A simple two-sample bootstrap test used by tests that assert orderings
    (e.g. "the ring's error is genuinely larger than the torus's").
    """
    samples_a = np.asarray(samples_a, dtype=np.float64)
    samples_b = np.asarray(samples_b, dtype=np.float64)
    rng = as_generator(seed)
    require_integer(resamples, "resamples", minimum=1)
    differences = np.empty(resamples)
    for index in range(resamples):
        resample_a = samples_a[rng.integers(0, samples_a.size, size=samples_a.size)]
        resample_b = samples_b[rng.integers(0, samples_b.size, size=samples_b.size)]
        differences[index] = statistic(resample_a) - statistic(resample_b)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(differences, [alpha, 1.0 - alpha])
    return bool(lower > 0.0 or upper < 0.0)


__all__ = ["BootstrapInterval", "bootstrap_interval", "difference_is_significant"]
