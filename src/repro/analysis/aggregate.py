"""One-pass group-by aggregation over store rows (and any dict records).

The result store persists raw per-record rows; analyses usually want
summaries — "mean empirical epsilon by target density", "max tracking error
by scenario". :func:`aggregate_stream` computes them deterministically
(groups sorted by key, stable statistic names) in **one pass** over a row
iterator: per-group state is a handful of merged moments (Welford mean/M2,
min/max/sum/count), so aggregating a store query never holds the row set —
``repro store query --aggregate`` runs out-of-core on stores larger than
memory. The one exception is ``median``, which buffers each group's scalar
values (a float per row, still far below materialising whole rows).

:func:`aggregate_records` is the materialised-input form; both produce the
same numbers as the in-process experiment path without re-running anything.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

_STAT_NAMES = ("count", "max", "mean", "median", "min", "std", "sum", "var")


def statistic_names() -> list[str]:
    """Names accepted as the ``<stat>`` half of a ``<stat>:<column>`` request."""
    return list(_STAT_NAMES)


def parse_metric(text: str) -> tuple[str, str]:
    """Parse a CLI metric request ``"<stat>:<column>"`` into its parts."""
    stat, separator, column = text.partition(":")
    if not separator or not column or stat not in _STAT_NAMES:
        raise ValueError(
            f"metrics look like '<stat>:<column>' with stat in {statistic_names()}, got {text!r}"
        )
    return stat, column


class StreamStats:
    """Streaming moments of one scalar series: Welford update, Chan merge.

    Tracks count, mean, and the centred second moment ``M2`` online (one
    float each), plus min/max/sum — enough to answer every supported
    statistic except ``median`` without storing values. ``median`` is opt-in
    (``keep_values=True``) and buffers one float per observation.

    The variance convention matches ``numpy.var`` (population, ``ddof=0``),
    so a streamed aggregate agrees with the materialised one to floating-
    point accumulation order.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum", "total", "values")

    def __init__(self, *, keep_values: bool = False):
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0
        self.values: list[float] | None = [] if keep_values else None

    def add(self, value: float) -> None:
        """Fold one observation in (Welford's update)."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.total += value
        if self.values is not None:
            self.values.append(value)

    def merge(self, other: "StreamStats") -> None:
        """Fold another accumulator in (Chan's parallel merge).

        This is what makes shard-local aggregation composable: each shard
        can stream its own moments and the coordinator merges them without
        ever seeing a row.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
        else:
            total_count = self.count + other.count
            delta = other.mean - self.mean
            self.mean += delta * other.count / total_count
            self.m2 += other.m2 + delta * delta * self.count * other.count / total_count
            self.count = total_count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.total += other.total
        if self.values is not None and other.values is not None:
            self.values.extend(other.values)

    def statistic(self, stat: str) -> float | None:
        """The named statistic, or ``None`` when no values were observed."""
        if self.count == 0:
            return None
        if stat == "mean":
            return float(self.mean)
        if stat == "var":
            return float(self.m2 / self.count)
        if stat == "std":
            return float(math.sqrt(self.m2 / self.count))
        if stat == "min":
            return float(self.minimum)
        if stat == "max":
            return float(self.maximum)
        if stat == "sum":
            return float(self.total)
        if stat == "count":
            return float(self.count)
        if stat == "median":
            if self.values is None:
                raise ValueError("median requires StreamStats(keep_values=True)")
            return float(np.median(np.asarray(self.values)))
        raise ValueError(f"unknown statistic {stat!r}; known: {statistic_names()}")


def _hashable(value: Any) -> Any:
    # Store rows may hold list-valued columns (swept tuple params come
    # back from JSON as lists); group keys must still be dict keys.
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _hashable(v)) for k, v in value.items()))
    return value


def _rank(value: Any) -> tuple:
    # None first, then numbers in numeric order, then everything else by
    # (type name, text) — so `--by rounds` over 4/8/16 comes back
    # 4, 8, 16 rather than lexicographic 16, 4, 8, and mixed-type
    # columns still order deterministically.
    if value is None:
        return (0, 0.0, "", "")
    if isinstance(value, bool):
        return (2, 0.0, "bool", str(value))
    if isinstance(value, (int, float)):
        return (1, float(value), "", "")
    return (2, 0.0, type(value).__name__, str(value))


def aggregate_stream(
    records: Iterable[Mapping[str, Any]] | Iterator[Mapping[str, Any]],
    *,
    by: Sequence[str] = (),
    metrics: Sequence[tuple[str, str]] = (),
) -> list[dict[str, Any]]:
    """Aggregate ``records`` grouped by the ``by`` columns, in one pass.

    Parameters
    ----------
    records:
        An iterable (or iterator — e.g. :meth:`ResultStore.iter_select`) of
        dict rows. Consumed exactly once; never materialised.
    by:
        Grouping columns; rows missing one are grouped under ``None``.
        Empty ⇒ one group over everything.
    metrics:
        ``(stat, column)`` pairs, e.g. ``[("mean", "empirical_epsilon")]``.
        Non-numeric and missing values are skipped; a metric with no numeric
        values in a group yields ``None``.

    Returns
    -------
    list of dict
        One row per group — the ``by`` values plus ``"<stat>_<column>"``
        aggregates and an ``"n"`` row count — sorted by group key so output
        order never depends on input order beyond the rows themselves.
    """
    if not metrics:
        raise ValueError("aggregation needs at least one (stat, column) metric")
    for stat, _ in metrics:
        if stat not in _STAT_NAMES:
            raise ValueError(f"unknown statistic {stat!r}; known: {statistic_names()}")
    # One accumulator per (group, metric column); median is the only
    # statistic that needs the raw scalars.
    metric_columns = sorted({column for _, column in metrics})
    keep_values = {
        column: any(stat == "median" and col == column for stat, col in metrics)
        for column in metric_columns
    }
    groups: dict[tuple, dict[str, StreamStats]] = {}
    originals: dict[tuple, tuple] = {}
    counts: dict[tuple, int] = {}
    for record in records:
        values = tuple(record.get(column) for column in by)
        key = tuple(_hashable(value) for value in values)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = groups[key] = {
                column: StreamStats(keep_values=keep_values[column])
                for column in metric_columns
            }
            originals[key] = values
            counts[key] = 0
        counts[key] += 1
        for column in metric_columns:
            value = record.get(column)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if value != value:  # NaN
                continue
            accumulators[column].add(float(value))

    out: list[dict[str, Any]] = []
    for key in sorted(groups, key=lambda k: tuple(_rank(v) for v in k)):
        aggregated: dict[str, Any] = dict(zip(by, originals[key]))
        aggregated["n"] = counts[key]
        for stat, column in metrics:
            aggregated[f"{stat}_{column}"] = groups[key][column].statistic(stat)
        out.append(aggregated)
    return out


def aggregate_records(
    records: Iterable[Mapping[str, Any]],
    *,
    by: Sequence[str] = (),
    metrics: Sequence[tuple[str, str]] = (),
) -> list[dict[str, Any]]:
    """Aggregate materialised ``records``; see :func:`aggregate_stream`.

    Kept as the list-in/list-out name existing callers use; the computation
    is the streaming one, so both paths produce identical numbers.
    """
    return aggregate_stream(records, by=by, metrics=metrics)


__all__ = [
    "StreamStats",
    "aggregate_records",
    "aggregate_stream",
    "parse_metric",
    "statistic_names",
]
