"""Group-by aggregation over store rows (and any dict records).

The result store persists raw per-record rows; analyses usually want
summaries — "mean empirical epsilon by target density", "max tracking error
by scenario". :func:`aggregate_records` computes them deterministically
(groups sorted by key, stable statistic names), so ``repro store query
--aggregate`` reproduces the same numbers as the in-process experiment
path without re-running anything.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

_STATISTICS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda values: float(values.mean()),
    "std": lambda values: float(values.std()),
    "var": lambda values: float(values.var()),
    "min": lambda values: float(values.min()),
    "max": lambda values: float(values.max()),
    "sum": lambda values: float(values.sum()),
    "median": lambda values: float(np.median(values)),
    "count": lambda values: float(values.size),
}


def statistic_names() -> list[str]:
    """Names accepted as the ``<stat>`` half of a ``<stat>:<column>`` request."""
    return sorted(_STATISTICS)


def parse_metric(text: str) -> tuple[str, str]:
    """Parse a CLI metric request ``"<stat>:<column>"`` into its parts."""
    stat, separator, column = text.partition(":")
    if not separator or not column or stat not in _STATISTICS:
        raise ValueError(
            f"metrics look like '<stat>:<column>' with stat in {statistic_names()}, got {text!r}"
        )
    return stat, column


def aggregate_records(
    records: Iterable[Mapping[str, Any]],
    *,
    by: Sequence[str] = (),
    metrics: Sequence[tuple[str, str]] = (),
) -> list[dict[str, Any]]:
    """Aggregate ``records`` grouped by the ``by`` columns.

    Parameters
    ----------
    records:
        Dict rows (store rows, experiment records, ...).
    by:
        Grouping columns; rows missing one are grouped under ``None``.
        Empty ⇒ one group over everything.
    metrics:
        ``(stat, column)`` pairs, e.g. ``[("mean", "empirical_epsilon")]``.
        Non-numeric and missing values are skipped; a metric with no numeric
        values in a group yields ``None``.

    Returns
    -------
    list of dict
        One row per group — the ``by`` values plus ``"<stat>_<column>"``
        aggregates and an ``"n"`` row count — sorted by group key so output
        order never depends on input order beyond the rows themselves.
    """
    if not metrics:
        raise ValueError("aggregate_records needs at least one (stat, column) metric")
    for stat, _ in metrics:
        if stat not in _STATISTICS:
            raise ValueError(f"unknown statistic {stat!r}; known: {statistic_names()}")

    def hashable(value: Any) -> Any:
        # Store rows may hold list-valued columns (swept tuple params come
        # back from JSON as lists); group keys must still be dict keys.
        if isinstance(value, list):
            return tuple(hashable(item) for item in value)
        if isinstance(value, dict):
            return tuple(sorted((str(k), hashable(v)) for k, v in value.items()))
        return value

    groups: dict[tuple, list[Mapping[str, Any]]] = {}
    originals: dict[tuple, tuple] = {}
    for record in records:
        values = tuple(record.get(column) for column in by)
        key = tuple(hashable(value) for value in values)
        groups.setdefault(key, []).append(record)
        originals.setdefault(key, values)

    def rank(value: Any) -> tuple:
        # None first, then numbers in numeric order, then everything else by
        # (type name, text) — so `--by rounds` over 4/8/16 comes back
        # 4, 8, 16 rather than lexicographic 16, 4, 8, and mixed-type
        # columns still order deterministically.
        if value is None:
            return (0, 0.0, "", "")
        if isinstance(value, bool):
            return (2, 0.0, "bool", str(value))
        if isinstance(value, (int, float)):
            return (1, float(value), "", "")
        return (2, 0.0, type(value).__name__, str(value))

    out: list[dict[str, Any]] = []
    for key in sorted(groups, key=lambda k: tuple(rank(v) for v in k)):
        rows = groups[key]
        aggregated: dict[str, Any] = dict(zip(by, originals[key]))
        aggregated["n"] = len(rows)
        for stat, column in metrics:
            values = []
            for row in rows:
                value = row.get(column)
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                if value != value:  # NaN
                    continue
                values.append(float(value))
            aggregated[f"{stat}_{column}"] = (
                _STATISTICS[stat](np.asarray(values)) if values else None
            )
        out.append(aggregated)
    return out


__all__ = ["aggregate_records", "parse_metric", "statistic_names"]
