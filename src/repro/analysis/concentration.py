"""Concentration inequalities and amplification helpers.

These mirror the probabilistic tools in the paper's proofs:

* the multiplicative Chernoff bound (used on the complete graph and in
  Algorithm 4's analysis),
* Chebyshev's inequality (used for the ring, Theorem 21, and for the network
  size estimator, Theorem 27),
* the sub-exponential / Bernstein-type tail of Lemma 18 (Proposition 2.3 of
  [Wai15]) used with the moment bounds of Lemma 11,
* median-of-means, the standard trick the paper invokes to turn a
  Chebyshev-quality estimator into one with logarithmic dependence on 1/δ.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import require_positive, require_probability


def chernoff_deviation(mean: float, delta: float) -> float:
    """Multiplicative deviation ε with ``P[|X - μ| >= εμ] <= δ`` for Binomial-like X.

    Inverts the standard bound ``δ = 2·exp(-ε²μ/3)``.
    """
    require_positive(mean, "mean")
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    return math.sqrt(3.0 * math.log(2.0 / delta) / mean)


def chebyshev_deviation(variance: float, delta: float) -> float:
    """Absolute deviation Δ with ``P[|X - EX| >= Δ] <= δ`` from a variance bound."""
    if variance < 0:
        raise ValueError(f"variance must be non-negative, got {variance}")
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    return math.sqrt(variance / delta)


def subexponential_deviation(sigma_squared: float, scale: float, delta: float) -> float:
    """Absolute deviation Δ with ``P[|X - EX| >= Δ] <= δ`` under Lemma 18's condition.

    Lemma 18 states ``P[|X - EX| >= Δ] <= 2·exp(-Δ²/(2(σ² + bΔ)))``; solving
    the quadratic for Δ at failure probability δ gives
    ``Δ = b·L + sqrt(b²L² + 2σ²L)`` with ``L = log(2/δ)``.
    """
    require_positive(sigma_squared, "sigma_squared")
    require_positive(scale, "scale")
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    log_term = math.log(2.0 / delta)
    return scale * log_term + math.sqrt((scale * log_term) ** 2 + 2.0 * sigma_squared * log_term)


def chernoff_interval(
    estimates: np.ndarray | float,
    collision_mass: np.ndarray | float,
    delta: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised multiplicative-Chernoff confidence band around estimates.

    The anytime/streaming counterpart of :func:`chernoff_deviation`, used by
    the online density trackers (:mod:`repro.dynamics.online`): a window
    holding ``collision_mass`` observed collisions has multiplicative
    deviation ``ε = sqrt(3·log(2/δ) / mass)``, so the true density lies in
    ``[est·(1-ε), est·(1+ε)]`` with probability ``1 - δ`` (treating the
    observed mass as a proxy for its expectation, the standard empirical
    plug-in). Works elementwise on arrays of any shape so per-round,
    per-replicate bands cost one vector expression.

    Parameters
    ----------
    estimates:
        Density estimates (any shape, broadcastable with ``collision_mass``).
    collision_mass:
        Total observed collisions supporting each estimate. Entries below 1
        are clamped to 1 (an empty window yields an uninformatively wide,
        but finite, band); the lower band is clipped at zero.
    delta:
        Failure probability of the band.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        Elementwise lower and upper confidence bounds.
    """
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    estimates = np.asarray(estimates, dtype=np.float64)
    mass = np.maximum(np.asarray(collision_mass, dtype=np.float64), 1.0)
    epsilon = np.sqrt(3.0 * math.log(2.0 / delta) / mass)
    lower = np.maximum(estimates * (1.0 - epsilon), 0.0)
    upper = estimates * (1.0 + epsilon)
    return lower, upper


def median_of_means(samples: np.ndarray, groups: int) -> float:
    """Median of the means of ``groups`` contiguous blocks of ``samples``.

    Boosts a constant-probability estimator to high probability with only a
    logarithmic number of groups; used by the network size experiments.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("samples must be non-empty")
    if groups < 1:
        raise ValueError(f"groups must be >= 1, got {groups}")
    groups = min(groups, samples.size)
    blocks = np.array_split(samples, groups)
    means = np.array([block.mean() for block in blocks])
    return float(np.median(means))


def hoeffding_samples(epsilon: float, delta: float) -> int:
    """Samples of a [0, 1] variable needed for additive ε accuracy w.p. 1 - δ."""
    require_probability(epsilon, "epsilon", allow_zero=False, allow_one=False)
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    return max(1, int(math.ceil(math.log(2.0 / delta) / (2.0 * epsilon**2))))


__all__ = [
    "chernoff_deviation",
    "chernoff_interval",
    "chebyshev_deviation",
    "subexponential_deviation",
    "median_of_means",
    "hoeffding_samples",
]
