"""A grid sensor network with scalar readings at every sensor."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


class SensorGrid:
    """Sensors on a ``side x side`` torus grid, each holding a scalar reading.

    Parameters
    ----------
    side:
        Grid side length; the network has ``side**2`` sensors.
    values:
        Either an array of readings of length ``side**2``, or a callable
        ``(num_sensors, rng) -> readings`` that draws them (e.g. i.i.d.
        indicators with probability ``p`` — the density-estimation special
        case described in Section 6.3.1).
    seed:
        Used only when ``values`` is a callable.
    """

    def __init__(
        self,
        side: int,
        values: np.ndarray | Callable[[int, np.random.Generator], np.ndarray],
        seed: SeedLike = None,
    ):
        require_integer(side, "side", minimum=2)
        self.topology = Torus2D(side)
        rng = as_generator(seed)
        if callable(values):
            readings = np.asarray(values(self.topology.num_nodes, rng), dtype=np.float64)
        else:
            readings = np.asarray(values, dtype=np.float64)
        if readings.shape != (self.topology.num_nodes,):
            raise ValueError(
                f"values must have shape ({self.topology.num_nodes},), got {readings.shape}"
            )
        self.readings = readings

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    @property
    def num_sensors(self) -> int:
        return self.topology.num_nodes

    @property
    def true_mean(self) -> float:
        """The statistic a query wants: the mean reading over all sensors."""
        return float(self.readings.mean())

    def true_fraction(self, threshold: float = 0.5) -> float:
        """Fraction of sensors whose reading is at least ``threshold``."""
        return float(np.mean(self.readings >= threshold))

    # ------------------------------------------------------------------
    # Token walks
    # ------------------------------------------------------------------
    def token_walk(
        self, steps: int, seed: SeedLike = None, *, start: int | None = None
    ) -> np.ndarray:
        """Relay a token for ``steps`` hops and return the visited sensor ids.

        The token starts at ``start`` (default: a uniformly random sensor,
        modelling a base station injecting it anywhere) and the returned
        array has length ``steps`` (the readings observed after each hop).
        """
        require_integer(steps, "steps", minimum=1)
        rng = as_generator(seed)
        if start is None:
            position = int(rng.integers(0, self.num_sensors))
        else:
            position = int(start)
            if not 0 <= position < self.num_sensors:
                raise ValueError(f"start must be a valid sensor id, got {start}")
        path = self.topology.walk(position, steps, rng)
        return path[1:]

    def readings_along(self, sensor_ids: np.ndarray) -> np.ndarray:
        """Readings observed at a sequence of sensor ids."""
        sensor_ids = np.asarray(sensor_ids, dtype=np.int64)
        self.topology.validate_nodes(sensor_ids)
        return self.readings[sensor_ids]

    @classmethod
    def bernoulli(cls, side: int, probability: float, seed: SeedLike = None) -> "SensorGrid":
        """Network whose readings are i.i.d. Bernoulli(probability) indicators.

        This is the "percentage of sensors that recorded a condition" query
        of Section 6.3.1 — the sensor-network analogue of density estimation.
        """
        if not 0 <= probability <= 1:
            raise ValueError(f"probability must lie in [0, 1], got {probability}")

        def draw(num_sensors: int, rng: np.random.Generator) -> np.ndarray:
            return (rng.random(num_sensors) < probability).astype(np.float64)

        return cls(side, draw, seed)


__all__ = ["SensorGrid"]
