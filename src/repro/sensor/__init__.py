"""Random-walk token sampling on sensor networks (Section 6.3.1).

A base station injects a query token at some sensor of a grid network; the
token is relayed to a uniformly random neighbouring sensor in each step and
aggregates the readings it sees. Because the grid has strong *local* mixing,
repeat visits are few (Corollary 15), so the token's running average is
nearly as accurate as independently sampling sensors — without the network
having to remember which sensors were already visited.
"""

from repro.sensor.network import SensorGrid
from repro.sensor.aggregation import (
    TokenSampleResult,
    independent_sample_mean,
    token_fraction_estimate,
    token_mean_estimate,
)

__all__ = [
    "SensorGrid",
    "TokenSampleResult",
    "token_mean_estimate",
    "token_fraction_estimate",
    "independent_sample_mean",
]
