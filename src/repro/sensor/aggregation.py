"""Aggregation estimators over token walks.

The token's running average over visited sensors estimates the network-wide
mean; its accuracy relative to independent sampling is governed by how often
the walk revisits sensors — exactly the repeat-visit moments bounded by
Corollary 15 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensor.network import SensorGrid
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


@dataclass(frozen=True)
class TokenSampleResult:
    """Outcome of one token-walk aggregation query."""

    estimate: float
    true_value: float
    steps: int
    distinct_sensors: int
    repeat_visit_fraction: float

    @property
    def relative_error(self) -> float:
        if self.true_value == 0:
            return abs(self.estimate)
        return abs(self.estimate - self.true_value) / abs(self.true_value)


def token_mean_estimate(
    network: SensorGrid, steps: int, seed: SeedLike = None, *, start: int | None = None
) -> TokenSampleResult:
    """Estimate the mean sensor reading from one ``steps``-hop token walk."""
    require_integer(steps, "steps", minimum=1)
    visited = network.token_walk(steps, seed, start=start)
    readings = network.readings_along(visited)
    distinct = int(np.unique(visited).size)
    return TokenSampleResult(
        estimate=float(readings.mean()),
        true_value=network.true_mean,
        steps=steps,
        distinct_sensors=distinct,
        repeat_visit_fraction=1.0 - distinct / steps,
    )


def token_fraction_estimate(
    network: SensorGrid,
    steps: int,
    seed: SeedLike = None,
    *,
    threshold: float = 0.5,
    start: int | None = None,
) -> TokenSampleResult:
    """Estimate the fraction of sensors whose reading exceeds ``threshold``."""
    require_integer(steps, "steps", minimum=1)
    visited = network.token_walk(steps, seed, start=start)
    readings = network.readings_along(visited)
    indicator = (readings >= threshold).astype(np.float64)
    distinct = int(np.unique(visited).size)
    return TokenSampleResult(
        estimate=float(indicator.mean()),
        true_value=network.true_fraction(threshold),
        steps=steps,
        distinct_sensors=distinct,
        repeat_visit_fraction=1.0 - distinct / steps,
    )


def independent_sample_mean(
    network: SensorGrid, samples: int, seed: SeedLike = None
) -> TokenSampleResult:
    """Baseline: average the readings of ``samples`` uniformly random sensors.

    This is the idealised estimator the token walk is compared against;
    implementing it requires global random access to the network, which a
    relayed token does not have.
    """
    require_integer(samples, "samples", minimum=1)
    rng = as_generator(seed)
    chosen = rng.integers(0, network.num_sensors, size=samples)
    readings = network.readings_along(chosen)
    distinct = int(np.unique(chosen).size)
    return TokenSampleResult(
        estimate=float(readings.mean()),
        true_value=network.true_mean,
        steps=samples,
        distinct_sensors=distinct,
        repeat_visit_fraction=1.0 - distinct / samples,
    )


__all__ = [
    "TokenSampleResult",
    "token_mean_estimate",
    "token_fraction_estimate",
    "independent_sample_mean",
]
