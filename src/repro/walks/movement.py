"""Movement models beyond the pure random walk (Section 6.1 extension).

The paper's model has agents take a uniformly random unit step each round,
and Section 6.1 suggests studying perturbed movement: lazy agents that
sometimes stay put, or agents whose step distribution is biased towards some
direction. A movement model replaces :meth:`Topology.step_many` in the
simulation; the encounter-rate estimator itself is unchanged, which lets the
E19 ablation quantify how much accuracy (and unbiasedness) each perturbation
costs.

All models here are defined for the two-dimensional torus, the setting the
paper's discussion refers to; :class:`UniformRandomWalk` additionally works
on every topology since it simply delegates to the topology's own step.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.encounter import batched_collision_counts
from repro.topology.base import Topology
from repro.topology.torus import Torus2D
from repro.utils.validation import require_probability


class MovementModel(abc.ABC):
    """How agents move in each round.

    A movement model maps the vector of current positions to the vector of
    next positions; the default model is the paper's uniform random walk.
    """

    #: Short label used in experiment tables.
    name: str = "movement"

    #: Whether :meth:`step` never mixes information across the leading
    #: (replicate) axis of the position array, so the batched kernel may run
    #: it on ``(R, n)`` replicate matrices without information leaking
    #: between replicates. Elementwise models qualify trivially; models
    #: that couple agents must evaluate that coupling per row.
    batch_safe: bool = False

    #: Whether :meth:`step` delegates its randomness entirely to the
    #: topology's own step draw, so the fused kernel fast path
    #: (:mod:`repro.core.fastpath`) may replace it with the topology's
    #: ``draw_steps``/``apply_steps`` pair — including chunked (multi-round)
    #: draws — without changing the random stream. Models that draw *any*
    #: randomness of their own (laziness coins, biased step choices,
    #: avoidance re-steps) must leave this ``False``: their draws interleave
    #: with the topology's within each round, and reordering them would
    #: break the bit-identity stream contract.
    precomputed_steps: bool = False

    #: Whether :meth:`step` can only ever return valid node labels of the
    #: topology it was given (all catalog models qualify: they compose
    #: ``step_many``/``encode`` calls, which wrap or clamp into range).
    #: The kernel hoists per-round label-range validation out of the loop
    #: for models declaring this; foreign models keep the per-round check.
    emits_valid_nodes: bool = False

    @abc.abstractmethod
    def step(
        self, topology: Topology, positions: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance every agent by one round."""


@dataclass(frozen=True)
class UniformRandomWalk(MovementModel):
    """The paper's model: step to a uniformly random neighbour every round."""

    name: str = "uniform_random_walk"
    batch_safe: bool = True
    precomputed_steps: bool = True
    emits_valid_nodes: bool = True

    def step(
        self, topology: Topology, positions: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return topology.step_many(positions, rng)


@dataclass(frozen=True)
class LazyRandomWalk(MovementModel):
    """Stay put with probability ``stay_probability``, otherwise walk.

    The lazy walk keeps the estimator unbiased (the stationary distribution
    remains uniform) but weakens local mixing: effectively only a
    ``1 - stay_probability`` fraction of the rounds advance the walk, so more
    rounds are needed for the same accuracy.
    """

    stay_probability: float = 0.5
    name: str = "lazy_random_walk"
    batch_safe: bool = True
    emits_valid_nodes: bool = True

    def __post_init__(self) -> None:
        require_probability(self.stay_probability, "stay_probability", allow_one=False)

    def step(
        self, topology: Topology, positions: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        moved = topology.step_many(positions, rng)
        stay = rng.random(positions.shape) < self.stay_probability
        return np.where(stay, positions, moved)


@dataclass(frozen=True)
class BiasedTorusWalk(MovementModel):
    """A torus walk whose step distribution is biased towards +x.

    ``bias`` interpolates between the uniform walk (0) and always stepping in
    the +x direction (1): the +x step gets probability ``1/4 + 3·bias/4`` and
    the other three steps share the remainder equally. Because every agent
    drifts the same way, relative positions still perform an unbiased walk,
    so encounter rates remain meaningful — a point the E19 ablation makes
    measurable.
    """

    bias: float = 0.2
    name: str = "biased_torus_walk"
    batch_safe: bool = True
    emits_valid_nodes: bool = True

    def __post_init__(self) -> None:
        require_probability(self.bias, "bias")

    def step_probabilities(self) -> np.ndarray:
        """Probabilities of the four unit steps, ordered as ``Torus2D.STEPS``."""
        # Torus2D.STEPS order: (0,1), (0,-1), (1,0), (-1,0); bias favours (1, 0).
        other = (1.0 - (0.25 + 0.75 * self.bias)) / 3.0
        return np.array([other, other, 0.25 + 0.75 * self.bias, other])

    def step(
        self, topology: Topology, positions: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if not isinstance(topology, Torus2D):
            raise TypeError("BiasedTorusWalk requires a Torus2D topology")
        positions = np.asarray(positions, dtype=np.int64)
        probabilities = self.step_probabilities()
        choices = rng.choice(4, size=positions.shape, p=probabilities)
        dx = Torus2D.STEPS[choices, 0]
        dy = Torus2D.STEPS[choices, 1]
        x, y = topology.decode(positions)
        return np.asarray(topology.encode(x + dx, y + dy), dtype=np.int64)


@dataclass(frozen=True)
class CollisionAvoidingWalk(MovementModel):
    """Agents that try to step away after a collision (Section 6.1 discussion).

    After any round in which an agent shared a node with another agent, it
    takes ``avoidance_steps`` extra random steps in the next round, modelling
    ants that move away from recently encountered ants. This lowers the
    encounter rate below the density, so the estimator becomes biased — the
    behaviour [GPT93, NTD05] report for real ants and the E19 ablation
    quantifies.

    The model couples agents *within* one agent-set (who collided with
    whom), but on an ``(R, n)`` replicate matrix the co-location test runs
    per row via the offset-label trick, so no information crosses the
    replicate axis — the walk is ``batch_safe`` and runs on the kernel's
    batched path like every other catalog model.
    """

    avoidance_steps: int = 1
    name: str = "collision_avoiding_walk"
    batch_safe: bool = True
    emits_valid_nodes: bool = True

    def __post_init__(self) -> None:
        if self.avoidance_steps < 0:
            raise ValueError(f"avoidance_steps must be non-negative, got {self.avoidance_steps}")

    def step(
        self, topology: Topology, positions: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        moved = topology.step_many(positions, rng)
        # Agents that were colliding before the step flee: extra steps. The
        # co-location test is evaluated independently per replicate row
        # (offset labels keep rows in disjoint ranges), and it consumes no
        # randomness, so a (1, n) row reproduces the serial stream exactly.
        matrix = positions.reshape(-1, positions.shape[-1])
        colliding = (batched_collision_counts(matrix, topology.num_nodes) > 0).reshape(
            positions.shape
        )
        for _ in range(self.avoidance_steps):
            fled = topology.step_many(moved, rng)
            moved = np.where(colliding, fled, moved)
        return moved


__all__ = [
    "MovementModel",
    "UniformRandomWalk",
    "LazyRandomWalk",
    "BiasedTorusWalk",
    "CollisionAvoidingWalk",
]
