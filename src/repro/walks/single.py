"""Simulation of individual random walks.

These helpers build on :meth:`Topology.step_many`, advancing many walkers in
parallel. They are the building blocks for the re-collision, equalization,
and moment measurements in the sibling modules.
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


def walk_path(topology: Topology, start: int, steps: int, seed: SeedLike = None) -> np.ndarray:
    """Path of a single ``steps``-step walk started at ``start``.

    Returns an array of length ``steps + 1``; entry ``r`` is the position
    after ``r`` steps (entry 0 is ``start``).
    """
    require_integer(steps, "steps", minimum=0)
    return topology.walk(int(start), steps, seed)


def walk_paths(
    topology: Topology,
    starts: np.ndarray,
    steps: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Paths of many independent walks advanced in lock-step.

    Parameters
    ----------
    topology:
        The graph to walk on.
    starts:
        Integer array of shape ``(num_walkers,)`` with starting nodes.
    steps:
        Number of rounds to simulate.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(num_walkers, steps + 1)``; column ``r`` holds the
        positions after ``r`` steps.
    """
    require_integer(steps, "steps", minimum=0)
    rng = as_generator(seed)
    starts = np.asarray(starts, dtype=np.int64)
    topology.validate_nodes(starts)
    paths = np.empty((starts.shape[0], steps + 1), dtype=np.int64)
    paths[:, 0] = starts
    positions = starts.copy()
    for round_index in range(1, steps + 1):
        positions = topology.step_many(positions, rng)
        paths[:, round_index] = positions
    return paths


def end_positions(
    topology: Topology,
    starts: np.ndarray,
    steps: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Positions of many independent walks after exactly ``steps`` steps.

    Cheaper than :func:`walk_paths` when intermediate positions are not
    needed (memory is O(num_walkers) instead of O(num_walkers * steps)).
    """
    require_integer(steps, "steps", minimum=0)
    rng = as_generator(seed)
    positions = np.asarray(starts, dtype=np.int64).copy()
    topology.validate_nodes(positions)
    for _ in range(steps):
        positions = topology.step_many(positions, rng)
    return positions


__all__ = ["walk_path", "walk_paths", "end_positions"]
