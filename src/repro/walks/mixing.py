"""Local and global mixing measurements.

The paper's central conceptual point is that *local* mixing — how quickly a
walk spreads over its neighbourhood, captured by the sum
``B(t) = sum_{m=0}^{t} β(m)`` of re-collision probabilities — is what governs
encounter-rate density estimation (Lemma 19), not the *global* mixing time.
This module measures both so experiments can exhibit the divergence (e.g. the
2-D torus mixes slowly globally but has ``B(t) = O(log t)``).
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import Topology
from repro.topology.spectral import stationary_distribution
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer
from repro.walks.recollision import RecollisionProfile, recollision_profile


def local_mixing_sum(
    topology_or_profile: Topology | RecollisionProfile,
    max_offset: int | None = None,
    trials: int = 1000,
    seed: SeedLike = None,
) -> float:
    """The local mixing sum ``B(t)`` of Lemma 19.

    Accepts either a pre-computed :class:`RecollisionProfile` or a topology
    (in which case the profile is measured first with ``max_offset`` and
    ``trials``).
    """
    if isinstance(topology_or_profile, RecollisionProfile):
        return topology_or_profile.local_mixing_sum()
    if max_offset is None:
        raise ValueError("max_offset is required when passing a topology")
    profile = recollision_profile(topology_or_profile, max_offset, trials=trials, seed=seed)
    return profile.local_mixing_sum()


def local_mixing_curve(
    topology: Topology,
    max_offset: int,
    trials: int = 1000,
    seed: SeedLike = None,
) -> np.ndarray:
    """``B(0), B(1), ..., B(max_offset)`` measured empirically."""
    profile = recollision_profile(topology, max_offset, trials=trials, seed=seed)
    return profile.cumulative()


def empirical_total_variation(
    topology: Topology,
    start: int,
    steps: int,
    trials: int = 2000,
    seed: SeedLike = None,
) -> float:
    """Total-variation distance between the ``steps``-step law and stationarity.

    Runs ``trials`` walks from ``start`` for ``steps`` steps, builds the
    empirical distribution over end nodes, and returns its TV distance to the
    stationary distribution (uniform for regular topologies).
    """
    require_integer(steps, "steps", minimum=0)
    require_integer(trials, "trials", minimum=1)
    rng = as_generator(seed)
    positions = np.full(trials, int(start), dtype=np.int64)
    for _ in range(steps):
        positions = topology.step_many(positions, rng)
    counts = np.bincount(positions, minlength=topology.num_nodes).astype(np.float64)
    empirical = counts / counts.sum()
    stationary = stationary_distribution(topology)
    return float(0.5 * np.abs(empirical - stationary).sum())


def empirical_mixing_time(
    topology: Topology,
    threshold: float = 0.25,
    max_steps: int = 10_000,
    trials: int = 2000,
    seed: SeedLike = None,
    *,
    check_every: int = 1,
    start: int | None = None,
) -> int:
    """Smallest measured ``t`` with TV distance below ``threshold``.

    A coarse (Monte-Carlo) estimate of the global mixing time, used only to
    contrast global against local mixing in the experiments; returns
    ``max_steps`` if the threshold is not reached within the budget.

    Notes
    -----
    On bipartite topologies the walk never mixes in total variation (parity
    is preserved), so the measured distance plateaus near 0.5; callers should
    use a threshold above that plateau or interpret the result accordingly.
    """
    require_integer(max_steps, "max_steps", minimum=1)
    require_integer(trials, "trials", minimum=1)
    require_integer(check_every, "check_every", minimum=1)
    rng = as_generator(seed)
    start_node = 0 if start is None else int(start)
    positions = np.full(trials, start_node, dtype=np.int64)
    stationary = stationary_distribution(topology)
    for step in range(1, max_steps + 1):
        positions = topology.step_many(positions, rng)
        if step % check_every != 0:
            continue
        counts = np.bincount(positions, minlength=topology.num_nodes).astype(np.float64)
        empirical = counts / counts.sum()
        distance = 0.5 * np.abs(empirical - stationary).sum()
        if distance <= threshold:
            return step
    return max_steps


__all__ = [
    "local_mixing_sum",
    "local_mixing_curve",
    "empirical_total_variation",
    "empirical_mixing_time",
]
