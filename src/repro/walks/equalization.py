"""Equalization (return-to-origin) statistics for single random walks.

Corollary 10 of the paper bounds the probability that a torus walk returns to
its starting node after ``m`` steps by ``Θ(1/(m+1)) + O(1/A)``; Corollary 16
bounds all central moments of the *number* of equalizations over ``t`` steps.
These functions measure both quantities empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer
from repro.walks.single import walk_paths


@dataclass(frozen=True)
class EqualizationProfile:
    """Empirical return-to-origin probability per step offset."""

    offsets: np.ndarray
    probability: np.ndarray
    trials: int
    topology_name: str


def equalization_profile(
    topology: Topology,
    max_offset: int,
    trials: int = 1000,
    seed: SeedLike = None,
) -> EqualizationProfile:
    """Probability a walk is back at its start node after ``m`` steps.

    Starts ``trials`` walkers at uniformly random nodes and records, for each
    offset, the fraction currently at their own origin. Odd offsets have
    probability zero on bipartite topologies; they are reported as measured
    (no smoothing) because Corollary 10 states the parity explicitly.
    """
    require_integer(max_offset, "max_offset", minimum=0)
    require_integer(trials, "trials", minimum=1)
    rng = as_generator(seed)
    origins = topology.uniform_nodes(trials, rng)
    positions = origins.copy()
    hits = np.zeros(max_offset + 1, dtype=np.float64)
    hits[0] = float(trials)
    for offset in range(1, max_offset + 1):
        positions = topology.step_many(positions, rng)
        hits[offset] = float(np.count_nonzero(positions == origins))
    return EqualizationProfile(
        offsets=np.arange(max_offset + 1),
        probability=hits / trials,
        trials=trials,
        topology_name=topology.name,
    )


def count_equalizations(path: np.ndarray) -> int:
    """Number of returns to the starting node along a recorded walk path.

    ``path`` is the output of :func:`repro.walks.single.walk_path`; the
    starting entry itself is not counted as a return.
    """
    path = np.asarray(path)
    if path.ndim != 1 or path.size == 0:
        raise ValueError("path must be a non-empty 1-D array of positions")
    return int(np.count_nonzero(path[1:] == path[0]))


def equalization_counts(
    topology: Topology,
    steps: int,
    trials: int = 1000,
    seed: SeedLike = None,
) -> np.ndarray:
    """Number of equalizations of ``trials`` independent ``steps``-step walks.

    Returns an integer array of length ``trials`` — the samples whose central
    moments Corollary 16 bounds by ``k! w^k log^k(2t)``.
    """
    require_integer(steps, "steps", minimum=1)
    require_integer(trials, "trials", minimum=1)
    rng = as_generator(seed)
    starts = topology.uniform_nodes(trials, rng)
    paths = walk_paths(topology, starts, steps, rng)
    return np.count_nonzero(paths[:, 1:] == paths[:, [0]], axis=1)


__all__ = [
    "EqualizationProfile",
    "equalization_profile",
    "count_equalizations",
    "equalization_counts",
]
