"""Empirical re-collision probability profiles.

The key quantity in the paper's analysis is the probability that two agents
which collide in round ``r`` collide again in round ``r + m`` (Lemma 4 on the
torus, Lemmas 20/22/23/25 on other topologies). The analysis only uses an
upper bound β(m) on this probability; here we *measure* it by starting two
independent walkers at the same (uniformly random) node and recording, for
every offset ``m``, whether they occupy the same node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


@dataclass(frozen=True)
class RecollisionProfile:
    """Result of :func:`recollision_profile`.

    Attributes
    ----------
    offsets:
        Array ``0 .. max_offset`` of step offsets ``m``.
    probability:
        Empirical re-collision probability at each offset (entry 0 is 1.0 by
        construction: both walkers start on the same node).
    trials:
        Number of Monte-Carlo trials behind each estimate.
    topology_name:
        Name of the topology measured.
    """

    offsets: np.ndarray
    probability: np.ndarray
    trials: int
    topology_name: str

    def local_mixing_sum(self) -> float:
        """``B(t) = sum_m β(m)`` over the measured window (Lemma 19)."""
        return float(self.probability.sum())

    def cumulative(self) -> np.ndarray:
        """Cumulative sums ``B(0..t)`` — the local mixing curve."""
        return np.cumsum(self.probability)


def recollision_profile(
    topology: Topology,
    max_offset: int,
    trials: int = 1000,
    seed: SeedLike = None,
    *,
    combine_parity: bool = True,
) -> RecollisionProfile:
    """Measure the re-collision probability for offsets ``0 .. max_offset``.

    Two walkers are started at the same uniformly random node (a collision at
    offset 0) and advanced independently; for each offset we record the
    fraction of trials in which they share a node.

    Parameters
    ----------
    topology:
        Graph to walk on.
    max_offset:
        Largest offset ``m`` to measure.
    trials:
        Number of independent walker pairs.
    combine_parity:
        Bipartite topologies (torus, ring, hypercube) can only re-collide at
        even offsets; when ``True`` (default) each odd offset's estimate is
        replaced by the average of its even neighbours so the profile decays
        smoothly, matching how the paper's bound β(m) is used inside sums.
        Set ``False`` to see the raw zero/non-zero alternation.
    """
    require_integer(max_offset, "max_offset", minimum=0)
    require_integer(trials, "trials", minimum=1)
    rng = as_generator(seed)

    starts = topology.uniform_nodes(trials, rng)
    positions_a = starts.copy()
    positions_b = starts.copy()
    hits = np.zeros(max_offset + 1, dtype=np.float64)
    hits[0] = float(trials)
    for offset in range(1, max_offset + 1):
        positions_a = topology.step_many(positions_a, rng)
        positions_b = topology.step_many(positions_b, rng)
        hits[offset] = float(np.count_nonzero(positions_a == positions_b))

    probability = hits / trials
    if combine_parity and max_offset >= 2:
        probability = _smooth_parity(probability)
    return RecollisionProfile(
        offsets=np.arange(max_offset + 1),
        probability=probability,
        trials=trials,
        topology_name=topology.name,
    )


def _smooth_parity(probability: np.ndarray) -> np.ndarray:
    """Replace exactly-zero odd-offset entries by the mean of their neighbours.

    Only entries that are exactly zero are touched, so non-bipartite
    topologies (where odd-offset re-collisions do happen) are unaffected.
    """
    smoothed = probability.copy()
    for index in range(1, len(probability) - 1):
        if probability[index] == 0.0:
            smoothed[index] = 0.5 * (probability[index - 1] + probability[index + 1])
    if len(probability) >= 2 and probability[-1] == 0.0:
        smoothed[-1] = probability[-2]
    return smoothed


def recollision_probability(
    topology: Topology,
    offset: int,
    trials: int = 1000,
    seed: SeedLike = None,
) -> float:
    """Empirical probability of a re-collision exactly ``offset`` steps later."""
    profile = recollision_profile(
        topology, offset, trials=trials, seed=seed, combine_parity=False
    )
    return float(profile.probability[offset])


__all__ = ["RecollisionProfile", "recollision_profile", "recollision_probability"]
