"""Empirical moment estimation for collision and visit counts.

Lemma 11 bounds every central moment of the number of collisions ``c_j``
between the estimating agent and one other agent over ``t`` rounds:

    E[(c_j - E c_j)^k]  <=  (t / A) * w^k * k! * log^k(2t).

Corollary 15 gives the analogous bound for the number of visits a single
walk pays to a fixed node, and Corollary 16 for equalizations. The functions
here produce the raw samples and their central moments so the experiment
suite can compare measurement against these bounds.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


def central_moments(samples: np.ndarray, orders: Sequence[int]) -> dict[int, float]:
    """Empirical central moments ``E[(X - mean)^k]`` for each ``k`` in ``orders``.

    Odd-order moments are reported as-is (they may be negative); callers that
    want a magnitude should take ``abs``.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("samples must be non-empty")
    mean = samples.mean()
    centered = samples - mean
    return {int(order): float(np.mean(centered ** int(order))) for order in orders}


def pairwise_collision_counts(
    topology: Topology,
    rounds: int,
    trials: int = 1000,
    seed: SeedLike = None,
) -> np.ndarray:
    """Samples of the pairwise collision count ``c_j`` of Lemma 11.

    Each trial places two agents independently and uniformly at random,
    advances both by independent random walks for ``rounds`` rounds, and
    counts the rounds in which they share a node. Returns an integer array of
    length ``trials``.
    """
    require_integer(rounds, "rounds", minimum=1)
    require_integer(trials, "trials", minimum=1)
    rng = as_generator(seed)
    positions_a = topology.uniform_nodes(trials, rng)
    positions_b = topology.uniform_nodes(trials, rng)
    counts = np.zeros(trials, dtype=np.int64)
    for _ in range(rounds):
        positions_a = topology.step_many(positions_a, rng)
        positions_b = topology.step_many(positions_b, rng)
        counts += (positions_a == positions_b).astype(np.int64)
    return counts


def visit_counts(
    topology: Topology,
    steps: int,
    trials: int = 1000,
    seed: SeedLike = None,
    *,
    target: int | None = None,
) -> np.ndarray:
    """Samples of the number of times a walk visits a fixed node (Corollary 15).

    Each trial starts a walker at a uniformly random node and counts visits
    to ``target`` (default: node 0) over ``steps`` steps. The starting round
    is not counted as a visit unless the walk begins at the target, matching
    the "visits node j in round r" accounting of the corollary.
    """
    require_integer(steps, "steps", minimum=1)
    require_integer(trials, "trials", minimum=1)
    rng = as_generator(seed)
    target_node = 0 if target is None else int(target)
    if not 0 <= target_node < topology.num_nodes:
        raise ValueError(f"target must be a valid node label, got {target_node}")
    positions = topology.uniform_nodes(trials, rng)
    counts = np.zeros(trials, dtype=np.int64)
    for _ in range(steps):
        positions = topology.step_many(positions, rng)
        counts += (positions == target_node).astype(np.int64)
    return counts


def lemma11_moment_bound(
    rounds: int, num_nodes: int, order: int, *, constant: float = 1.0
) -> float:
    """The right-hand side of Lemma 11: ``(t/A) · w^k · k! · log^k(2t)``.

    ``constant`` plays the role of the unspecified constant ``w``; experiments
    fit it from the k=2 measurement and check higher orders with the same
    value.
    """
    require_integer(rounds, "rounds", minimum=1)
    require_integer(num_nodes, "num_nodes", minimum=1)
    require_integer(order, "order", minimum=1)
    log_term = math.log(2.0 * rounds)
    return float(
        (rounds / num_nodes)
        * (constant**order)
        * math.factorial(order)
        * (log_term**order)
    )


__all__ = [
    "central_moments",
    "pairwise_collision_counts",
    "visit_counts",
    "lemma11_moment_bound",
]
