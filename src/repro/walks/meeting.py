"""Meeting and hitting time measurements for random walks.

The paper's analysis is phrased in terms of re-collision probabilities, but
the related classical quantities — the *hitting time* of a walk to a fixed
node and the *meeting time* of two independent walks — appear throughout the
literature it builds on ([Lov93], [ES09], [KMTS16]). These Monte-Carlo
estimators measure both, giving the test-suite independent handles on the
walk dynamics (e.g. meeting times on the torus grow near-linearly in ``A``
up to log factors, while on the complete graph they are ``Θ(A)`` exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


@dataclass(frozen=True)
class FirstPassageStatistics:
    """Summary of first-passage (hitting or meeting) time samples.

    ``censored_fraction`` is the fraction of trials that did not hit/meet
    within the step cap; their times are recorded as the cap, so the mean is
    a lower bound when censoring is non-zero.
    """

    mean_time: float
    median_time: float
    max_steps: int
    censored_fraction: float
    trials: int


def hitting_times(
    topology: Topology,
    target: int,
    max_steps: int,
    trials: int = 200,
    seed: SeedLike = None,
) -> np.ndarray:
    """Steps until a walk from a uniform start first visits ``target`` (capped)."""
    require_integer(max_steps, "max_steps", minimum=1)
    require_integer(trials, "trials", minimum=1)
    if not 0 <= int(target) < topology.num_nodes:
        raise ValueError(f"target must be a valid node, got {target}")
    rng = as_generator(seed)
    positions = topology.uniform_nodes(trials, rng)
    times = np.full(trials, max_steps, dtype=np.int64)
    unresolved = positions != target
    times[~unresolved] = 0
    for step in range(1, max_steps + 1):
        if not unresolved.any():
            break
        active = np.flatnonzero(unresolved)
        positions[active] = topology.step_many(positions[active], rng)
        arrived = active[positions[active] == target]
        times[arrived] = step
        unresolved[arrived] = False
    return times


def meeting_times(
    topology: Topology,
    max_steps: int,
    trials: int = 200,
    seed: SeedLike = None,
    *,
    common_start: bool = False,
) -> np.ndarray:
    """Steps until two independently walking agents first share a node (capped).

    ``common_start=True`` starts both agents at the same node (the
    re-collision setting of Lemma 4); otherwise the starts are independent
    uniform nodes (the meeting-time setting).
    """
    require_integer(max_steps, "max_steps", minimum=1)
    require_integer(trials, "trials", minimum=1)
    rng = as_generator(seed)
    first = topology.uniform_nodes(trials, rng)
    second = first.copy() if common_start else topology.uniform_nodes(trials, rng)
    times = np.full(trials, max_steps, dtype=np.int64)
    unresolved = first != second
    times[~unresolved] = 0
    for step in range(1, max_steps + 1):
        if not unresolved.any():
            break
        active = np.flatnonzero(unresolved)
        first[active] = topology.step_many(first[active], rng)
        second[active] = topology.step_many(second[active], rng)
        met = active[first[active] == second[active]]
        times[met] = step
        unresolved[met] = False
    return times


def summarize_first_passage(samples: np.ndarray, max_steps: int) -> FirstPassageStatistics:
    """Summary statistics of hitting/meeting time samples."""
    samples = np.asarray(samples)
    if samples.size == 0:
        raise ValueError("samples must be non-empty")
    return FirstPassageStatistics(
        mean_time=float(samples.mean()),
        median_time=float(np.median(samples)),
        max_steps=int(max_steps),
        censored_fraction=float(np.mean(samples >= max_steps)),
        trials=int(samples.size),
    )


__all__ = [
    "FirstPassageStatistics",
    "hitting_times",
    "meeting_times",
    "summarize_first_passage",
]
