"""Coverage statistics of random walks: distinct nodes visited and repeat visits.

The sensor-network application (Section 6.3.1) and the swarm exploration
sketch (Section 6.3.4) both care about how much ground a walk covers and how
much effort is wasted on repeat visits. Corollary 15 says repeat visits on
the torus are rare in expectation; these helpers measure the full
distribution so the E16 sensor experiment and the coverage-oriented tests
have something concrete to check against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer
from repro.walks.single import walk_paths


@dataclass(frozen=True)
class CoverageStatistics:
    """Coverage summary of a set of walks of equal length."""

    steps: int
    mean_distinct_nodes: float
    mean_repeat_fraction: float
    min_distinct_nodes: int
    max_distinct_nodes: int
    trials: int

    @property
    def mean_coverage_rate(self) -> float:
        """Average number of *new* nodes discovered per step."""
        return self.mean_distinct_nodes / self.steps


def distinct_nodes_visited(path: np.ndarray) -> int:
    """Number of distinct nodes on a recorded walk path (including the start)."""
    path = np.asarray(path)
    if path.ndim != 1 or path.size == 0:
        raise ValueError("path must be a non-empty 1-D array of positions")
    return int(np.unique(path).size)


def repeat_visit_fraction(path: np.ndarray) -> float:
    """Fraction of steps (excluding the start) that land on an already-visited node."""
    path = np.asarray(path)
    if path.ndim != 1 or path.size < 2:
        raise ValueError("path must contain at least one step")
    steps = path.size - 1
    new_nodes = distinct_nodes_visited(path) - 1  # nodes discovered after the start
    # A step is "wasted" when it does not discover a new node. The start node
    # itself may be revisited, which also counts as a repeat.
    return 1.0 - new_nodes / steps


def coverage_statistics(
    topology: Topology,
    steps: int,
    trials: int = 200,
    seed: SeedLike = None,
) -> CoverageStatistics:
    """Coverage statistics of ``trials`` independent ``steps``-step walks.

    Walks start at independent uniformly random nodes (matching the model's
    placement assumption).
    """
    require_integer(steps, "steps", minimum=1)
    require_integer(trials, "trials", minimum=1)
    rng = as_generator(seed)
    starts = topology.uniform_nodes(trials, rng)
    paths = walk_paths(topology, starts, steps, rng)
    distinct = np.array([np.unique(row).size for row in paths])
    repeats = 1.0 - (distinct - 1) / steps
    return CoverageStatistics(
        steps=steps,
        mean_distinct_nodes=float(distinct.mean()),
        mean_repeat_fraction=float(repeats.mean()),
        min_distinct_nodes=int(distinct.min()),
        max_distinct_nodes=int(distinct.max()),
        trials=trials,
    )


__all__ = [
    "CoverageStatistics",
    "distinct_nodes_visited",
    "repeat_visit_fraction",
    "coverage_statistics",
]
