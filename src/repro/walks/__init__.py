"""Random-walk simulation and analysis tools.

This package provides the measurement side of the paper's technical core:

* :mod:`repro.walks.single` — simulating single and multiple walks.
* :mod:`repro.walks.recollision` — empirical re-collision probability
  profiles β(m) (Lemma 4 and its topology-specific analogues, Lemmas 20,
  22, 23, 25).
* :mod:`repro.walks.equalization` — return-to-origin (equalization)
  statistics (Corollaries 10 and 16).
* :mod:`repro.walks.moments` — empirical moments of pairwise collision
  counts and node visit counts (Lemma 11, Corollary 15).
* :mod:`repro.walks.mixing` — local mixing sums B(t) (Lemma 19) and
  empirical global mixing measurements.
"""

from repro.walks.single import end_positions, walk_path, walk_paths
from repro.walks.recollision import recollision_profile, recollision_probability
from repro.walks.equalization import (
    count_equalizations,
    equalization_counts,
    equalization_profile,
)
from repro.walks.moments import (
    central_moments,
    pairwise_collision_counts,
    visit_counts,
)
from repro.walks.mixing import (
    empirical_mixing_time,
    empirical_total_variation,
    local_mixing_sum,
)
from repro.walks.coverage import (
    CoverageStatistics,
    coverage_statistics,
    distinct_nodes_visited,
    repeat_visit_fraction,
)
from repro.walks.movement import (
    BiasedTorusWalk,
    CollisionAvoidingWalk,
    LazyRandomWalk,
    MovementModel,
    UniformRandomWalk,
)
from repro.walks.meeting import (
    FirstPassageStatistics,
    hitting_times,
    meeting_times,
    summarize_first_passage,
)

__all__ = [
    "FirstPassageStatistics",
    "hitting_times",
    "meeting_times",
    "summarize_first_passage",
    "walk_path",
    "walk_paths",
    "end_positions",
    "recollision_profile",
    "recollision_probability",
    "equalization_profile",
    "equalization_counts",
    "count_equalizations",
    "central_moments",
    "pairwise_collision_counts",
    "visit_counts",
    "local_mixing_sum",
    "empirical_total_variation",
    "empirical_mixing_time",
    "CoverageStatistics",
    "coverage_statistics",
    "distinct_nodes_visited",
    "repeat_visit_fraction",
    "MovementModel",
    "UniformRandomWalk",
    "LazyRandomWalk",
    "BiasedTorusWalk",
    "CollisionAvoidingWalk",
]
