"""Resumable parameter-grid orchestration over experiments and scenarios.

The subsystem generalises the ad-hoc grids inside individual experiment
scripts into one declarative, durable pipeline:

* :mod:`repro.sweeps.spec` — JSON-serialisable :class:`SweepSpec`\\ s built
  from grid / zip / random-search axes (:class:`GridAxis`,
  :class:`ZipAxis`, :class:`RandomAxis`) over experiment configs and
  dynamics scenarios, plus :func:`expand_axes`, the general form of the old
  ``analysis.sweep.cartesian_grid``;
* :mod:`repro.sweeps.runner` — compiles a spec into one flat
  :class:`~repro.engine.scheduler.ExecutionPlan` (the process pool spins up
  once per sweep, not once per cell), checkpoints every completed cell
  through :class:`~repro.engine.cache.RunCache`, streams finished rows into
  a :class:`~repro.store.ResultStore`, and resumes an interrupted sweep
  with zero recomputation. ``run_sweep_spec(..., shard=(i, N))`` runs only
  shard ``i``'s contiguous cell slice of the same plan (cell seeds
  untouched), so N machines can split a sweep and
  :func:`repro.store.merge_stores` joins their stores byte-identically.

The CLI front end is ``repro sweep run/resume/status`` (``run --shard i/N``
for distributed shards) plus ``repro store merge``.
"""

from repro.sweeps.spec import (
    SWEEP_SPEC_SCHEMA,
    GridAxis,
    RandomAxis,
    SweepSpec,
    TargetSpec,
    ZipAxis,
    axis_from_dict,
    expand_axes,
    load_spec,
    parse_shard,
    save_spec,
    shard_cell_indices,
)
from repro.sweeps.runner import (
    SweepCell,
    SweepOutcome,
    compile_cells,
    run_sweep_spec,
    sweep_status,
)

__all__ = [
    "SWEEP_SPEC_SCHEMA",
    "GridAxis",
    "ZipAxis",
    "RandomAxis",
    "TargetSpec",
    "SweepSpec",
    "SweepCell",
    "SweepOutcome",
    "axis_from_dict",
    "expand_axes",
    "load_spec",
    "parse_shard",
    "save_spec",
    "shard_cell_indices",
    "compile_cells",
    "run_sweep_spec",
    "sweep_status",
]
