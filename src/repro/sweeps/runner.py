"""Compile and run sweeps: one flat plan, per-cell checkpoints, resume.

The execution contract, which the tests pin down:

* **One pool per sweep.** All pending cells of a sweep — across every
  target — compile into a single :class:`~repro.engine.scheduler.ExecutionPlan`
  executed with ``chunk_size=1``, so the process pool spins up once and
  cells stream back the moment they complete (a slow cell never delays the
  checkpointing of faster ones).
* **Bit-identical for any worker count.** Cell ``i``'s seed is child ``i``
  of ``SeedSequence(spec.seed)`` regardless of which cells still need
  running, so a resumed remainder, a ``--workers 4`` run, and a serial run
  all produce identical payloads, rows, and stores.
* **Checkpoint every cell.** As each cell completes it is written to the
  run cache (atomic, content-keyed) and appended to the result store
  (atomic, idempotent) *before* the next result is consumed. Killing the
  process loses at most the cells in flight; ``run_sweep_spec`` on the same
  cache then recomputes only the missing cells — cache-hit accounting in
  :class:`SweepOutcome` makes "zero recomputation" checkable.
* **Shards partition, never perturb.** ``run_sweep_spec(..., shard=(i, N))``
  compiles the *same* flat plan and executes only the contiguous cell-range
  slice owned by shard ``i`` (:func:`repro.sweeps.spec.shard_cell_indices`),
  with cell seeds untouched — so N shard stores merged with
  :func:`repro.store.merge_stores` are byte-identical to one unsharded run.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro import __version__
from repro.engine.cache import RunCache, cache_key
from repro.engine.scheduler import ExecutionPlan, iter_execute_plan
from repro.obs.telemetry import get_telemetry
from repro.store import ResultStore
from repro.sweeps.spec import SweepSpec, axis_seed, expand_axes, shard_cell_indices
from repro.utils.rng import spawn_seed_sequences
from repro.utils.serialization import to_jsonable
from repro.utils.validation import require_integer

#: Bump when the cell payload layout changes; folded into every cell key.
_SWEEP_CELL_SCHEMA = 1

#: Parameters a scenario target understands (forwarded to ``build_scenario``
#: / ``run_scenario``); everything else is rejected at compile time.
_SCENARIO_PARAMS = frozenset({"rounds", "side", "num_agents", "replicates", "quick"})

#: Columns of a scenario cell's per-round records.
_SCENARIO_COLUMNS = (
    "round",
    "population",
    "num_nodes",
    "true_density",
    "running",
    "window",
    "discounted",
    "ci_low",
    "ci_high",
    "change_fraction",
)

ProgressFn = Callable[["SweepCell", str], None]


@dataclass(frozen=True)
class SweepCell:
    """One compiled invocation: a target plus its fully-resolved parameters.

    ``key`` is the cell's content identity — schema, package version, sweep
    name and seed, cell index, target, and parameters — so the run cache
    automatically misses when any of them changes and hits otherwise.
    """

    index: int
    target_kind: str
    target_name: str
    params: Mapping[str, Any]
    key: str

    def label(self) -> str:
        shown = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.target_name}({shown})" if shown else self.target_name


def _canonical_params(params: Mapping[str, Any]) -> dict[str, Any]:
    return {key: to_jsonable(value) for key, value in sorted(params.items())}


def _validate_experiment_params(name: str, params: Mapping[str, Any]) -> str:
    from repro.experiments import EXPERIMENTS

    key = name.upper()
    if key not in EXPERIMENTS:
        raise ValueError(f"unknown experiment id {name!r}; known ids: {sorted(EXPERIMENTS)}")
    _, config_cls = EXPERIMENTS[key]
    fields = {f.name for f in dataclasses.fields(config_cls)}
    unknown = set(params) - fields - {"quick"}
    if unknown:
        raise ValueError(
            f"experiment {key} does not take parameter(s) {sorted(unknown)}; "
            f"its config fields are {sorted(fields)} (plus 'quick')"
        )
    return key


def _validate_scenario_params(name: str, params: Mapping[str, Any]) -> str:
    from repro.dynamics.scenario import SCENARIOS, scenario_names

    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {scenario_names()}")
    unknown = set(params) - _SCENARIO_PARAMS
    if unknown:
        raise ValueError(
            f"scenario {name!r} does not take parameter(s) {sorted(unknown)}; "
            f"allowed: {sorted(_SCENARIO_PARAMS)}"
        )
    return name


def compile_cells(spec: SweepSpec) -> list[SweepCell]:
    """Expand ``spec`` into its ordered list of cells, validating every one.

    Cells enumerate targets in spec order, and within a target the product
    of the spec-level axes with the target's own (later axes vary fastest).
    Validation — target existence, parameter applicability — happens here,
    before any simulation starts, so a malformed spec fails in milliseconds
    rather than mid-sweep inside a worker process.

    Random-axis values draw from the dedicated axis entropy domain
    (:func:`repro.sweeps.spec.axis_seed`): spec-level axes once (every
    target sees the same sampled points), target-level axes per target —
    and never from the streams the cells simulate with.
    """
    shared_points = expand_axes(spec.axes, seed=axis_seed(spec.seed))
    cells: list[SweepCell] = []
    for target_index, target in enumerate(spec.targets):
        target_points = expand_axes(target.axes, seed=axis_seed(spec.seed, target_index))
        for shared in shared_points:
            for point in target_points:
                params = {**target.base, **shared, **point}
                if target.kind == "experiment":
                    name = _validate_experiment_params(target.name, params)
                else:
                    name = _validate_scenario_params(target.name, params)
                index = len(cells)
                key = cache_key(
                    kind="sweep-cell",
                    schema=_SWEEP_CELL_SCHEMA,
                    version=__version__,
                    sweep=spec.name,
                    seed=spec.seed,
                    cell=index,
                    target_kind=target.kind,
                    target=name,
                    params=_canonical_params(params),
                )
                cells.append(
                    SweepCell(
                        index=index,
                        target_kind=target.kind,
                        target_name=name,
                        params=params,
                        key=key,
                    )
                )
    return cells


def _coerce_config_overrides(params: Mapping[str, Any]) -> dict[str, Any]:
    """Convert JSON-shaped list values to tuples (config fields are tuple-typed)."""
    return {
        name: tuple(value) if isinstance(value, list) else value
        for name, value in params.items()
    }


def run_cell(
    target_kind: str,
    target_name: str,
    params: Mapping[str, Any],
    *,
    rng: np.random.Generator,
) -> dict[str, Any]:
    """Run one sweep cell and return its JSON-able payload.

    This is the module-level scheduler task (picklable). Experiments run
    with their config rebuilt from ``params`` over the quick/full defaults;
    scenarios run through :func:`repro.dynamics.driver.run_scenario` with a
    serial engine (the sweep already parallelises across cells). Imports
    are local so :mod:`repro.sweeps` itself stays import-light.
    """
    params = dict(params)
    quick = bool(params.pop("quick", False))
    if target_kind == "experiment":
        from repro.experiments import EXPERIMENTS

        module, config_cls = EXPERIMENTS[target_name.upper()]
        config = config_cls.quick() if quick else config_cls()
        config = dataclasses.replace(config, **_coerce_config_overrides(params))
        result = module.run(config, seed=rng)
        return {
            "target_kind": target_kind,
            "target": result.experiment_id,
            "title": result.title,
            "claim": result.claim,
            "records": result.records,
            "columns": list(result.columns) if result.columns else None,
            "notes": list(result.notes),
            "summary": None,
        }

    from repro.dynamics.driver import run_scenario
    from repro.dynamics.scenario import build_scenario

    replicates = int(params.pop("replicates", 8))
    scenario = build_scenario(target_name, quick=quick, **params)
    outcome = run_scenario(scenario, replicates=replicates, seed=rng)
    return {
        "target_kind": target_kind,
        "target": target_name,
        "title": scenario.description,
        "claim": f"scenario {target_name!r} tracked online over {scenario.rounds} rounds",
        "records": outcome.records(),
        "columns": list(_SCENARIO_COLUMNS),
        "notes": [],
        "summary": outcome.summary(),
    }


def cell_segment(spec: SweepSpec, cell: SweepCell) -> str:
    """Deterministic store segment name of one cell."""
    return f"{spec.name}-cell-{cell.index:05d}-{cell.key[:12]}"


def cell_rows(spec: SweepSpec, cell: SweepCell, payload: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Flatten one cell payload into store rows (params + record columns)."""
    meta = {
        "sweep": spec.name,
        "cell": cell.index,
        "cell_key": cell.key,
        "target_kind": cell.target_kind,
        "target": cell.target_name,
        "seed": spec.seed,
    }
    rows = []
    for row_index, record in enumerate(payload.get("records", [])):
        rows.append({**to_jsonable(cell.params), **to_jsonable(record), **meta, "row": row_index})
    return rows


def _store_cell(
    spec: SweepSpec, cell: SweepCell, payload: Mapping[str, Any], store: ResultStore
) -> bool:
    segment = cell_segment(spec, cell)
    if store.has_segment(segment):
        # Short-circuit before serialising the payload's rows: on a resume
        # of a mostly-complete sweep every cached cell lands here.
        return False
    meta = {
        "sweep": spec.name,
        "cell": cell.index,
        "cell_key": cell.key,
        "target_kind": cell.target_kind,
        "target": cell.target_name,
        "params": to_jsonable(cell.params),
        "title": payload.get("title"),
        "claim": payload.get("claim"),
        "columns": payload.get("columns"),
        "notes": payload.get("notes"),
        "summary": payload.get("summary"),
    }
    return store.append(
        segment,
        cell_rows(spec, cell, payload),
        meta=meta,
        provenance={"sweep": spec.name, "seed_root": spec.seed},
    )


@dataclass
class SweepOutcome:
    """What a :func:`run_sweep_spec` invocation did, cell by cell.

    ``payloads[i]`` is ``None`` exactly when cell ``i`` was neither cached
    nor executed this invocation (an interrupted / ``max_cells``-limited
    run); ``cached[i]`` / ``executed[i]`` say how each payload was obtained,
    which is the cache-hit accounting resumability tests assert on.

    ``shard`` records the ``(index, count)`` slice a sharded invocation
    owned (``None`` for an unsharded run): ``pending`` / ``complete`` then
    judge only the owned cells, so every shard of a sweep can report
    ``complete`` while holding payloads for just its slice.
    """

    spec: SweepSpec
    cells: list[SweepCell]
    payloads: list[dict[str, Any] | None]
    cached: list[bool]
    executed: list[bool]
    shard: tuple[int, int] | None = None

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def hits(self) -> int:
        return sum(self.cached)

    @property
    def computed(self) -> int:
        return sum(self.executed)

    @property
    def shard_indices(self) -> list[int]:
        """The cell indices this invocation owned (all of them unsharded)."""
        if self.shard is None:
            return list(range(len(self.cells)))
        index, count = self.shard
        return list(shard_cell_indices(len(self.cells), index, count))

    @property
    def pending(self) -> list[int]:
        return [index for index in self.shard_indices if self.payloads[index] is None]

    @property
    def complete(self) -> bool:
        return not self.pending

    def records(self) -> list[dict[str, Any]]:
        """Store-shaped rows of every completed cell, in cell order."""
        rows: list[dict[str, Any]] = []
        for cell, payload in zip(self.cells, self.payloads):
            if payload is not None:
                rows.extend(cell_rows(self.spec, cell, payload))
        return rows

    def summary(self) -> dict[str, Any]:
        out = {
            "sweep": self.spec.name,
            "cells": self.total,
            "cached": self.hits,
            "computed": self.computed,
            "pending": len(self.pending),
            "complete": self.complete,
        }
        if self.shard is not None:
            out["shard"] = f"{self.shard[0]}/{self.shard[1]}"
            out["shard_cells"] = len(self.shard_indices)
        return out


def run_sweep_spec(
    spec: SweepSpec,
    *,
    workers: int = 1,
    cache: RunCache | None = None,
    store: ResultStore | None = None,
    max_cells: int | None = None,
    progress: ProgressFn | None = None,
    shard: tuple[int, int] | None = None,
) -> SweepOutcome:
    """Run (or resume) every cell of ``spec``; see the module docstring.

    Parameters
    ----------
    workers:
        Worker processes for the single flat plan (results identical for
        any value).
    cache:
        Run cache used both to *skip* cells already computed and to
        *checkpoint* each cell the moment it completes. Without a cache the
        sweep still runs, but an interruption loses everything.
    store:
        Result store to stream completed cells into (idempotent appends, so
        resumed runs never duplicate rows). Cached cells whose segments are
        missing — e.g. a fresh store fed from a warm cache — are backfilled.
    max_cells:
        Compute at most this many *new* cells this invocation, then return
        with the remainder pending. This is the deterministic stand-in for
        "the process was killed mid-sweep" used by tests and the CI smoke
        step; resuming afterwards must recompute nothing that completed.
    progress:
        Optional callback invoked as ``progress(cell, status)`` with status
        ``"cached"`` or ``"computed"`` as each cell's payload materialises.
    shard:
        ``(index, count)`` to run only the contiguous cell-range slice
        owned by shard ``index`` of ``count``
        (:func:`repro.sweeps.spec.shard_cell_indices`). The full plan is
        still compiled — every cell keeps the seed it has in the unsharded
        run — but cache loads, execution, and store appends are restricted
        to the owned slice, so a shard's store holds *exactly* its own
        segments and ``merge_stores`` over all shards reproduces the
        unsharded store byte for byte.
    """
    require_integer(workers, "workers", minimum=1)
    if max_cells is not None:
        require_integer(max_cells, "max_cells", minimum=0)
    tel = get_telemetry()
    cells = compile_cells(spec)
    if shard is None:
        owned: Sequence[int] = range(len(cells))
    else:
        shard_index, shard_count = shard
        owned = shard_cell_indices(len(cells), shard_index, shard_count)
    seeds = spawn_seed_sequences(spec.seed, len(cells))
    payloads: list[dict[str, Any] | None] = [None] * len(cells)
    cached = [False] * len(cells)
    executed = [False] * len(cells)

    span_fields: dict[str, Any] = {"sweep": spec.name, "cells": len(cells), "workers": workers}
    if shard is not None:
        span_fields["shard"] = f"{shard[0]}/{shard[1]}"
    with tel.span("sweep", **span_fields):
        if cache is not None:
            for index in owned:
                cell = cells[index]
                payload = cache.load(cell.key)
                if payload is not None:
                    payloads[cell.index] = payload
                    cached[cell.index] = True
                    if store is not None:
                        _store_cell(spec, cell, payload, store)
                    if tel.enabled:
                        tel.counter("sweep.cells_cached")
                        tel.event("sweep.cell", cell=cell.index, status="cached")
                    if progress is not None:
                        progress(cell, "cached")

        pending = [index for index in owned if payloads[index] is None]
        to_run = pending if max_cells is None else pending[:max_cells]
        if to_run:
            # One flat plan over *every* cell, then the slice to execute:
            # the sub-plan keeps each cell's full-plan seed, which is what
            # makes shards (and resumed remainders) bit-identical to the
            # cells' runs inside an unsharded, uninterrupted sweep.
            full_plan = ExecutionPlan(
                task=run_cell,
                settings=tuple(
                    {
                        "target_kind": cell.target_kind,
                        "target_name": cell.target_name,
                        "params": dict(cell.params),
                    }
                    for cell in cells
                ),
                seed_sequences=tuple(seeds),
            )
            plan = full_plan.subset(to_run)
            # chunk_size=1: cells are whole experiments, so per-cell round trips
            # are cheap relative to the work, and every completed cell is
            # checkpointed before the next one is awaited.
            for position, payload in iter_execute_plan(plan, workers=workers, chunk_size=1):
                index = to_run[position]
                payloads[index] = payload
                executed[index] = True
                checkpoint_start = time.perf_counter() if tel.enabled else 0.0
                if cache is not None:
                    cache.store(cells[index].key, payload)
                if store is not None:
                    _store_cell(spec, cells[index], payload, store)
                if tel.enabled:
                    tel.counter("sweep.cells_computed")
                    tel.timer(
                        "sweep.checkpoint_seconds", time.perf_counter() - checkpoint_start
                    )
                    tel.event("sweep.cell", cell=index, status="computed")
                if progress is not None:
                    progress(cells[index], "computed")

    return SweepOutcome(
        spec=spec, cells=cells, payloads=payloads, cached=cached, executed=executed, shard=shard
    )


def sweep_status(
    spec: SweepSpec,
    *,
    cache: RunCache | None = None,
    store: ResultStore | None = None,
) -> dict[str, Any]:
    """Inspect a sweep without running anything: which cells are done where."""
    cells = compile_cells(spec)
    per_cell = []
    for cell in cells:
        per_cell.append(
            {
                "cell": cell.index,
                "target_kind": cell.target_kind,
                "target": cell.target_name,
                "params": to_jsonable(cell.params),
                "cached": bool(cache is not None and cache.contains(cell.key)),
                "stored": bool(
                    store is not None and store.exists() and store.has_segment(cell_segment(spec, cell))
                ),
            }
        )
    done = sum(1 for entry in per_cell if entry["cached"])
    return {
        "sweep": spec.name,
        "cells": len(cells),
        "cached": done,
        "pending": len(cells) - done,
        "per_cell": per_cell,
    }


__all__ = [
    "SweepCell",
    "SweepOutcome",
    "compile_cells",
    "run_cell",
    "cell_rows",
    "cell_segment",
    "run_sweep_spec",
    "sweep_status",
]
