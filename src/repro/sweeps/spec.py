"""Declarative, JSON-serialisable sweep specifications.

A sweep is *targets x axes*:

* a **target** names the thing each cell runs — a static experiment from
  :data:`repro.experiments.EXPERIMENTS` (``{"kind": "experiment", "name":
  "E02"}``) or a dynamics scenario from the catalog (``{"kind":
  "scenario", "name": "crash"}``) — plus fixed ``base`` overrides;
* an **axis** contributes parameter assignments. :class:`GridAxis` takes
  the cartesian product with everything else (the general form of the old
  ``analysis.sweep.cartesian_grid``), :class:`ZipAxis` varies several
  parameters in lock-step, and :class:`RandomAxis` contributes ``samples``
  seeded draws from a distribution (random search). Axes shared by every
  target live on the spec; target-specific axes live on the target.

Everything round-trips through plain dicts (:meth:`SweepSpec.to_dict` /
:meth:`SweepSpec.from_dict`) and therefore through JSON files on disk, so a
sweep is data: the CLI, the cache keys, and the resume logic all consume
the same frozen description.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.utils.rng import spawn_seed_sequences
from repro.utils.serialization import to_jsonable
from repro.utils.validation import require_integer

#: Bump when the spec layout changes incompatibly; embedded in saved files.
SWEEP_SPEC_SCHEMA = 1

_TARGET_KINDS = ("experiment", "scenario")
_DISTRIBUTIONS = ("uniform", "loguniform", "randint", "choice")


def _freeze_value(value: Any) -> Any:
    """JSON-load-shaped values (lists) become hashable/frozen tuples."""
    if isinstance(value, list):
        return tuple(_freeze_value(item) for item in value)
    return value


@dataclass(frozen=True)
class GridAxis:
    """One parameter taking each listed value (cartesian with other axes)."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", _freeze_value(list(self.values)))
        if not self.name:
            raise ValueError("grid axis needs a non-empty parameter name")
        if not self.values:
            raise ValueError(f"grid axis {self.name!r} needs at least one value")

    @property
    def names(self) -> tuple[str, ...]:
        return (self.name,)

    def points(self, rng: np.random.Generator) -> list[dict[str, Any]]:
        return [{self.name: value} for value in self.values]

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "grid", "name": self.name, "values": list(self.values)}


@dataclass(frozen=True)
class ZipAxis:
    """Several parameters varied in lock-step: one cell block per row."""

    names: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(self.names))
        object.__setattr__(self, "rows", tuple(_freeze_value(list(row)) for row in self.rows))
        if not self.names:
            raise ValueError("zip axis needs at least one parameter name")
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"zip axis repeats a parameter name: {self.names}")
        if not self.rows:
            raise ValueError(f"zip axis {self.names} needs at least one row")
        for row in self.rows:
            if len(row) != len(self.names):
                raise ValueError(
                    f"zip axis row {row!r} has {len(row)} values for {len(self.names)} names"
                )

    def points(self, rng: np.random.Generator) -> list[dict[str, Any]]:
        return [dict(zip(self.names, row)) for row in self.rows]

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "zip", "names": list(self.names), "rows": [list(row) for row in self.rows]}


@dataclass(frozen=True)
class RandomAxis:
    """One parameter taking ``samples`` seeded draws from a distribution.

    Distributions: ``uniform`` / ``loguniform`` over ``[low, high)``,
    ``randint`` over ``[low, high)`` integers, and ``choice`` over
    ``choices``. The draws are a pure function of the owning spec's seed —
    through a **dedicated axis entropy domain** (:func:`axis_seed`), so the
    sampled parameter values are statistically independent of every cell's
    simulation stream — making a random-search sweep exactly as
    reproducible and resumable as a grid.
    """

    name: str
    samples: int
    distribution: str = "uniform"
    low: float | None = None
    high: float | None = None
    choices: tuple[Any, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("random axis needs a non-empty parameter name")
        require_integer(self.samples, "samples", minimum=1)
        if self.distribution not in _DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; known: {list(_DISTRIBUTIONS)}"
            )
        if self.distribution == "choice":
            if not self.choices:
                raise ValueError(f"random axis {self.name!r} with 'choice' needs choices")
            object.__setattr__(self, "choices", _freeze_value(list(self.choices)))
        else:
            if self.low is None or self.high is None or not (self.low < self.high):
                raise ValueError(
                    f"random axis {self.name!r} needs low < high, got "
                    f"low={self.low!r} high={self.high!r}"
                )
            if self.distribution == "loguniform" and self.low <= 0:
                raise ValueError(f"loguniform axis {self.name!r} needs low > 0")

    @property
    def names(self) -> tuple[str, ...]:
        return (self.name,)

    def points(self, rng: np.random.Generator) -> list[dict[str, Any]]:
        if self.distribution == "choice":
            indices = rng.integers(0, len(self.choices), size=self.samples)
            values = [self.choices[int(i)] for i in indices]
        elif self.distribution == "randint":
            values = [int(v) for v in rng.integers(int(self.low), int(self.high), size=self.samples)]
        elif self.distribution == "loguniform":
            draws = rng.uniform(np.log(self.low), np.log(self.high), size=self.samples)
            values = [float(v) for v in np.exp(draws)]
        else:  # uniform
            values = [float(v) for v in rng.uniform(self.low, self.high, size=self.samples)]
        return [{self.name: value} for value in values]

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": "random",
            "name": self.name,
            "samples": self.samples,
            "distribution": self.distribution,
        }
        if self.distribution == "choice":
            out["choices"] = list(self.choices)
        else:
            out["low"] = self.low
            out["high"] = self.high
        return out


Axis = GridAxis | ZipAxis | RandomAxis


def axis_from_dict(payload: Mapping[str, Any]) -> Axis:
    """Rebuild an axis from its :meth:`to_dict` form."""
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind == "grid":
        return GridAxis(name=data["name"], values=tuple(data["values"]))
    if kind == "zip":
        return ZipAxis(names=tuple(data["names"]), rows=tuple(tuple(row) for row in data["rows"]))
    if kind == "random":
        return RandomAxis(
            name=data["name"],
            samples=data["samples"],
            distribution=data.get("distribution", "uniform"),
            low=data.get("low"),
            high=data.get("high"),
            choices=tuple(data["choices"]) if data.get("choices") is not None else None,
        )
    raise ValueError(f"unknown axis kind {kind!r}; known kinds: ['grid', 'zip', 'random']")


#: Entropy-domain tag folded into every axis-draw seed, separating the
#: streams that *choose* random-search parameter values from the streams the
#: cells then *simulate* with (cell ``i`` uses child ``i`` of
#: ``SeedSequence(spec.seed)``). Without the separation, an axis's first
#: draws would be exactly the first random numbers cell 0 consumes.
_AXIS_STREAM = 0x5EED_A7E5


def axis_seed(seed: int, target_index: int | None = None) -> np.random.SeedSequence:
    """The seed for axis value draws: spec seed, axis domain, optional target.

    Spec-level axes use ``axis_seed(spec.seed)`` — drawn once, so a
    spec-level random axis samples the *same* points for every target
    (comparable cells). Target-level axes use ``axis_seed(spec.seed, t)`` —
    independent draws per target, so two targets with same-shaped random
    axes do not duplicate each other's search points.
    """
    entropy = [_AXIS_STREAM, seed] if target_index is None else [_AXIS_STREAM, seed, target_index]
    return np.random.SeedSequence(entropy)


def collect_axis_names(axes: Sequence[Axis]) -> list[str]:
    """Flat parameter names of ``axes``; rejects a name on more than one axis."""
    names: list[str] = []
    for axis in axes:
        for name in axis.names:
            if name in names:
                raise ValueError(f"parameter {name!r} appears on more than one axis")
            names.append(name)
    return names


def expand_axes(
    axes: Sequence[Axis], seed: Any = 0
) -> list[dict[str, Any]]:
    """All parameter assignments of ``axes``: the cartesian product of their blocks.

    Each axis contributes a block of partial assignments (:meth:`points`);
    the expansion is the product over blocks with later axes varying
    fastest, mirroring ``itertools.product``. With no axes the result is
    the single empty assignment, so ``expand_axes`` degrades gracefully to
    "run the target once". Random axes draw from children of ``seed`` —
    the sweep compiler passes :func:`axis_seed` so the draws never share a
    stream with any cell's simulation.

    This is the general form of :func:`repro.analysis.sweep.cartesian_grid`
    (a grid of single-value axes reproduces it exactly).
    """
    collect_axis_names(axes)
    rngs = [np.random.default_rng(child) for child in spawn_seed_sequences(seed, len(axes))]
    blocks = [axis.points(rng) for axis, rng in zip(axes, rngs)]
    out: list[dict[str, Any]] = []
    for combo in itertools.product(*blocks):
        merged: dict[str, Any] = {}
        for part in combo:
            merged.update(part)
        out.append(merged)
    return out


@dataclass(frozen=True)
class TargetSpec:
    """What a sweep cell runs: an experiment or scenario plus fixed overrides.

    ``base`` holds fixed parameter overrides applied to every cell of this
    target (axis parameters override ``base`` on collision); ``axes`` are
    additional axes swept for this target only.
    """

    kind: str
    name: str
    base: Mapping[str, Any] = field(default_factory=dict)
    axes: tuple[Axis, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _TARGET_KINDS:
            raise ValueError(f"unknown target kind {self.kind!r}; known kinds: {list(_TARGET_KINDS)}")
        if not self.name:
            raise ValueError("target needs a non-empty name")
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(self, "axes", tuple(self.axes))

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "base": to_jsonable(self.base),
            "axes": [axis.to_dict() for axis in self.axes],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TargetSpec":
        data = dict(payload)
        return cls(
            kind=data["kind"],
            name=data["name"],
            base=dict(data.get("base", {})),
            axes=tuple(axis_from_dict(axis) for axis in data.get("axes", [])),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A complete, serialisable description of one parameter sweep.

    Attributes
    ----------
    name:
        Sweep identifier; store segments and progress lines carry it.
    targets:
        The experiments/scenarios swept; every target is expanded against
        the spec-level ``axes`` plus its own.
    axes:
        Axes shared by every target.
    seed:
        Root seed. Cell seeds are spawned from it by cell index, so any
        subset of cells (a resumed remainder included) reproduces exactly.
    description:
        Free-form note carried through ``to_dict`` for humans.
    """

    name: str
    targets: tuple[TargetSpec, ...]
    axes: tuple[Axis, ...] = ()
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        # Sweep names become store segment prefixes and cache-key material,
        # so keep them filesystem-safe.
        allowed = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
        if not self.name or set(self.name) - allowed or self.name.startswith("."):
            raise ValueError(
                f"sweep names use [A-Za-z0-9._-] and must not start with '.', got {self.name!r}"
            )
        object.__setattr__(self, "targets", tuple(self.targets))
        object.__setattr__(self, "axes", tuple(self.axes))
        if not self.targets:
            raise ValueError("sweep needs at least one target")
        require_integer(self.seed, "seed")
        for target in self.targets:
            # Surface axis-name collisions (including spec-level vs
            # target-level) at construction, not mid-run.
            collect_axis_names(tuple(self.axes) + tuple(target.axes))

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SWEEP_SPEC_SCHEMA,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "axes": [axis.to_dict() for axis in self.axes],
            "targets": [target.to_dict() for target in self.targets],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        data = dict(payload)
        schema = data.pop("schema", SWEEP_SPEC_SCHEMA)
        if schema != SWEEP_SPEC_SCHEMA:
            raise ValueError(
                f"sweep spec has schema {schema!r}; this build reads schema {SWEEP_SPEC_SCHEMA}"
            )
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            seed=data.get("seed", 0),
            axes=tuple(axis_from_dict(axis) for axis in data.get("axes", [])),
            targets=tuple(TargetSpec.from_dict(target) for target in data["targets"]),
        )


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a CLI shard request ``"i/N"`` into ``(index, count)``.

    ``index`` is zero-based and must satisfy ``0 <= index < count``; shards
    of one sweep use the same ``N`` and together cover every cell exactly
    once (see :func:`shard_cell_indices`).
    """
    index_text, separator, count_text = text.partition("/")
    try:
        if not separator:
            raise ValueError(text)
        index = int(index_text)
        count = int(count_text)
    except ValueError:
        raise ValueError(
            f"shards look like 'i/N' with integers 0 <= i < N, got {text!r}"
        ) from None
    require_integer(count, "shard count", minimum=1)
    require_integer(index, "shard index", minimum=0)
    if index >= count:
        raise ValueError(f"shard index {index} is out of range for {count} shard(s)")
    return index, count


def shard_cell_indices(total: int, index: int, count: int) -> range:
    """The contiguous cell-index slice owned by shard ``index`` of ``count``.

    Balanced partition of ``range(total)``: shard sizes differ by at most
    one, every cell belongs to exactly one shard, and the union over all
    shards is the full range — the property the shard-merge byte-identity
    contract rests on. Cell seeds are untouched by sharding (cell ``i`` is
    always seeded by child ``i`` of the root seed), so which shard runs a
    cell can never change its rows.
    """
    require_integer(total, "total", minimum=0)
    require_integer(count, "shard count", minimum=1)
    require_integer(index, "shard index", minimum=0)
    if index >= count:
        raise ValueError(f"shard index {index} is out of range for {count} shard(s)")
    return range((total * index) // count, (total * (index + 1)) // count)


def load_spec(path: str | Path) -> SweepSpec:
    """Read a :class:`SweepSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except ValueError as error:
            raise ValueError(f"sweep spec {path} is not valid JSON: {error}") from error
    return SweepSpec.from_dict(payload)


def save_spec(spec: SweepSpec, path: str | Path) -> None:
    """Write a :class:`SweepSpec` to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(spec.to_dict(), handle, indent=2, sort_keys=False)
        handle.write("\n")


__all__ = [
    "SWEEP_SPEC_SCHEMA",
    "Axis",
    "GridAxis",
    "ZipAxis",
    "RandomAxis",
    "TargetSpec",
    "SweepSpec",
    "axis_from_dict",
    "axis_seed",
    "collect_axis_names",
    "expand_axes",
    "load_spec",
    "parse_shard",
    "save_spec",
    "shard_cell_indices",
]
