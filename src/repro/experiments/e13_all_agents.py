"""E13 — Section 3.1 remark: simultaneous accuracy of all agents.

Theorem 1 is a per-agent statement; by a union bound, running with
``δ' = δ / n`` makes *every* agent's estimate accurate simultaneously with
probability ``1 - δ``, at only a logarithmic increase in the round budget.
The experiment runs the full population at the union-bound budget and checks
how often the worst agent is still inside the ε band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bounds
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class AllAgentsConfig:
    """Parameters of experiment E13."""

    side: int = 40
    num_agents: int = 320
    epsilon: float = 0.3
    total_delta: float = 0.2
    theorem_constant: float = 0.12
    trials: int = 5
    max_rounds: int = 4000

    @classmethod
    def quick(cls) -> "AllAgentsConfig":
        return cls(side=30, num_agents=180, trials=2, max_rounds=1500)


def _budget_cell(
    side: int,
    num_agents: int,
    rounds: int,
    epsilon: float,
    trials: int,
    *,
    rng: np.random.Generator,
) -> dict[str, float]:
    """One budget: all trials as a single batched kernel simulation."""
    topology = Torus2D(side)
    density = (num_agents - 1) / topology.num_nodes
    batch = run_kernel(topology, SimulationConfig(num_agents=num_agents, rounds=rounds), trials, rng)
    errors = np.abs(batch.estimates() - density) / density  # (trials, n)
    worst = errors.max(axis=1)
    return {
        "mean_worst_agent_error": float(worst.mean()),
        "fraction_of_trials_all_within": float(np.mean(worst <= epsilon)),
        "mean_fraction_of_agents_within": float(np.mean(errors <= epsilon)),
    }


def run(
    config: AllAgentsConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E13 and return the all-agents accuracy table.

    The two round budgets are plan cells, and within a cell all trials run
    as one batched ``(trials, n)`` kernel simulation.
    """
    config = config or AllAgentsConfig()
    engine = engine or ExecutionEngine()
    topology = Torus2D(config.side)
    density = (config.num_agents - 1) / topology.num_nodes

    per_agent = bounds.per_agent_delta(config.total_delta, config.num_agents)
    union_rounds = min(
        config.max_rounds,
        bounds.theorem1_rounds(density, config.epsilon, per_agent, constant=config.theorem_constant),
    )
    single_rounds = min(
        config.max_rounds,
        bounds.theorem1_rounds(
            density, config.epsilon, config.total_delta, constant=config.theorem_constant
        ),
    )

    result = ExperimentResult(
        experiment_id="E13",
        title="Simultaneous accuracy of all agents (union bound)",
        claim=(
            "Section 3.1: with delta' = delta/n the round budget grows only logarithmically "
            "and all n agents are accurate simultaneously"
        ),
        columns=[
            "budget",
            "rounds",
            "mean_worst_agent_error",
            "fraction_of_trials_all_within",
            "mean_fraction_of_agents_within",
        ],
    )

    budgets = (("single_agent_budget", single_rounds), ("union_bound_budget", union_rounds))
    settings = [
        {
            "side": config.side,
            "num_agents": config.num_agents,
            "rounds": rounds,
            "epsilon": config.epsilon,
            "trials": config.trials,
        }
        for _, rounds in budgets
    ]
    cells = engine.map(_budget_cell, settings, seed)
    for (label, rounds), cell in zip(budgets, cells):
        result.add(budget=label, rounds=rounds, **cell)

    result.notes.append(
        f"union-bound budget is {union_rounds} rounds vs {single_rounds} for a single agent "
        "(logarithmic increase)"
    )
    return result


__all__ = ["AllAgentsConfig", "run"]
