"""E13 — Section 3.1 remark: simultaneous accuracy of all agents.

Theorem 1 is a per-agent statement; by a union bound, running with
``δ' = δ / n`` makes *every* agent's estimate accurate simultaneously with
probability ``1 - δ``, at only a logarithmic increase in the round budget.
The experiment runs the full population at the union-bound budget and checks
how often the worst agent is still inside the ε band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bounds
from repro.core.estimator import RandomWalkDensityEstimator
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class AllAgentsConfig:
    """Parameters of experiment E13."""

    side: int = 40
    num_agents: int = 320
    epsilon: float = 0.3
    total_delta: float = 0.2
    theorem_constant: float = 0.12
    trials: int = 5
    max_rounds: int = 4000

    @classmethod
    def quick(cls) -> "AllAgentsConfig":
        return cls(side=30, num_agents=180, trials=2, max_rounds=1500)


def run(config: AllAgentsConfig | None = None, seed: SeedLike = 0) -> ExperimentResult:
    """Run E13 and return the all-agents accuracy table."""
    config = config or AllAgentsConfig()
    topology = Torus2D(config.side)
    density = (config.num_agents - 1) / topology.num_nodes

    per_agent = bounds.per_agent_delta(config.total_delta, config.num_agents)
    union_rounds = min(
        config.max_rounds,
        bounds.theorem1_rounds(density, config.epsilon, per_agent, constant=config.theorem_constant),
    )
    single_rounds = min(
        config.max_rounds,
        bounds.theorem1_rounds(
            density, config.epsilon, config.total_delta, constant=config.theorem_constant
        ),
    )

    result = ExperimentResult(
        experiment_id="E13",
        title="Simultaneous accuracy of all agents (union bound)",
        claim=(
            "Section 3.1: with delta' = delta/n the round budget grows only logarithmically "
            "and all n agents are accurate simultaneously"
        ),
        columns=[
            "budget",
            "rounds",
            "mean_worst_agent_error",
            "fraction_of_trials_all_within",
            "mean_fraction_of_agents_within",
        ],
    )

    rngs = spawn_generators(seed, 2 * config.trials)
    rng_index = 0
    for label, rounds in (("single_agent_budget", single_rounds), ("union_bound_budget", union_rounds)):
        worst_errors = []
        all_within_flags = []
        fractions = []
        for _ in range(config.trials):
            run_result = RandomWalkDensityEstimator(topology, config.num_agents, rounds).run(
                rngs[rng_index]
            )
            rng_index += 1
            errors = run_result.relative_errors()
            worst_errors.append(float(errors.max()))
            all_within_flags.append(bool(errors.max() <= config.epsilon))
            fractions.append(float(np.mean(errors <= config.epsilon)))
        result.add(
            budget=label,
            rounds=rounds,
            mean_worst_agent_error=float(np.mean(worst_errors)),
            fraction_of_trials_all_within=float(np.mean(all_within_flags)),
            mean_fraction_of_agents_within=float(np.mean(fractions)),
        )

    result.notes.append(
        f"union-bound budget is {union_rounds} rounds vs {single_rounds} for a single agent "
        "(logarithmic increase)"
    )
    return result


__all__ = ["AllAgentsConfig", "run"]
