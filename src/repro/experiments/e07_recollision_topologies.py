"""E07 — Lemmas 20/22/23/25: re-collision probability decay per topology.

Each topology analysed in Section 4 comes with its own re-collision
probability bound:

* ring: ``O(1/sqrt(m+1) + 1/A)`` (Lemma 20),
* 2-D torus: ``O(1/(m+1) + 1/A)`` (Lemma 4),
* 3-D torus: ``O(1/(m+1)^{3/2} + 1/A)`` (Lemma 22),
* regular expander: ``λ^m + 1/A`` (Lemma 23),
* hypercube: ``(9/10)^{m-1} + 1/sqrt(A)`` (Lemma 25).

The experiment measures the empirical profile for every topology and, for
the polynomially decaying ones, fits the decay exponent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import fit_power_law
from repro.core import bounds
from repro.experiments.base import ExperimentResult
from repro.topology.expander import RegularExpander
from repro.topology.hypercube import Hypercube
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D
from repro.engine import ExecutionEngine
from repro.topology.torus_kd import TorusKD
from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences
from repro.walks.recollision import recollision_profile


@dataclass(frozen=True)
class RecollisionTopologiesConfig:
    """Parameters of experiment E07."""

    torus_side: int = 100
    ring_size: int = 10000
    torus3d_side: int = 22
    hypercube_dims: int = 12
    expander_size: int = 2000
    expander_degree: int = 4
    max_offset: int = 32
    trials: int = 20000
    fit_offsets: tuple[int, ...] = (2, 4, 8, 16, 32)

    @classmethod
    def quick(cls) -> "RecollisionTopologiesConfig":
        return cls(
            torus_side=50,
            ring_size=2000,
            torus3d_side=12,
            hypercube_dims=10,
            expander_size=500,
            max_offset=16,
            trials=4000,
            fit_offsets=(2, 4, 8, 16),
        )


def _profile_cell(topology, max_offset: int, trials: int, *, rng: np.random.Generator):
    """One cell: the full re-collision profile of one topology (picklable)."""
    return recollision_profile(topology, max_offset, trials=trials, seed=rng)


def run(
    config: RecollisionTopologiesConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E07 and return the per-topology re-collision decay table.

    Each topology's profile measurement is one cell of a single execution
    plan (cell seeds match the legacy per-topology generators, so records
    are unchanged by the migration and identical for any worker count).
    """
    config = config or RecollisionTopologiesConfig()
    engine = engine or ExecutionEngine()
    children = spawn_seed_sequences(seed, 8)
    expander = RegularExpander(
        config.expander_size, config.expander_degree, seed=as_generator(children[0])
    )

    # (topology, expected polynomial exponent or None for geometric decay,
    #  theoretical bound at max_offset)
    cases = [
        (Ring(config.ring_size), -0.5, bounds.recollision_bound_ring(config.max_offset, config.ring_size)),
        (Torus2D(config.torus_side), -1.0, bounds.recollision_bound_torus2d(config.max_offset, config.torus_side**2)),
        (
            TorusKD(config.torus3d_side, 3),
            -1.5,
            bounds.recollision_bound_torus_kd(config.max_offset, config.torus3d_side**3, 3),
        ),
        (
            Hypercube(config.hypercube_dims),
            None,
            bounds.recollision_bound_hypercube(config.max_offset, 2**config.hypercube_dims),
        ),
        (
            expander,
            None,
            bounds.recollision_bound_expander(
                config.max_offset, config.expander_size, expander.second_eigenvalue
            ),
        ),
    ]

    result = ExperimentResult(
        experiment_id="E07",
        title="Re-collision probability decay per topology",
        claim=(
            "Lemmas 20/4/22/23/25: decay exponents ~ -1/2 (ring), -1 (2-D torus), "
            "-3/2 (3-D torus); geometric decay for hypercube and expander"
        ),
        columns=[
            "topology",
            "num_nodes",
            "probability_at_max_offset",
            "theoretical_bound_at_max_offset",
            "fitted_exponent",
            "expected_exponent",
        ],
    )

    settings = [
        {"topology": topology, "max_offset": config.max_offset, "trials": config.trials}
        for topology, _, _ in cases
    ]
    profiles = engine.map(_profile_cell, settings, as_generator(children[1]))
    for (topology, expected_exponent, bound_at_max), profile in zip(cases, profiles):
        offsets = np.array([o for o in config.fit_offsets if o <= config.max_offset], dtype=float)
        probabilities = np.array([profile.probability[int(o)] for o in offsets])
        fitted = float("nan")
        if np.count_nonzero(probabilities > 0) >= 2:
            _, fitted = fit_power_law(offsets + 1.0, np.maximum(probabilities, 1e-12))
        result.add(
            topology=topology.name,
            num_nodes=topology.num_nodes,
            probability_at_max_offset=float(profile.probability[config.max_offset]),
            theoretical_bound_at_max_offset=bound_at_max,
            fitted_exponent=fitted,
            expected_exponent=expected_exponent if expected_exponent is not None else "geometric",
        )

    result.notes.append(
        f"expander second eigenvalue lambda = {expander.second_eigenvalue:.3f} "
        "(enters the Lemma 23 bound)"
    )
    return result


__all__ = ["RecollisionTopologiesConfig", "run"]
