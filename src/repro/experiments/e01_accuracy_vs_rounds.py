"""E01 — Theorem 1: accuracy of Algorithm 1 vs the number of rounds.

The paper's headline claim: on the 2-D torus the empirical ε (the relative
error achieved by a ``1 - δ`` fraction of agents) decays like
``sqrt(log(1/δ)/(t·d)) · log(2t)`` — i.e. essentially as ``t^{-1/2}`` with a
mild logarithmic correction. The experiment sweeps ``t`` at fixed density
and reports the measured ε next to the Theorem 1 prediction (with the
constant fitted on the smallest ``t``) and the pure independent-sampling
prediction of Theorem 32.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.accuracy import empirical_epsilon, fit_power_law
from repro.core import bounds
from repro.core.estimator import RandomWalkDensityEstimator
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class AccuracyVsRoundsConfig:
    """Parameters of experiment E01."""

    side: int = 48
    num_agents: int = 232  # density ~ 0.1 on a 48x48 torus
    rounds_grid: tuple[int, ...] = (25, 50, 100, 200, 400, 800)
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "AccuracyVsRoundsConfig":
        """Scaled-down configuration for tests and benchmarks."""
        return cls(side=32, num_agents=104, rounds_grid=(25, 50, 100), trials=1)


def run(config: AccuracyVsRoundsConfig | None = None, seed: SeedLike = 0) -> ExperimentResult:
    """Run E01 and return the accuracy-vs-rounds table."""
    config = config or AccuracyVsRoundsConfig()
    topology = Torus2D(config.side)
    density = (config.num_agents - 1) / topology.num_nodes
    result = ExperimentResult(
        experiment_id="E01",
        title="Random-walk density estimation accuracy vs rounds (2-D torus)",
        claim=(
            "Theorem 1: empirical epsilon decays ~ sqrt(log(1/delta)/(t d)) * log(2t), "
            "i.e. nearly t^{-1/2}"
        ),
        columns=[
            "rounds",
            "density",
            "empirical_epsilon",
            "theorem1_epsilon",
            "independent_epsilon",
            "mean_estimate",
        ],
    )

    rngs = spawn_generators(seed, len(config.rounds_grid) * config.trials)
    rng_index = 0
    measured: list[float] = []
    for rounds in config.rounds_grid:
        epsilons = []
        mean_estimates = []
        for _ in range(config.trials):
            estimator = RandomWalkDensityEstimator(topology, config.num_agents, rounds)
            run_result = estimator.run(rngs[rng_index])
            rng_index += 1
            epsilons.append(empirical_epsilon(run_result.estimates, density, config.delta))
            mean_estimates.append(run_result.mean_estimate())
        measured.append(float(np.mean(epsilons)))
        result.add(
            rounds=rounds,
            density=density,
            empirical_epsilon=float(np.mean(epsilons)),
            theorem1_epsilon=bounds.theorem1_epsilon(rounds, density, config.delta),
            independent_epsilon=bounds.independent_sampling_epsilon(rounds, density, config.delta),
            mean_estimate=float(np.mean(mean_estimates)),
        )

    # Fit the decay exponent of the measured curve; Theorem 1 predicts ~ -0.5
    # (slightly shallower because of the log factor).
    if len(config.rounds_grid) >= 2:
        _, exponent = fit_power_law(np.array(config.rounds_grid, dtype=float), np.array(measured))
        result.notes.append(
            f"fitted decay exponent of empirical epsilon vs t: {exponent:.3f} "
            "(Theorem 1 predicts about -0.5)"
        )
    return result


__all__ = ["AccuracyVsRoundsConfig", "run"]
