"""E01 — Theorem 1: accuracy of Algorithm 1 vs the number of rounds.

The paper's headline claim: on the 2-D torus the empirical ε (the relative
error achieved by a ``1 - δ`` fraction of agents) decays like
``sqrt(log(1/δ)/(t·d)) · log(2t)`` — i.e. essentially as ``t^{-1/2}`` with a
mild logarithmic correction. The experiment sweeps ``t`` at fixed density
and reports the measured ε next to the Theorem 1 prediction (with the
constant fitted on the smallest ``t``) and the pure independent-sampling
prediction of Theorem 32.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon, fit_power_law
from repro.core import bounds
from repro.core.simulation import SimulationConfig
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_seed_sequences


@dataclass(frozen=True)
class AccuracyVsRoundsConfig:
    """Parameters of experiment E01."""

    side: int = 48
    num_agents: int = 232  # density ~ 0.1 on a 48x48 torus
    rounds_grid: tuple[int, ...] = (25, 50, 100, 200, 400, 800)
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "AccuracyVsRoundsConfig":
        """Scaled-down configuration for tests and benchmarks."""
        return cls(side=32, num_agents=104, rounds_grid=(25, 50, 100), trials=1)


def run(
    config: AccuracyVsRoundsConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E01 and return the accuracy-vs-rounds table.

    The trials at each grid point execute on the engine's batched path: all
    of them advance through the round loop as one ``(trials, n)`` matrix
    simulation, so the per-round NumPy cost is shared across trials.
    """
    config = config or AccuracyVsRoundsConfig()
    engine = engine or ExecutionEngine()
    topology = Torus2D(config.side)
    density = (config.num_agents - 1) / topology.num_nodes
    result = ExperimentResult(
        experiment_id="E01",
        title="Random-walk density estimation accuracy vs rounds (2-D torus)",
        claim=(
            "Theorem 1: empirical epsilon decays ~ sqrt(log(1/delta)/(t d)) * log(2t), "
            "i.e. nearly t^{-1/2}"
        ),
        columns=[
            "rounds",
            "density",
            "empirical_epsilon",
            "theorem1_epsilon",
            "independent_epsilon",
            "mean_estimate",
        ],
    )

    grid_seeds = spawn_seed_sequences(seed, len(config.rounds_grid))
    measured: list[float] = []
    for rounds, grid_seed in zip(config.rounds_grid, grid_seeds):
        batch = engine.run_replicates(
            topology,
            SimulationConfig(num_agents=config.num_agents, rounds=rounds),
            config.trials,
            grid_seed,
        )
        estimates = batch.estimates()
        epsilons = [
            empirical_epsilon(estimates[trial], density, config.delta)
            for trial in range(config.trials)
        ]
        measured.append(float(np.mean(epsilons)))
        result.add(
            rounds=rounds,
            density=density,
            empirical_epsilon=float(np.mean(epsilons)),
            theorem1_epsilon=bounds.theorem1_epsilon(rounds, density, config.delta),
            independent_epsilon=bounds.independent_sampling_epsilon(rounds, density, config.delta),
            mean_estimate=float(estimates.mean()),
        )

    # Fit the decay exponent of the measured curve; Theorem 1 predicts ~ -0.5
    # (slightly shallower because of the log factor).
    if len(config.rounds_grid) >= 2:
        _, exponent = fit_power_law(np.array(config.rounds_grid, dtype=float), np.array(measured))
        result.notes.append(
            f"fitted decay exponent of empirical epsilon vs t: {exponent:.3f} "
            "(Theorem 1 predicts about -0.5)"
        )
    return result


__all__ = ["AccuracyVsRoundsConfig", "run"]
