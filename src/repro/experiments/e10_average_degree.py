"""E10 — Theorem 31: average degree estimation by inverse-degree sampling.

Theorem 31: ``n = Θ(deg / (deg_min · ε² · δ))`` stationary samples give a
``(1 ± ε)`` estimate of ``1/deg`` with probability ``1 - δ``. The experiment
sweeps ε on a skewed-degree graph, uses exactly the sample count the theorem
prescribes, and reports the achieved error — which should sit at or below
the target ε for most settings.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core import bounds
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.netsize.degree import estimate_average_degree
from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class AverageDegreeConfig:
    """Parameters of experiment E10."""

    graph_size: int = 2000
    attachment_edges: int = 3
    epsilons: tuple[float, ...] = (0.3, 0.2, 0.1)
    delta: float = 0.2
    trials: int = 5

    @classmethod
    def quick(cls) -> "AverageDegreeConfig":
        return cls(graph_size=500, epsilons=(0.3, 0.2), trials=2)


def _degree_cell(
    topology: NetworkXTopology, samples: int, *, rng: np.random.Generator
) -> float:
    """One estimation trial at one sample budget (picklable plan cell)."""
    return estimate_average_degree(topology, samples, rng)


def run(
    config: AverageDegreeConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E10 and return the average-degree estimation table.

    Every (epsilon, trial) pair is one cell of a single execution plan
    (cell seeds match the legacy trial generators, so records are unchanged
    by the migration and identical for any worker count).
    """
    config = config or AverageDegreeConfig()
    engine = engine or ExecutionEngine()
    rng = as_generator(seed)
    graph = nx.barabasi_albert_graph(
        config.graph_size, config.attachment_edges, seed=int(rng.integers(0, 2**31 - 1))
    )
    topology = NetworkXTopology(graph, name="barabasi_albert")
    true_average = topology.average_degree

    result = ExperimentResult(
        experiment_id="E10",
        title="Average degree estimation via inverse-degree sampling (Algorithm 3)",
        claim=(
            "Theorem 31: n = Theta(deg / (deg_min eps^2 delta)) stationary samples give a "
            "(1 +/- eps) estimate of the average degree"
        ),
        columns=[
            "target_epsilon",
            "samples",
            "estimate",
            "true_average_degree",
            "median_relative_error",
            "within_target",
        ],
    )

    sample_budgets = [
        bounds.theorem31_samples_required(
            true_average, topology.min_degree, epsilon, config.delta
        )
        for epsilon in config.epsilons
    ]
    settings = [
        {"topology": topology, "samples": samples}
        for samples in sample_budgets
        for _ in range(config.trials)
    ]
    outputs = engine.map(_degree_cell, settings, rng)
    for index, (epsilon, samples) in enumerate(zip(config.epsilons, sample_budgets)):
        estimates = outputs[index * config.trials : (index + 1) * config.trials]
        errors = [abs(estimate - true_average) / true_average for estimate in estimates]
        median_error = float(np.median(errors))
        result.add(
            target_epsilon=epsilon,
            samples=samples,
            estimate=float(np.median(estimates)),
            true_average_degree=true_average,
            median_relative_error=median_error,
            within_target=bool(median_error <= epsilon),
        )
    return result


__all__ = ["AverageDegreeConfig", "run"]
