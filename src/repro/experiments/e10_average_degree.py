"""E10 — Theorem 31: average degree estimation by inverse-degree sampling.

Theorem 31: ``n = Θ(deg / (deg_min · ε² · δ))`` stationary samples give a
``(1 ± ε)`` estimate of ``1/deg`` with probability ``1 - δ``. The experiment
sweeps ε on a skewed-degree graph, uses exactly the sample count the theorem
prescribes, and reports the achieved error — which should sit at or below
the target ε for most settings.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core import bounds
from repro.experiments.base import ExperimentResult
from repro.netsize.degree import estimate_average_degree
from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator, spawn_generators


@dataclass(frozen=True)
class AverageDegreeConfig:
    """Parameters of experiment E10."""

    graph_size: int = 2000
    attachment_edges: int = 3
    epsilons: tuple[float, ...] = (0.3, 0.2, 0.1)
    delta: float = 0.2
    trials: int = 5

    @classmethod
    def quick(cls) -> "AverageDegreeConfig":
        return cls(graph_size=500, epsilons=(0.3, 0.2), trials=2)


def run(config: AverageDegreeConfig | None = None, seed: SeedLike = 0) -> ExperimentResult:
    """Run E10 and return the average-degree estimation table."""
    config = config or AverageDegreeConfig()
    rng = as_generator(seed)
    graph = nx.barabasi_albert_graph(
        config.graph_size, config.attachment_edges, seed=int(rng.integers(0, 2**31 - 1))
    )
    topology = NetworkXTopology(graph, name="barabasi_albert")
    true_average = topology.average_degree

    result = ExperimentResult(
        experiment_id="E10",
        title="Average degree estimation via inverse-degree sampling (Algorithm 3)",
        claim=(
            "Theorem 31: n = Theta(deg / (deg_min eps^2 delta)) stationary samples give a "
            "(1 +/- eps) estimate of the average degree"
        ),
        columns=[
            "target_epsilon",
            "samples",
            "estimate",
            "true_average_degree",
            "median_relative_error",
            "within_target",
        ],
    )

    trial_rngs = spawn_generators(rng, len(config.epsilons) * config.trials)
    rng_index = 0
    for epsilon in config.epsilons:
        samples = bounds.theorem31_samples_required(
            true_average, topology.min_degree, epsilon, config.delta
        )
        errors = []
        estimates = []
        for _ in range(config.trials):
            estimate = estimate_average_degree(topology, samples, trial_rngs[rng_index])
            rng_index += 1
            estimates.append(estimate)
            errors.append(abs(estimate - true_average) / true_average)
        median_error = float(np.median(errors))
        result.add(
            target_epsilon=epsilon,
            samples=samples,
            estimate=float(np.median(estimates)),
            true_average_degree=true_average,
            median_relative_error=median_error,
            within_target=bool(median_error <= epsilon),
        )
    return result


__all__ = ["AverageDegreeConfig", "run"]
