"""E20 — Section 2 modelling choice: torus vs bounded grid boundary effects.

The paper adopts the torus "while avoiding complicating factors of boundary
behavior on a finite grid". This ablation quantifies those factors on a
bounded grid with reflecting boundaries (blocked moves become self-loops):
the chain stays doubly stochastic, so the estimator remains *unbiased*, but
agents near the boundary waste steps on blocked moves, local mixing weakens
there, and the empirical ε is mildly worse than on a torus of the same size.
The torus model is therefore a faithful idealisation of a large arena — the
boundary costs accuracy, not correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.bounded_grid import BoundedGrid
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class BoundaryEffectsConfig:
    """Parameters of experiment E20."""

    sides: tuple[int, ...] = (16, 32, 64)
    target_density: float = 0.1
    rounds: int = 300
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "BoundaryEffectsConfig":
        return cls(sides=(16, 32), rounds=120, trials=1)


def _boundary_cell(
    topology,
    num_agents: int,
    rounds: int,
    delta: float,
    trials: int,
    *,
    rng: np.random.Generator,
) -> dict[str, float]:
    """One (side, topology) point: all trials as one batched kernel simulation."""
    density = (num_agents - 1) / topology.num_nodes
    batch = run_kernel(
        topology, SimulationConfig(num_agents=num_agents, rounds=rounds), trials, rng
    )
    estimates = batch.estimates()  # (trials, n)
    return {
        "mean_estimate": float(estimates.mean()),
        "empirical_epsilon": float(
            np.mean([empirical_epsilon(row, density, delta) for row in estimates])
        ),
    }


def run(
    config: BoundaryEffectsConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E20 and return the torus-vs-bounded-grid comparison table.

    Each (side, topology) point is one plan cell, and within a cell all
    trials run as one batched ``(trials, n)`` kernel simulation.
    """
    config = config or BoundaryEffectsConfig()
    engine = engine or ExecutionEngine()
    result = ExperimentResult(
        experiment_id="E20",
        title="Boundary effects: torus vs bounded grid with reflecting boundaries",
        claim=(
            "Section 2 modelling choice: on a bounded grid the estimator stays unbiased "
            "(the reflecting chain is doubly stochastic) and boundary behaviour shows up "
            "only as a mild accuracy penalty relative to the torus"
        ),
        columns=[
            "side",
            "topology",
            "mean_estimate",
            "true_density",
            "relative_bias",
            "empirical_epsilon",
        ],
    )

    points = [
        (side, topology)
        for side in config.sides
        for topology in (Torus2D(side), BoundedGrid(side))
    ]
    settings = []
    for _, topology in points:
        num_agents = max(2, int(round(config.target_density * topology.num_nodes)) + 1)
        settings.append(
            {
                "topology": topology,
                "num_agents": num_agents,
                "rounds": config.rounds,
                "delta": config.delta,
                "trials": config.trials,
            }
        )
    cells = engine.map(_boundary_cell, settings, seed)

    epsilon_by_side: dict[int, dict[str, float]] = {side: {} for side in config.sides}
    for (side, topology), setting, cell in zip(points, settings, cells):
        density = (setting["num_agents"] - 1) / topology.num_nodes
        mean_estimate = cell["mean_estimate"]
        epsilon_value = cell["empirical_epsilon"]
        epsilon_by_side[side][topology.name] = epsilon_value
        result.add(
            side=side,
            topology=topology.name,
            mean_estimate=mean_estimate,
            true_density=density,
            relative_bias=(mean_estimate - density) / density,
            empirical_epsilon=epsilon_value,
        )

    penalties = []
    for side in config.sides:
        values = epsilon_by_side[side]
        if "torus2d" in values and "bounded_grid" in values and values["torus2d"] > 0:
            penalties.append(f"{side}: x{values['bounded_grid'] / values['torus2d']:.2f}")
    if penalties:
        result.notes.append(
            "bounded-grid epsilon relative to the torus (accuracy penalty of the boundary): "
            + ", ".join(penalties)
        )
    return result


__all__ = ["BoundaryEffectsConfig", "run"]
