"""E20 — Section 2 modelling choice: torus vs bounded grid boundary effects.

The paper adopts the torus "while avoiding complicating factors of boundary
behavior on a finite grid". This ablation quantifies those factors on a
bounded grid with reflecting boundaries (blocked moves become self-loops):
the chain stays doubly stochastic, so the estimator remains *unbiased*, but
agents near the boundary waste steps on blocked moves, local mixing weakens
there, and the empirical ε is mildly worse than on a torus of the same size.
The torus model is therefore a faithful idealisation of a large arena — the
boundary costs accuracy, not correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon
from repro.core.estimator import RandomWalkDensityEstimator
from repro.experiments.base import ExperimentResult
from repro.topology.bounded_grid import BoundedGrid
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class BoundaryEffectsConfig:
    """Parameters of experiment E20."""

    sides: tuple[int, ...] = (16, 32, 64)
    target_density: float = 0.1
    rounds: int = 300
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "BoundaryEffectsConfig":
        return cls(sides=(16, 32), rounds=120, trials=1)


def run(config: BoundaryEffectsConfig | None = None, seed: SeedLike = 0) -> ExperimentResult:
    """Run E20 and return the torus-vs-bounded-grid comparison table."""
    config = config or BoundaryEffectsConfig()
    result = ExperimentResult(
        experiment_id="E20",
        title="Boundary effects: torus vs bounded grid with reflecting boundaries",
        claim=(
            "Section 2 modelling choice: on a bounded grid the estimator stays unbiased "
            "(the reflecting chain is doubly stochastic) and boundary behaviour shows up "
            "only as a mild accuracy penalty relative to the torus"
        ),
        columns=[
            "side",
            "topology",
            "mean_estimate",
            "true_density",
            "relative_bias",
            "empirical_epsilon",
        ],
    )

    rngs = spawn_generators(seed, 2 * len(config.sides) * config.trials)
    rng_index = 0
    epsilon_by_side: dict[int, dict[str, float]] = {side: {} for side in config.sides}
    for side in config.sides:
        for topology in (Torus2D(side), BoundedGrid(side)):
            num_agents = max(2, int(round(config.target_density * topology.num_nodes)) + 1)
            density = (num_agents - 1) / topology.num_nodes
            means = []
            epsilons = []
            for _ in range(config.trials):
                run_result = RandomWalkDensityEstimator(
                    topology, num_agents, config.rounds
                ).run(rngs[rng_index])
                rng_index += 1
                means.append(run_result.mean_estimate())
                epsilons.append(empirical_epsilon(run_result.estimates, density, config.delta))
            mean_estimate = float(np.mean(means))
            bias = (mean_estimate - density) / density
            epsilon_value = float(np.mean(epsilons))
            epsilon_by_side[side][topology.name] = epsilon_value
            result.add(
                side=side,
                topology=topology.name,
                mean_estimate=mean_estimate,
                true_density=density,
                relative_bias=bias,
                empirical_epsilon=epsilon_value,
            )

    penalties = []
    for side in config.sides:
        values = epsilon_by_side[side]
        if "torus2d" in values and "bounded_grid" in values and values["torus2d"] > 0:
            penalties.append(f"{side}: x{values['bounded_grid'] / values['torus2d']:.2f}")
    if penalties:
        result.notes.append(
            "bounded-grid epsilon relative to the torus (accuracy penalty of the boundary): "
            + ", ".join(penalties)
        )
    return result


__all__ = ["BoundaryEffectsConfig", "run"]
