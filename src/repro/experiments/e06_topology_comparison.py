"""E06 — Section 4: density estimation accuracy across topologies.

The paper's Section 4 analysis predicts an ordering of topologies by local
mixing strength: at equal budgets, estimation is hardest on the ring
(Theorem 21: ``t`` quadratic in ``1/(dε²)``), noticeably easier on the 2-D
torus (Theorem 1), and essentially as easy as independent sampling on 3-D
tori, hypercubes, expanders, and the complete graph. The experiment measures
the empirical ε for every topology at the same ``(d, t)`` and verifies the
ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.complete import CompleteGraph
from repro.topology.expander import RegularExpander
from repro.topology.hypercube import Hypercube
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D
from repro.topology.torus_kd import TorusKD
from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences


@dataclass(frozen=True)
class TopologyComparisonConfig:
    """Parameters of experiment E06.

    The node counts are chosen to be as close as possible across topologies
    (~2000–2700 nodes) so the same agent count yields comparable densities.
    """

    torus_side: int = 50
    ring_size: int = 2500
    torus3d_side: int = 14
    hypercube_dims: int = 11
    expander_size: int = 2500
    expander_degree: int = 4
    target_density: float = 0.1
    rounds: int = 200
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "TopologyComparisonConfig":
        return cls(
            torus_side=30,
            ring_size=900,
            torus3d_side=10,
            hypercube_dims=10,
            expander_size=900,
            rounds=100,
            trials=1,
        )


def _topologies(config: TopologyComparisonConfig, seed: SeedLike):
    yield Torus2D(config.torus_side)
    yield Ring(config.ring_size)
    yield TorusKD(config.torus3d_side, 3)
    yield Hypercube(config.hypercube_dims)
    yield RegularExpander(config.expander_size, config.expander_degree, seed=seed)
    yield CompleteGraph(config.torus_side**2)


def _accuracy_cell(
    topology, num_agents: int, rounds: int, delta: float, *, rng: np.random.Generator
) -> dict[str, float]:
    """One Algorithm 1 trial on one topology (stream-identical to the legacy loop)."""
    outcome = run_kernel(topology, SimulationConfig(num_agents=num_agents, rounds=rounds), None, rng)
    estimates = outcome.estimates()
    true_density = (num_agents - 1) / topology.num_nodes
    return {
        "epsilon": empirical_epsilon(estimates, true_density, delta),
        "mean": float(estimates.mean()),
    }


def run(
    config: TopologyComparisonConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E06 and return the per-topology accuracy table.

    Every (topology, trial) pair is one cell of a single execution plan
    (cell seeds match the legacy trial generators, so records are unchanged
    by the migration and identical for any worker count).
    """
    config = config or TopologyComparisonConfig()
    engine = engine or ExecutionEngine()
    result = ExperimentResult(
        experiment_id="E06",
        title="Density estimation accuracy across topologies at equal (d, t)",
        claim=(
            "Section 4: ring is worst (weak local mixing), 2-D torus close to the "
            "fast-mixing topologies, 3-D torus / hypercube / expander / complete graph "
            "match independent sampling"
        ),
        columns=[
            "topology",
            "num_nodes",
            "num_agents",
            "true_density",
            "empirical_epsilon",
            "mean_estimate",
        ],
    )

    children = spawn_seed_sequences(seed, 16)
    topologies = list(_topologies(config, as_generator(children[0])))
    agent_counts = [
        max(2, int(round(config.target_density * topology.num_nodes)) + 1)
        for topology in topologies
    ]
    settings = [
        {
            "topology": topology,
            "num_agents": num_agents,
            "rounds": config.rounds,
            "delta": config.delta,
        }
        for topology, num_agents in zip(topologies, agent_counts)
        for _ in range(config.trials)
    ]
    cells = engine.map(_accuracy_cell, settings, as_generator(children[1]))

    epsilons_by_name: dict[str, float] = {}
    for index, (topology, num_agents) in enumerate(zip(topologies, agent_counts)):
        true_density = (num_agents - 1) / topology.num_nodes
        rows = cells[index * config.trials : (index + 1) * config.trials]
        value = float(np.mean([row["epsilon"] for row in rows]))
        epsilons_by_name[topology.name] = value
        result.add(
            topology=topology.name,
            num_nodes=topology.num_nodes,
            num_agents=num_agents,
            true_density=true_density,
            empirical_epsilon=value,
            mean_estimate=float(np.mean([row["mean"] for row in rows])),
        )

    ring_eps = epsilons_by_name.get("ring")
    torus_eps = epsilons_by_name.get("torus2d")
    complete_eps = epsilons_by_name.get("complete")
    if ring_eps and torus_eps and complete_eps:
        result.notes.append(
            f"ring/complete epsilon ratio: {ring_eps / complete_eps:.2f}; "
            f"torus2d/complete epsilon ratio: {torus_eps / complete_eps:.2f} "
            "(paper: ring much worse, torus only poly-log worse)"
        )
    return result


__all__ = ["TopologyComparisonConfig", "run"]
