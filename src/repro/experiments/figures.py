"""Plain-text "figures" for experiment results.

The paper's evaluation would normally be presented as log-log plots (error
vs rounds, re-collision probability vs offset, B(t) growth curves, ...).
This module renders those series as ASCII charts so the figures can be
regenerated in any terminal, with no plotting dependency, directly from an
:class:`~repro.experiments.base.ExperimentResult`.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.base import ExperimentResult


def ascii_chart(
    x: Sequence[float],
    y: Sequence[float],
    *,
    width: int = 60,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Render a single series as an ASCII scatter chart.

    Points with non-positive coordinates are dropped when the corresponding
    axis is logarithmic.
    """
    pairs = [(float(a), float(b)) for a, b in zip(x, y)]
    if log_x:
        pairs = [(a, b) for a, b in pairs if a > 0]
    if log_y:
        pairs = [(a, b) for a, b in pairs if b > 0]
    if len(pairs) == 0:
        return "(no plottable points)"
    if width < 10 or height < 4:
        raise ValueError("width must be >= 10 and height >= 4")

    def tx(value: float) -> float:
        return math.log10(value) if log_x else value

    def ty(value: float) -> float:
        return math.log10(value) if log_y else value

    xs = [tx(a) for a, _ in pairs]
    ys = [ty(b) for _, b in pairs]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x_value, y_value in zip(xs, ys):
        column = int(round((x_value - x_min) / x_span * (width - 1)))
        row = int(round((y_value - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    axis_note = []
    if log_x:
        axis_note.append("log x")
    if log_y:
        axis_note.append("log y")
    if axis_note:
        lines.append("(" + ", ".join(axis_note) + ")")
    top_label = f"{y_label} max={max(b for _, b in pairs):.4g}"
    bottom_label = f"{y_label} min={min(b for _, b in pairs):.4g}"
    lines.append(top_label)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(bottom_label)
    lines.append(
        f"{x_label}: {min(a for a, _ in pairs):.4g} .. {max(a for a, _ in pairs):.4g}"
    )
    return "\n".join(lines)


def figure_from_result(
    result: ExperimentResult,
    x_column: str,
    y_column: str,
    *,
    log_x: bool = False,
    log_y: bool = False,
    width: int = 60,
    height: int = 16,
) -> str:
    """Render one column pair of an experiment result as an ASCII figure."""
    x = result.column(x_column)
    y = result.column(y_column)
    return ascii_chart(
        x,
        y,
        width=width,
        height=height,
        log_x=log_x,
        log_y=log_y,
        title=f"[{result.experiment_id}] {y_column} vs {x_column}",
        x_label=x_column,
        y_label=y_column,
    )


#: Default figure recipe per experiment id: (x column, y column, log_x, log_y).
DEFAULT_FIGURES: dict[str, tuple[str, str, bool, bool]] = {
    "E01": ("rounds", "empirical_epsilon", True, True),
    "E02": ("true_density", "empirical_epsilon", True, True),
    "E03": ("offset", "recollision_probability", True, True),
    "E05": ("rounds", "ratio", False, False),
    "E11": ("burn_in_steps", "median_relative_error", False, False),
    "E12": ("rounds", "median_relative_error", True, False),
    "E16": ("steps", "token_mean_error", True, True),
}


def default_figure(result: ExperimentResult) -> str | None:
    """The standard figure for an experiment, if one is defined."""
    recipe = DEFAULT_FIGURES.get(result.experiment_id)
    if recipe is None:
        return None
    x_column, y_column, log_x, log_y = recipe
    return figure_from_result(result, x_column, y_column, log_x=log_x, log_y=log_y)


__all__ = ["ascii_chart", "figure_from_result", "default_figure", "DEFAULT_FIGURES"]
