"""E14 — Section 6.1 extension: robustness to noisy collision detection.

The paper proposes (as future work) modelling missed and spurious collision
detections. Because both act linearly on the expected encounter rate, the
bias they introduce is removable in closed form. The experiment sweeps the
miss probability and the spurious-detection rate and reports the error of
the raw estimate and of the bias-corrected estimate — showing the estimator
degrades gracefully and the correction restores accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon
from repro.core.estimator import RandomWalkDensityEstimator
from repro.experiments.base import ExperimentResult
from repro.swarm.noise import NoisyCollisionModel, correct_noisy_estimate
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class NoiseAblationConfig:
    """Parameters of experiment E14."""

    side: int = 40
    num_agents: int = 320
    rounds: int = 300
    miss_probabilities: tuple[float, ...] = (0.0, 0.2, 0.5)
    spurious_rates: tuple[float, ...] = (0.0, 0.05)
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "NoiseAblationConfig":
        return cls(
            side=30,
            num_agents=180,
            rounds=120,
            miss_probabilities=(0.0, 0.3),
            spurious_rates=(0.0, 0.05),
            trials=1,
        )


def run(config: NoiseAblationConfig | None = None, seed: SeedLike = 0) -> ExperimentResult:
    """Run E14 and return the noise-robustness table."""
    config = config or NoiseAblationConfig()
    topology = Torus2D(config.side)
    density = (config.num_agents - 1) / topology.num_nodes

    result = ExperimentResult(
        experiment_id="E14",
        title="Noisy collision detection: raw vs bias-corrected estimates",
        claim=(
            "Section 6.1 extension: missed/spurious detections bias the raw encounter rate "
            "predictably; the closed-form correction restores an accurate estimate"
        ),
        columns=[
            "miss_probability",
            "spurious_rate",
            "raw_mean_estimate",
            "raw_epsilon",
            "corrected_mean_estimate",
            "corrected_epsilon",
            "true_density",
        ],
    )

    settings = [
        (miss, spurious)
        for miss in config.miss_probabilities
        for spurious in config.spurious_rates
    ]
    rngs = spawn_generators(seed, len(settings) * config.trials)
    rng_index = 0
    for miss, spurious in settings:
        model = NoisyCollisionModel(miss_probability=miss, spurious_rate=spurious)
        raw_means, raw_eps, corr_means, corr_eps = [], [], [], []
        for _ in range(config.trials):
            estimator = RandomWalkDensityEstimator(
                topology, config.num_agents, config.rounds, collision_model=model
            )
            run_result = estimator.run(rngs[rng_index])
            rng_index += 1
            raw = run_result.estimates
            corrected = np.asarray(correct_noisy_estimate(raw, model))
            raw_means.append(float(raw.mean()))
            corr_means.append(float(corrected.mean()))
            raw_eps.append(empirical_epsilon(raw, density, config.delta))
            corr_eps.append(empirical_epsilon(corrected, density, config.delta))
        result.add(
            miss_probability=miss,
            spurious_rate=spurious,
            raw_mean_estimate=float(np.mean(raw_means)),
            raw_epsilon=float(np.mean(raw_eps)),
            corrected_mean_estimate=float(np.mean(corr_means)),
            corrected_epsilon=float(np.mean(corr_eps)),
            true_density=density,
        )

    result.notes.append(
        "raw estimates are biased once noise is present; corrected estimates recentre on the truth"
    )
    return result


__all__ = ["NoiseAblationConfig", "run"]
