"""E14 — Section 6.1 extension: robustness to noisy collision detection.

The paper proposes (as future work) modelling missed and spurious collision
detections. Because both act linearly on the expected encounter rate, the
bias they introduce is removable in closed form. The experiment sweeps the
miss probability and the spurious-detection rate and reports the error of
the raw estimate and of the bias-corrected estimate — showing the estimator
degrades gracefully and the correction restores accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.swarm.noise import NoisyCollisionModel, correct_noisy_estimate
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class NoiseAblationConfig:
    """Parameters of experiment E14."""

    side: int = 40
    num_agents: int = 320
    rounds: int = 300
    miss_probabilities: tuple[float, ...] = (0.0, 0.2, 0.5)
    spurious_rates: tuple[float, ...] = (0.0, 0.05)
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "NoiseAblationConfig":
        return cls(
            side=30,
            num_agents=180,
            rounds=120,
            miss_probabilities=(0.0, 0.3),
            spurious_rates=(0.0, 0.05),
            trials=1,
        )


def _noise_cell(
    side: int,
    num_agents: int,
    rounds: int,
    miss: float,
    spurious: float,
    delta: float,
    trials: int,
    *,
    rng: np.random.Generator,
) -> dict[str, float]:
    """One noise setting: all trials as a single batched kernel simulation."""
    topology = Torus2D(side)
    density = (num_agents - 1) / topology.num_nodes
    model = NoisyCollisionModel(miss_probability=miss, spurious_rate=spurious)
    batch = run_kernel(
        topology,
        SimulationConfig(num_agents=num_agents, rounds=rounds, collision_model=model),
        trials,
        rng,
    )
    raw = batch.estimates()  # (trials, n)
    corrected = np.asarray(correct_noisy_estimate(raw, model))
    return {
        "miss_probability": miss,
        "spurious_rate": spurious,
        "raw_mean_estimate": float(raw.mean()),
        "raw_epsilon": float(
            np.mean([empirical_epsilon(row, density, delta) for row in raw])
        ),
        "corrected_mean_estimate": float(corrected.mean()),
        "corrected_epsilon": float(
            np.mean([empirical_epsilon(row, density, delta) for row in corrected])
        ),
        "true_density": density,
    }


def run(
    config: NoiseAblationConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E14 and return the noise-robustness table.

    Each (miss, spurious) setting is one plan cell, and within a cell all
    trials run as one batched ``(trials, n)`` kernel simulation (the noise
    model is elementwise, hence batch-safe).
    """
    config = config or NoiseAblationConfig()
    engine = engine or ExecutionEngine()

    result = ExperimentResult(
        experiment_id="E14",
        title="Noisy collision detection: raw vs bias-corrected estimates",
        claim=(
            "Section 6.1 extension: missed/spurious detections bias the raw encounter rate "
            "predictably; the closed-form correction restores an accurate estimate"
        ),
        columns=[
            "miss_probability",
            "spurious_rate",
            "raw_mean_estimate",
            "raw_epsilon",
            "corrected_mean_estimate",
            "corrected_epsilon",
            "true_density",
        ],
    )

    settings = [
        {
            "side": config.side,
            "num_agents": config.num_agents,
            "rounds": config.rounds,
            "miss": miss,
            "spurious": spurious,
            "delta": config.delta,
            "trials": config.trials,
        }
        for miss in config.miss_probabilities
        for spurious in config.spurious_rates
    ]
    for record in engine.map(_noise_cell, settings, seed):
        result.add(**record)

    result.notes.append(
        "raw estimates are biased once noise is present; corrected estimates recentre on the truth"
    )
    return result


__all__ = ["NoiseAblationConfig", "run"]
