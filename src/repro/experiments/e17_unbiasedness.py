"""E17 — Lemma 2 / Corollary 3: the encounter rate is an unbiased estimator.

On any regular topology the expected encounter rate equals the density
exactly. The experiment averages the estimates of all agents over several
independent runs on each topology and reports the relative bias, which
should shrink towards zero as the number of averaged samples grows (it is a
sampling-error effect only — there is no systematic bias).
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.simulation import SimulationConfig
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.complete import CompleteGraph
from repro.topology.hypercube import Hypercube
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D
from repro.topology.torus_kd import TorusKD
from repro.utils.rng import SeedLike, spawn_seed_sequences


@dataclass(frozen=True)
class UnbiasednessConfig:
    """Parameters of experiment E17."""

    target_density: float = 0.1
    rounds: int = 100
    trials: int = 5
    torus_side: int = 40
    ring_size: int = 1600
    torus3d_side: int = 12
    hypercube_dims: int = 10

    @classmethod
    def quick(cls) -> "UnbiasednessConfig":
        return cls(rounds=50, trials=2, torus_side=30, ring_size=900, torus3d_side=10)


def run(
    config: UnbiasednessConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E17 and return the per-topology bias table.

    The independent trials on each topology run on the engine's batched
    path as one ``(trials, n)`` matrix simulation.
    """
    config = config or UnbiasednessConfig()
    engine = engine or ExecutionEngine()
    topologies = [
        Torus2D(config.torus_side),
        Ring(config.ring_size),
        TorusKD(config.torus3d_side, 3),
        Hypercube(config.hypercube_dims),
        CompleteGraph(config.torus_side**2),
    ]

    result = ExperimentResult(
        experiment_id="E17",
        title="Unbiasedness of the encounter-rate estimator across topologies",
        claim="Lemma 2 / Corollary 3: E[d~] = d exactly on every regular topology",
        columns=[
            "topology",
            "true_density",
            "grand_mean_estimate",
            "relative_bias",
            "samples_averaged",
        ],
    )

    topology_seeds = spawn_seed_sequences(seed, len(topologies))
    for topology, topology_seed in zip(topologies, topology_seeds):
        num_agents = max(2, int(round(config.target_density * topology.num_nodes)) + 1)
        true_density = (num_agents - 1) / topology.num_nodes
        batch = engine.run_replicates(
            topology,
            SimulationConfig(num_agents=num_agents, rounds=config.rounds),
            config.trials,
            topology_seed,
        )
        stacked = batch.estimates().reshape(-1)
        grand_mean = float(stacked.mean())
        result.add(
            topology=topology.name,
            true_density=true_density,
            grand_mean_estimate=grand_mean,
            relative_bias=(grand_mean - true_density) / true_density,
            samples_averaged=int(stacked.size),
        )

    result.notes.append("relative_bias is pure sampling noise; it carries no systematic sign")
    return result


__all__ = ["UnbiasednessConfig", "run"]
