"""E15 — Section 6.1 extension: non-uniform initial placement.

The uniform-placement assumption is what lets local measurements reflect the
global density. The experiment compares uniform placement against clustered
placements (a fraction of the agents packed into a small disc, or everyone
in one Gaussian blob) and shows how the per-agent estimates spread out —
agents inside a cluster grossly over-estimate and far-away agents
under-estimate the global density, exactly the failure mode Section 6.1
describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimator import RandomWalkDensityEstimator
from repro.experiments.base import ExperimentResult
from repro.swarm.placement import clustered_placement, gaussian_blob_placement
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class NonuniformPlacementConfig:
    """Parameters of experiment E15."""

    side: int = 48
    num_agents: int = 232
    rounds: int = 300
    cluster_fraction: float = 0.8
    cluster_radius: int = 3
    blob_spread: float = 3.0
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "NonuniformPlacementConfig":
        return cls(side=32, num_agents=104, rounds=120, trials=1)


def run(
    config: NonuniformPlacementConfig | None = None, seed: SeedLike = 0
) -> ExperimentResult:
    """Run E15 and return the placement-sensitivity table."""
    config = config or NonuniformPlacementConfig()
    topology = Torus2D(config.side)
    density = (config.num_agents - 1) / topology.num_nodes

    placements = {
        "uniform": None,
        "clustered_80pct": clustered_placement(config.cluster_fraction, config.cluster_radius),
        "gaussian_blob": gaussian_blob_placement(config.blob_spread),
    }

    result = ExperimentResult(
        experiment_id="E15",
        title="Density estimation under non-uniform initial placement",
        claim=(
            "Section 6.1: without uniform placement, per-agent estimates of the *global* "
            "density spread out dramatically (clustered agents over-estimate, isolated "
            "agents under-estimate)"
        ),
        columns=[
            "placement",
            "mean_estimate",
            "true_density",
            "median_relative_error",
            "p90_relative_error",
            "estimate_spread",
        ],
    )

    rngs = spawn_generators(seed, len(placements) * config.trials)
    rng_index = 0
    for name, placement in placements.items():
        medians, p90s, means, spreads = [], [], [], []
        for _ in range(config.trials):
            estimator = RandomWalkDensityEstimator(
                topology, config.num_agents, config.rounds, placement=placement
            )
            run_result = estimator.run(rngs[rng_index])
            rng_index += 1
            errors = run_result.relative_errors()
            medians.append(float(np.median(errors)))
            p90s.append(float(np.quantile(errors, 0.9)))
            means.append(run_result.mean_estimate())
            spreads.append(float(run_result.estimates.std()))
        result.add(
            placement=name,
            mean_estimate=float(np.mean(means)),
            true_density=density,
            median_relative_error=float(np.mean(medians)),
            p90_relative_error=float(np.mean(p90s)),
            estimate_spread=float(np.mean(spreads)),
        )

    result.notes.append(
        "the clustered placements should show much larger p90 errors and estimate spread "
        "than the uniform placement"
    )
    return result


__all__ = ["NonuniformPlacementConfig", "run"]
