"""E15 — Section 6.1 extension: non-uniform initial placement.

The uniform-placement assumption is what lets local measurements reflect the
global density. The experiment compares uniform placement against clustered
placements (a fraction of the agents packed into a small disc, or everyone
in one Gaussian blob) and shows how the per-agent estimates spread out —
agents inside a cluster grossly over-estimate and far-away agents
under-estimate the global density, exactly the failure mode Section 6.1
describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.simulation import SimulationConfig
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.swarm.placement import clustered_placement, gaussian_blob_placement
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_seed_sequences


@dataclass(frozen=True)
class NonuniformPlacementConfig:
    """Parameters of experiment E15."""

    side: int = 48
    num_agents: int = 232
    rounds: int = 300
    cluster_fraction: float = 0.8
    cluster_radius: int = 3
    blob_spread: float = 3.0
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "NonuniformPlacementConfig":
        return cls(side=32, num_agents=104, rounds=120, trials=1)


def run(
    config: NonuniformPlacementConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E15 and return the placement-sensitivity table.

    All trials of one placement run as a single batched ``(trials, n)``
    kernel simulation through the engine. The placement functions are
    closures (not picklable), so the batched cells execute in-process —
    the records are therefore trivially identical for any worker count.
    """
    config = config or NonuniformPlacementConfig()
    engine = engine or ExecutionEngine()
    topology = Torus2D(config.side)
    density = (config.num_agents - 1) / topology.num_nodes

    placements = {
        "uniform": None,
        "clustered_80pct": clustered_placement(config.cluster_fraction, config.cluster_radius),
        "gaussian_blob": gaussian_blob_placement(config.blob_spread),
    }

    result = ExperimentResult(
        experiment_id="E15",
        title="Density estimation under non-uniform initial placement",
        claim=(
            "Section 6.1: without uniform placement, per-agent estimates of the *global* "
            "density spread out dramatically (clustered agents over-estimate, isolated "
            "agents under-estimate)"
        ),
        columns=[
            "placement",
            "mean_estimate",
            "true_density",
            "median_relative_error",
            "p90_relative_error",
            "estimate_spread",
        ],
    )

    placement_seeds = spawn_seed_sequences(seed, len(placements))
    for (name, placement), placement_seed in zip(placements.items(), placement_seeds):
        batch = engine.run_replicates(
            topology,
            SimulationConfig(
                num_agents=config.num_agents, rounds=config.rounds, placement=placement
            ),
            config.trials,
            placement_seed,
        )
        estimates = batch.estimates()  # (trials, n)
        errors = np.abs(estimates - density) / density
        result.add(
            placement=name,
            mean_estimate=float(estimates.mean()),
            true_density=density,
            median_relative_error=float(np.mean(np.median(errors, axis=1))),
            p90_relative_error=float(np.mean(np.quantile(errors, 0.9, axis=1))),
            estimate_spread=float(np.mean(estimates.std(axis=1))),
        )

    result.notes.append(
        "the clustered placements should show much larger p90 errors and estimate spread "
        "than the uniform placement"
    )
    return result


__all__ = ["NonuniformPlacementConfig", "run"]
