"""Markdown report generation for the experiment suite.

``EXPERIMENTS.md`` at the repository root is produced by running the full
experiment suite and rendering each result with :func:`result_to_markdown`.
The same machinery is available programmatically so users can regenerate the
report after changing configurations::

    from repro.experiments.report import generate_report
    text = generate_report(quick=False, seed=0)
    pathlib.Path("EXPERIMENTS.md").write_text(text)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.base import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import ExecutionEngine
    from repro.store import ResultStore


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return format(value, ".4g")
    return str(value)


def records_to_markdown_table(
    records: Iterable[Mapping[str, Any]], columns: list[str] | None = None
) -> str:
    """Render dict records as a GitHub-flavoured markdown table."""
    records = list(records)
    if not records:
        return "_(no rows)_"
    cols = columns or list(records[0].keys())
    header = "| " + " | ".join(cols) + " |"
    separator = "| " + " | ".join("---" for _ in cols) + " |"
    rows = [
        "| " + " | ".join(_format_cell(record.get(col, "")) for col in cols) + " |"
        for record in records
    ]
    return "\n".join([header, separator, *rows])


def result_to_markdown(result: ExperimentResult) -> str:
    """Render one experiment result as a markdown section."""
    lines = [
        f"### {result.experiment_id} — {result.title}",
        "",
        f"**Paper claim.** {result.claim}.",
        "",
        records_to_markdown_table(result.records, list(result.columns) if result.columns else None),
    ]
    if result.notes:
        lines.append("")
        for note in result.notes:
            lines.append(f"*Measured:* {note}.")
    lines.append("")
    return "\n".join(lines)


def results_from_store(store: "ResultStore") -> dict[str, ExperimentResult]:
    """Rebuild :class:`ExperimentResult`\\ s from a persisted result store.

    Every segment whose sidecar metadata marks it as an experiment cell
    (the sweep runner writes one such segment per completed cell)
    contributes its records; cells of the same experiment concatenate in
    segment order, with each cell's sweep parameters noted so a multi-cell
    table stays interpretable. Nothing is re-run — this is how reports are
    regenerated from results that outlived their process.
    """
    results: dict[str, ExperimentResult] = {}
    for segment in store.segments():
        meta = store.read_meta(segment)
        if meta is None or meta.get("target_kind") != "experiment":
            continue
        experiment_id = str(meta.get("target"))
        columns = meta.get("columns")
        rows = store.read_segment(segment)
        if columns:
            records = [{column: row.get(column) for column in columns} for row in rows]
        else:
            records = [dict(row) for row in rows]
        params = meta.get("params") or {}
        prefix = ", ".join(f"{key}={value}" for key, value in sorted(params.items()))
        notes = [f"[{prefix}] {note}" if prefix else str(note) for note in meta.get("notes") or []]
        if prefix:
            # Always record which sweep cell the rows came from — without
            # this, cells that produced no notes of their own would be
            # indistinguishable in a concatenated multi-cell table.
            notes.insert(0, f"cell {meta.get('cell')} [{prefix}]: {len(records)} row(s)")
        if experiment_id not in results:
            results[experiment_id] = ExperimentResult(
                experiment_id=experiment_id,
                title=str(meta.get("title") or experiment_id),
                claim=str(meta.get("claim") or ""),
                records=records,
                columns=list(columns) if columns else None,
                notes=notes,
            )
        else:
            results[experiment_id].records.extend(records)
            results[experiment_id].notes.extend(notes)
    return results


def generate_report(
    *,
    quick: bool = False,
    seed: int = 0,
    experiment_ids: Iterable[str] | None = None,
    header: str | None = None,
    engine: "ExecutionEngine | None" = None,
    run: Callable[[str], ExperimentResult] | None = None,
    store: "ResultStore | None" = None,
) -> str:
    """Run the suite and return the full markdown report.

    Parameters
    ----------
    quick:
        Use the scaled-down configurations (for smoke-testing the report
        pipeline); the repository's EXPERIMENTS.md is generated with
        ``quick=False``.
    seed:
        Seed forwarded to every experiment.
    experiment_ids:
        Subset of experiments to include (default: all, in id order).
    header:
        Optional markdown prepended before the per-experiment sections.
    engine:
        Optional :class:`repro.engine.ExecutionEngine` forwarded to every
        experiment that supports one; the report text is identical for any
        worker count.
    run:
        Optional replacement for the default ``run_experiment`` call, given
        an experiment id and returning its :class:`ExperimentResult`. The
        CLI uses this to route report generation through the run cache while
        keeping a single section-assembly path.
    store:
        A :class:`repro.store.ResultStore` to *read results from instead of
        running anything*. Only experiments present in the store appear
        (intersected with ``experiment_ids`` when both are given); ``quick``,
        ``seed``, ``engine``, and ``run`` are ignored.
    """
    if store is not None:
        stored = results_from_store(store)
        ids = sorted(stored)
        if experiment_ids is not None:
            wanted = {experiment_id.upper() for experiment_id in experiment_ids}
            ids = [experiment_id for experiment_id in ids if experiment_id in wanted]
        run = lambda experiment_id: stored[experiment_id]  # noqa: E731
    else:
        ids = sorted(experiment_ids) if experiment_ids is not None else sorted(EXPERIMENTS)
        if run is None:
            run = lambda experiment_id: run_experiment(  # noqa: E731
                experiment_id, quick=quick, seed=seed, engine=engine
            )
    sections = []
    if header:
        sections.append(header.rstrip() + "\n")
    for experiment_id in ids:
        sections.append(result_to_markdown(run(experiment_id)))
    return "\n".join(sections)


__all__ = [
    "records_to_markdown_table",
    "result_to_markdown",
    "results_from_store",
    "generate_report",
]
