"""E22 — Section 6.2: collective (majority-vote) vs individual quorum decisions.

The paper asks whether multiple agents with different density estimates can
cooperate to answer a threshold question more reliably than a single agent.
The simplest cooperation rule — follow the majority of the individual votes —
is measured here against the individual error rate, at several separations
between the true density and the threshold. Votes are correlated (agents
share collisions), so the boost is an empirical question; the measurement
shows the majority is essentially always at least as reliable as a typical
individual and usually much more so.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.swarm.collective import MajorityQuorumVote
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class CollectiveQuorumConfig:
    """Parameters of experiment E22."""

    side: int = 32
    threshold: float = 0.1
    density_multipliers: tuple[float, ...] = (0.6, 0.8, 1.25, 1.6)
    rounds: int = 150
    trials: int = 10

    @classmethod
    def quick(cls) -> "CollectiveQuorumConfig":
        return cls(side=24, density_multipliers=(0.6, 1.6), rounds=100, trials=4)


def _vote_cell(
    side: int,
    num_agents: int,
    threshold: float,
    rounds: int,
    trials: int,
    *,
    rng: np.random.Generator,
) -> tuple[float, float]:
    """One density point: individual and majority failure rates over all trials."""
    vote = MajorityQuorumVote(
        topology=Torus2D(side),
        num_agents=num_agents,
        threshold=threshold,
        rounds=rounds,
    )
    return vote.failure_rates(trials, rng)


def run(
    config: CollectiveQuorumConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E22 and return the individual-vs-collective failure-rate table.

    Every density multiplier is one cell of a single execution plan (cell
    seeds match the legacy per-multiplier generators, so records are
    unchanged by the migration and identical for any worker count).
    """
    config = config or CollectiveQuorumConfig()
    engine = engine or ExecutionEngine()
    topology = Torus2D(config.side)
    result = ExperimentResult(
        experiment_id="E22",
        title="Quorum detection: individual agents vs the majority vote",
        claim=(
            "Section 6.2: cooperating agents (here: a simple majority vote) decide a density "
            "threshold at least as reliably as a typical individual agent, despite the "
            "correlation between their estimates"
        ),
        columns=[
            "density_multiplier",
            "true_density",
            "threshold",
            "individual_failure_rate",
            "collective_failure_rate",
        ],
    )

    agent_counts = [
        max(2, int(round(config.threshold * multiplier * topology.num_nodes)) + 1)
        for multiplier in config.density_multipliers
    ]
    settings = [
        {
            "side": config.side,
            "num_agents": num_agents,
            "threshold": config.threshold,
            "rounds": config.rounds,
            "trials": config.trials,
        }
        for num_agents in agent_counts
    ]
    cells = engine.map(_vote_cell, settings, seed)
    for multiplier, num_agents, (individual, collective) in zip(
        config.density_multipliers, agent_counts, cells
    ):
        result.add(
            density_multiplier=multiplier,
            true_density=(num_agents - 1) / topology.num_nodes,
            threshold=config.threshold,
            individual_failure_rate=individual,
            collective_failure_rate=collective,
        )

    result.notes.append(
        "the collective failure rate should never substantially exceed the individual rate, "
        "and is usually far lower at moderate separations"
    )
    return result


__all__ = ["CollectiveQuorumConfig", "run"]
