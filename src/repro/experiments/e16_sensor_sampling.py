"""E16 — Section 6.3.1: random-walk token sampling on a sensor grid.

A token relayed along a random walk of the grid aggregates sensor readings;
thanks to the grid's strong local mixing (few repeat visits, Corollary 15),
its running average is nearly as accurate as averaging independently chosen
sensors. The experiment sweeps the walk length and reports the token
estimator's error next to the independent-sampling baseline and the fraction
of hops that were repeat visits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.sensor.aggregation import independent_sample_mean, token_mean_estimate
from repro.sensor.network import SensorGrid
from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences


@dataclass(frozen=True)
class SensorSamplingConfig:
    """Parameters of experiment E16."""

    side: int = 60
    condition_probability: float = 0.3
    steps_grid: tuple[int, ...] = (100, 400, 1600)
    trials: int = 20

    @classmethod
    def quick(cls) -> "SensorSamplingConfig":
        return cls(side=40, steps_grid=(100, 400), trials=5)


def _sampling_cell(
    network: SensorGrid, steps: int, *, rng: np.random.Generator
) -> dict[str, float]:
    """One trial: a token walk and its independent-sampling baseline."""
    token = token_mean_estimate(network, steps, rng)
    baseline = independent_sample_mean(network, steps, rng)
    return {
        "token_error": token.relative_error,
        "independent_error": baseline.relative_error,
        "repeat_fraction": token.repeat_visit_fraction,
    }


def run(
    config: SensorSamplingConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E16 and return the token-sampling accuracy table.

    Every (walk length, trial) pair is one cell of a single execution plan;
    the sensor grid is built once from its own seed stream and shipped to
    the cells.
    """
    config = config or SensorSamplingConfig()
    engine = engine or ExecutionEngine()
    children = spawn_seed_sequences(seed, 2)
    network = SensorGrid.bernoulli(
        config.side, config.condition_probability, seed=as_generator(children[0])
    )

    result = ExperimentResult(
        experiment_id="E16",
        title="Sensor-network aggregation: token random walk vs independent sampling",
        claim=(
            "Section 6.3.1: because repeat visits are rare on the grid, the token's running "
            "average is nearly as accurate as independent sampling with the same budget"
        ),
        columns=[
            "steps",
            "token_mean_error",
            "independent_mean_error",
            "error_ratio",
            "mean_repeat_visit_fraction",
        ],
    )

    settings = [
        {"network": network, "steps": steps}
        for steps in config.steps_grid
        for _ in range(config.trials)
    ]
    cells = engine.map(_sampling_cell, settings, as_generator(children[1]))
    for index, steps in enumerate(config.steps_grid):
        rows = cells[index * config.trials : (index + 1) * config.trials]
        token_error = float(np.mean([row["token_error"] for row in rows]))
        independent_error = float(np.mean([row["independent_error"] for row in rows]))
        repeats = [row["repeat_fraction"] for row in rows]
        result.add(
            steps=steps,
            token_mean_error=token_error,
            independent_mean_error=independent_error,
            error_ratio=token_error / independent_error if independent_error > 0 else float("inf"),
            mean_repeat_visit_fraction=float(np.mean(repeats)),
        )

    result.notes.append(
        "error_ratio close to 1 reproduces the claim that walk sampling nearly matches "
        "independent sampling on the grid"
    )
    return result


__all__ = ["SensorSamplingConfig", "run"]
