"""E21 — Adaptive estimation: stopping times scale like 1/d without knowing d.

Theorem 1's round budget depends on the unknown density, which is circular
in practice. The adaptive estimator (doubling phases + a Bernstein-style
stopping rule, `repro.core.adaptive`) removes the circularity; this
experiment verifies that the rounds it chooses on its own scale inversely
with the density — i.e. it recovers the `1/d` dependence of the Theorem 1
prescription while only ever looking at its own collision counts — and that
the resulting estimates hit the requested accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import fit_power_law
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class AdaptiveEstimationConfig:
    """Parameters of experiment E21."""

    sides: tuple[int, ...] = (20, 32, 48)
    num_agents: int = 120
    target_epsilon: float = 0.3
    delta: float = 0.1
    max_rounds: int = 60_000
    trials: int = 2

    @classmethod
    def quick(cls) -> "AdaptiveEstimationConfig":
        return cls(sides=(16, 28), max_rounds=20_000, trials=1)


def _adaptive_cell(
    side: int,
    num_agents: int,
    target_epsilon: float,
    delta: float,
    max_rounds: int,
    *,
    rng: np.random.Generator,
) -> dict[str, float]:
    """One adaptive-estimation trial (the stopping rule is inherently serial)."""
    topology = Torus2D(side)
    true_density = (num_agents - 1) / topology.num_nodes
    estimator = AdaptiveDensityEstimator(
        topology,
        num_agents=num_agents,
        target_epsilon=target_epsilon,
        delta=delta,
        max_rounds=max_rounds,
    )
    outcome = estimator.run(rng)
    errors = np.abs(outcome.estimates - true_density) / true_density
    return {
        "rounds_used": outcome.rounds_used,
        "phases": outcome.phases,
        "median_error": float(np.median(errors)),
        "converged_fraction": outcome.converged_fraction,
    }


def run(
    config: AdaptiveEstimationConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E21 and return the adaptive-stopping table.

    Every (side, trial) pair is one cell of a single execution plan (cell
    seeds match the legacy trial generators, so records are unchanged by
    the migration and identical for any worker count). The doubling /
    stopping schedule adapts its round count to its own collision history,
    so the cells cannot share a batch matrix — the scheduler is the right
    engine path for this workload.
    """
    config = config or AdaptiveEstimationConfig()
    engine = engine or ExecutionEngine()
    result = ExperimentResult(
        experiment_id="E21",
        title="Adaptive density estimation: self-chosen round budgets vs density",
        claim=(
            "Extension of Theorem 1: a doubling/stopping schedule recovers the ~1/d round "
            "budget without any a-priori knowledge of the density, while meeting the "
            "requested accuracy"
        ),
        columns=[
            "side",
            "true_density",
            "rounds_used",
            "phases",
            "median_relative_error",
            "converged_fraction",
        ],
    )

    settings = [
        {
            "side": side,
            "num_agents": config.num_agents,
            "target_epsilon": config.target_epsilon,
            "delta": config.delta,
            "max_rounds": config.max_rounds,
        }
        for side in config.sides
        for _ in range(config.trials)
    ]
    cells = engine.map(_adaptive_cell, settings, seed)

    densities = []
    rounds_used = []
    for index, side in enumerate(config.sides):
        rows = cells[index * config.trials : (index + 1) * config.trials]
        true_density = (config.num_agents - 1) / Torus2D(side).num_nodes
        mean_rounds = float(np.mean([row["rounds_used"] for row in rows]))
        densities.append(true_density)
        rounds_used.append(mean_rounds)
        result.add(
            side=side,
            true_density=true_density,
            rounds_used=mean_rounds,
            phases=float(np.mean([row["phases"] for row in rows])),
            median_relative_error=float(np.mean([row["median_error"] for row in rows])),
            converged_fraction=float(np.mean([row["converged_fraction"] for row in rows])),
        )

    uncapped = [
        (d, r) for d, r in zip(densities, rounds_used) if r < config.max_rounds * 0.99
    ]
    if len(uncapped) >= 2:
        _, exponent = fit_power_law(
            np.array([d for d, _ in uncapped]), np.array([r for _, r in uncapped])
        )
        result.notes.append(
            f"fitted scaling exponent of self-chosen rounds vs density: {exponent:.2f} "
            "(the Theorem 1 prescription scales as -1)"
        )
    return result


__all__ = ["AdaptiveEstimationConfig", "run"]
