"""E21 — Adaptive estimation: stopping times scale like 1/d without knowing d.

Theorem 1's round budget depends on the unknown density, which is circular
in practice. The adaptive estimator (doubling phases + a Bernstein-style
stopping rule, `repro.core.adaptive`) removes the circularity; this
experiment verifies that the rounds it chooses on its own scale inversely
with the density — i.e. it recovers the `1/d` dependence of the Theorem 1
prescription while only ever looking at its own collision counts — and that
the resulting estimates hit the requested accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import fit_power_law
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class AdaptiveEstimationConfig:
    """Parameters of experiment E21."""

    sides: tuple[int, ...] = (20, 32, 48)
    num_agents: int = 120
    target_epsilon: float = 0.3
    delta: float = 0.1
    max_rounds: int = 60_000
    trials: int = 2

    @classmethod
    def quick(cls) -> "AdaptiveEstimationConfig":
        return cls(sides=(16, 28), max_rounds=20_000, trials=1)


def run(config: AdaptiveEstimationConfig | None = None, seed: SeedLike = 0) -> ExperimentResult:
    """Run E21 and return the adaptive-stopping table."""
    config = config or AdaptiveEstimationConfig()
    result = ExperimentResult(
        experiment_id="E21",
        title="Adaptive density estimation: self-chosen round budgets vs density",
        claim=(
            "Extension of Theorem 1: a doubling/stopping schedule recovers the ~1/d round "
            "budget without any a-priori knowledge of the density, while meeting the "
            "requested accuracy"
        ),
        columns=[
            "side",
            "true_density",
            "rounds_used",
            "phases",
            "median_relative_error",
            "converged_fraction",
        ],
    )

    rngs = spawn_generators(seed, len(config.sides) * config.trials)
    rng_index = 0
    densities = []
    rounds_used = []
    for side in config.sides:
        topology = Torus2D(side)
        per_trial_rounds = []
        per_trial_errors = []
        per_trial_converged = []
        per_trial_phases = []
        true_density = (config.num_agents - 1) / topology.num_nodes
        for _ in range(config.trials):
            estimator = AdaptiveDensityEstimator(
                topology,
                num_agents=config.num_agents,
                target_epsilon=config.target_epsilon,
                delta=config.delta,
                max_rounds=config.max_rounds,
            )
            outcome = estimator.run(rngs[rng_index])
            rng_index += 1
            per_trial_rounds.append(outcome.rounds_used)
            errors = np.abs(outcome.estimates - true_density) / true_density
            per_trial_errors.append(float(np.median(errors)))
            per_trial_converged.append(outcome.converged_fraction)
            per_trial_phases.append(outcome.phases)
        densities.append(true_density)
        rounds_used.append(float(np.mean(per_trial_rounds)))
        result.add(
            side=side,
            true_density=true_density,
            rounds_used=float(np.mean(per_trial_rounds)),
            phases=float(np.mean(per_trial_phases)),
            median_relative_error=float(np.mean(per_trial_errors)),
            converged_fraction=float(np.mean(per_trial_converged)),
        )

    uncapped = [
        (d, r) for d, r in zip(densities, rounds_used) if r < config.max_rounds * 0.99
    ]
    if len(uncapped) >= 2:
        _, exponent = fit_power_law(
            np.array([d for d, _ in uncapped]), np.array([r for _, r in uncapped])
        )
        result.notes.append(
            f"fitted scaling exponent of self-chosen rounds vs density: {exponent:.2f} "
            "(the Theorem 1 prescription scales as -1)"
        )
    return result


__all__ = ["AdaptiveEstimationConfig", "run"]
