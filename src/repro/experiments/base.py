"""Shared infrastructure for the experiment suite.

Each experiment module exposes

* a frozen ``*Config`` dataclass with a :meth:`quick` constructor returning a
  scaled-down configuration (used by tests and pytest-benchmark), and
* a ``run(config=None, seed=0) -> ExperimentResult`` function.

An :class:`ExperimentResult` is a table: a list of records (dicts) plus the
metadata needed to print it the way a paper would (experiment id, the claim
being reproduced, column order, and free-form notes summarising what the
measurement shows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.utils.tables import format_records


@dataclass
class ExperimentResult:
    """Tabular outcome of one experiment."""

    experiment_id: str
    title: str
    claim: str
    records: list[dict[str, Any]] = field(default_factory=list)
    columns: Sequence[str] | None = None
    notes: list[str] = field(default_factory=list)

    def to_table(self, *, float_format: str = ".4g") -> str:
        """Render the records as an aligned plain-text table."""
        header = f"[{self.experiment_id}] {self.title}\nClaim: {self.claim}"
        table = format_records(
            self.records, columns=self.columns, float_format=float_format, title=header
        )
        if self.notes:
            table += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return table

    def column(self, name: str) -> list[Any]:
        """All values of one column, in record order."""
        return [record[name] for record in self.records]

    def add(self, **record: Any) -> None:
        """Append one record."""
        self.records.append(record)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self.records)


def summarize_many(results: Mapping[str, ExperimentResult]) -> str:
    """Concatenate the tables of several experiments (used by examples)."""
    return "\n\n".join(result.to_table() for result in results.values())


__all__ = ["ExperimentResult", "summarize_many"]
