"""E05 — Theorem 1 vs Theorem 32: random walks vs independent sampling.

The paper's central comparison: Algorithm 1 (random-walk encounter rates,
correlated collisions) is nearly as accurate as Algorithm 4 (independent
sampling via the stationary/mobile split), losing only a poly-logarithmic
factor. The experiment runs both algorithms with identical budgets on the
same torus and reports the empirical ε of each along with their ratio, which
should stay bounded by a small factor that grows at most logarithmically
with ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon
from repro.core.estimator import RandomWalkDensityEstimator
from repro.core.independent import IndependentSamplingEstimator
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class RandomWalkVsIndependentConfig:
    """Parameters of experiment E05.

    The round grid stays below the torus side length because Theorem 32's
    analysis of Algorithm 4 assumes ``t < sqrt(A)`` (a walking agent must
    visit ``t`` distinct nodes).
    """

    side: int = 120
    num_agents: int = 1441
    rounds_grid: tuple[int, ...] = (20, 40, 80, 110)
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "RandomWalkVsIndependentConfig":
        return cls(side=60, num_agents=361, rounds_grid=(20, 50), trials=1)


def run(
    config: RandomWalkVsIndependentConfig | None = None, seed: SeedLike = 0
) -> ExperimentResult:
    """Run E05 and return the random-walk vs independent-sampling table."""
    config = config or RandomWalkVsIndependentConfig()
    topology = Torus2D(config.side)
    density = (config.num_agents - 1) / topology.num_nodes

    result = ExperimentResult(
        experiment_id="E05",
        title="Algorithm 1 (random walk) vs Algorithm 4 (independent sampling)",
        claim=(
            "Theorems 1 and 32: random-walk estimation matches independent sampling "
            "up to a poly-logarithmic factor"
        ),
        columns=[
            "rounds",
            "random_walk_epsilon",
            "independent_epsilon",
            "ratio",
        ],
    )

    rngs = spawn_generators(seed, 2 * len(config.rounds_grid) * config.trials)
    rng_index = 0
    for rounds in config.rounds_grid:
        rw_epsilons = []
        ind_epsilons = []
        for _ in range(config.trials):
            rw_run = RandomWalkDensityEstimator(topology, config.num_agents, rounds).run(
                rngs[rng_index]
            )
            rng_index += 1
            ind_run = IndependentSamplingEstimator(topology, config.num_agents, rounds).run(
                rngs[rng_index]
            )
            rng_index += 1
            rw_epsilons.append(empirical_epsilon(rw_run.estimates, density, config.delta))
            ind_epsilons.append(empirical_epsilon(ind_run.estimates, density, config.delta))
        rw_value = float(np.mean(rw_epsilons))
        ind_value = float(np.mean(ind_epsilons))
        result.add(
            rounds=rounds,
            random_walk_epsilon=rw_value,
            independent_epsilon=ind_value,
            ratio=rw_value / ind_value if ind_value > 0 else float("inf"),
        )

    ratios = [record["ratio"] for record in result.records if np.isfinite(record["ratio"])]
    if ratios:
        result.notes.append(
            f"max random-walk / independent epsilon ratio over the sweep: {max(ratios):.2f} "
            "(paper: bounded by a poly-log factor)"
        )
    return result


__all__ = ["RandomWalkVsIndependentConfig", "run"]
