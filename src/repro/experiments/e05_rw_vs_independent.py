"""E05 — Theorem 1 vs Theorem 32: random walks vs independent sampling.

The paper's central comparison: Algorithm 1 (random-walk encounter rates,
correlated collisions) is nearly as accurate as Algorithm 4 (independent
sampling via the stationary/mobile split), losing only a poly-logarithmic
factor. The experiment runs both algorithms with identical budgets on the
same torus and reports the empirical ε of each along with their ratio, which
should stay bounded by a small factor that grows at most logarithmically
with ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon
from repro.core.independent import IndependentSamplingEstimator
from repro.core.simulation import SimulationConfig
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_seed_sequences


@dataclass(frozen=True)
class RandomWalkVsIndependentConfig:
    """Parameters of experiment E05.

    The round grid stays below the torus side length because Theorem 32's
    analysis of Algorithm 4 assumes ``t < sqrt(A)`` (a walking agent must
    visit ``t`` distinct nodes).
    """

    side: int = 120
    num_agents: int = 1441
    rounds_grid: tuple[int, ...] = (20, 40, 80, 110)
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "RandomWalkVsIndependentConfig":
        return cls(side=60, num_agents=361, rounds_grid=(20, 50), trials=1)


def _independent_trial(
    side: int, num_agents: int, rounds: int, rng: np.random.Generator
) -> np.ndarray:
    """One Algorithm 4 trial, as a module-level scheduler task (picklable)."""
    topology = Torus2D(side)
    return IndependentSamplingEstimator(topology, num_agents, rounds).run(rng).estimates


def run(
    config: RandomWalkVsIndependentConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E05 and return the random-walk vs independent-sampling table.

    Algorithm 1 trials run on the engine's batched matrix path; the
    Algorithm 4 trials (deterministic lock-step motion, which the matrix
    form does not express) run through the engine scheduler.
    """
    config = config or RandomWalkVsIndependentConfig()
    engine = engine or ExecutionEngine()
    topology = Torus2D(config.side)
    density = (config.num_agents - 1) / topology.num_nodes

    result = ExperimentResult(
        experiment_id="E05",
        title="Algorithm 1 (random walk) vs Algorithm 4 (independent sampling)",
        claim=(
            "Theorems 1 and 32: random-walk estimation matches independent sampling "
            "up to a poly-logarithmic factor"
        ),
        columns=[
            "rounds",
            "random_walk_epsilon",
            "independent_epsilon",
            "ratio",
        ],
    )

    grid_seeds = spawn_seed_sequences(seed, len(config.rounds_grid) + 1)

    # All independent-sampling trials go through the scheduler as one flat
    # plan (one pool spin-up), sliced back per grid point below.
    ind_settings = [
        {"side": config.side, "num_agents": config.num_agents, "rounds": rounds}
        for rounds in config.rounds_grid
        for _ in range(config.trials)
    ]
    ind_outputs = engine.map(_independent_trial, ind_settings, grid_seeds[-1])

    for grid_index, rounds in enumerate(config.rounds_grid):
        rw_batch = engine.run_replicates(
            topology,
            SimulationConfig(num_agents=config.num_agents, rounds=rounds),
            config.trials,
            grid_seeds[grid_index],
        )
        rw_estimates = rw_batch.estimates()
        rw_epsilons = [
            empirical_epsilon(rw_estimates[trial], density, config.delta)
            for trial in range(config.trials)
        ]
        ind_epsilons = [
            empirical_epsilon(estimates, density, config.delta)
            for estimates in ind_outputs[
                grid_index * config.trials : (grid_index + 1) * config.trials
            ]
        ]
        rw_value = float(np.mean(rw_epsilons))
        ind_value = float(np.mean(ind_epsilons))
        result.add(
            rounds=rounds,
            random_walk_epsilon=rw_value,
            independent_epsilon=ind_value,
            ratio=rw_value / ind_value if ind_value > 0 else float("inf"),
        )

    ratios = [record["ratio"] for record in result.records if np.isfinite(record["ratio"])]
    if ratios:
        result.notes.append(
            f"max random-walk / independent epsilon ratio over the sweep: {max(ratios):.2f} "
            "(paper: bounded by a poly-log factor)"
        )
    return result


__all__ = ["RandomWalkVsIndependentConfig", "run"]
