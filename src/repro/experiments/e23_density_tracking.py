"""E23 — Online density tracking through a population crash.

The paper's Algorithm 1 emits one estimate after ``t`` rounds; its
robustness framing (Section 6.1) asks what happens when the world is not
static. This experiment runs the ``crash`` scenario of the dynamics
catalog — 60% of the population departs at mid-run — and compares three
anytime estimators at checkpoints along the run:

* the **running** ``c/t`` average (Algorithm 1's own anytime form), which
  is optimal before the shock and arbitrarily stale after it;
* the **sliding-window** estimator, which re-converges within one window
  of the shock (faster when the change detector fires and resets it);
* the **discounted** estimator, which interpolates between the two.

The table reports the replicate-averaged estimate of each tracker next to
the instantaneous true density, and the notes summarise the change
detector's behaviour: how many replicates flagged the shock and with what
latency. The expected picture: before the crash all three agree with the
density; after it the window and discounted trackers follow the new
density while the running average stays anchored near the stale mixture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.driver import run_scenario
from repro.dynamics.scenario import build_scenario
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.utils.rng import SeedLike, as_seed_sequence


@dataclass(frozen=True)
class DensityTrackingConfig:
    """Parameters of experiment E23."""

    scenario: str = "crash"
    rounds: int = 400
    side: int = 32
    num_agents: int = 200
    replicates: int = 16
    checkpoints: int = 10

    @classmethod
    def quick(cls) -> "DensityTrackingConfig":
        """Scaled-down configuration for tests and benchmarks."""
        return cls(rounds=80, side=16, num_agents=60, replicates=4, checkpoints=5)


def run(
    config: DensityTrackingConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E23 and return the tracking-through-a-crash table."""
    config = config or DensityTrackingConfig()
    engine = engine or ExecutionEngine()
    scenario = build_scenario(
        config.scenario,
        rounds=config.rounds,
        side=config.side,
        num_agents=config.num_agents,
    )
    outcome = run_scenario(
        scenario, replicates=config.replicates, engine=engine, seed=as_seed_sequence(seed)
    )

    result = ExperimentResult(
        experiment_id="E23",
        title=f"Anytime density tracking through the '{config.scenario}' scenario",
        claim=(
            "Windowed and discounted encounter-rate estimators track a density "
            "shock within one window; Algorithm 1's running c/t average goes stale"
        ),
        columns=[
            "round",
            "population",
            "true_density",
            "running",
            "window",
            "discounted",
            "ci_low",
            "ci_high",
            "change_fraction",
        ],
    )

    records = outcome.records()
    stride = max(1, scenario.rounds // config.checkpoints)
    for index in range(stride - 1, scenario.rounds, stride):
        record = records[index]
        result.add(
            round=record["round"],
            population=record["population"],
            true_density=record["true_density"],
            running=record["running"],
            window=record["window"],
            discounted=record["discounted"],
            ci_low=record["ci_low"],
            ci_high=record["ci_high"],
            change_fraction=record["change_fraction"],
        )

    density = outcome.true_density
    post = density != density[0]
    if post.any():
        shock_round = int(np.argmax(post)) + 1
        detections = []
        false_alarms = 0
        for rounds in outcome.change_rounds():
            post_flags = [r for r in rounds if r >= shock_round]
            false_alarms += len(rounds) - len(post_flags)
            if post_flags:
                detections.append(post_flags[0] - shock_round)
        result.notes.append(
            f"shock at round {shock_round}: {len(detections)}/{outcome.replicates} "
            "replicates flagged it"
            + (
                f", median latency {float(np.median(detections)):.0f} rounds"
                if detections
                else ""
            )
            + (f", {false_alarms} pre-shock false alarm(s)" if false_alarms else "")
        )
        # Post-shock staleness: error of each tracker over the final quarter.
        tail = slice(3 * scenario.rounds // 4, None)
        for name in ("running", "window", "discounted"):
            estimates = outcome.estimates[name].mean(axis=1)[tail]
            error = float(
                np.mean(np.abs(estimates - density[tail]) / np.maximum(density[tail], 1e-12))
            )
            result.notes.append(f"final-quarter relative error of {name}: {error:.3f}")
    return result


__all__ = ["DensityTrackingConfig", "run"]
