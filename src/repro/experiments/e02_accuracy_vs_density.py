"""E02 — Theorem 1: accuracy of Algorithm 1 vs the population density.

Theorem 1's round complexity scales as ``1/d``: at a fixed round budget the
empirical ε should scale as ``d^{-1/2}`` (denser populations are easier to
estimate because agents collide more often). The experiment sweeps the
density at fixed ``t`` and reports the measured ε against the prediction.

The density grid is declared as a :class:`repro.sweeps.GridAxis` and each
grid point runs as one scheduler task, so an ``engine`` with ``workers > 1``
fans the sweep out over processes (records identical for any worker count);
the sweep CLI reuses the same axis vocabulary to sweep E02's other
parameters from a spec file.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon, fit_power_law
from repro.core import bounds
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.sweeps.spec import GridAxis, expand_axes
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class AccuracyVsDensityConfig:
    """Parameters of experiment E02."""

    side: int = 48
    densities: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2)
    rounds: int = 300
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "AccuracyVsDensityConfig":
        return cls(side=32, densities=(0.05, 0.1, 0.2), rounds=100, trials=1)


def _density_cell(
    side: int,
    rounds: int,
    delta: float,
    trials: int,
    target_density: float,
    *,
    rng: np.random.Generator,
) -> dict[str, float]:
    """One grid point: ``trials`` batched kernel replicates at one target density."""
    topology = Torus2D(side)
    num_agents = max(2, int(round(target_density * topology.num_nodes)) + 1)
    true_density = (num_agents - 1) / topology.num_nodes
    batch = run_kernel(topology, SimulationConfig(num_agents=num_agents, rounds=rounds), trials, rng)
    epsilons = [
        empirical_epsilon(row, true_density, delta) for row in batch.estimates()
    ]
    return {
        "target_density": target_density,
        "true_density": true_density,
        "num_agents": num_agents,
        "empirical_epsilon": float(np.mean(epsilons)),
        "theorem1_epsilon": bounds.theorem1_epsilon(rounds, true_density, delta),
    }


def run(
    config: AccuracyVsDensityConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E02 and return the accuracy-vs-density table."""
    config = config or AccuracyVsDensityConfig()
    engine = engine or ExecutionEngine()
    result = ExperimentResult(
        experiment_id="E02",
        title="Random-walk density estimation accuracy vs density (2-D torus)",
        claim="Theorem 1: at fixed t, epsilon scales ~ 1/sqrt(d)",
        columns=[
            "target_density",
            "true_density",
            "num_agents",
            "empirical_epsilon",
            "theorem1_epsilon",
        ],
    )

    base = {
        "side": config.side,
        "rounds": config.rounds,
        "delta": config.delta,
        "trials": config.trials,
    }
    axes = (GridAxis("target_density", config.densities),)
    settings = [{**base, **point} for point in expand_axes(axes, seed=0)]
    records = engine.map(_density_cell, settings, seed)
    for record in records:
        result.add(**record)

    if len(config.densities) >= 2:
        true_densities = np.array([record["true_density"] for record in records])
        measured = np.array([record["empirical_epsilon"] for record in records])
        _, exponent = fit_power_law(true_densities, measured)
        result.notes.append(
            f"fitted scaling exponent of empirical epsilon vs d: {exponent:.3f} "
            "(Theorem 1 predicts about -0.5)"
        )
    return result


__all__ = ["AccuracyVsDensityConfig", "run"]
