"""E02 — Theorem 1: accuracy of Algorithm 1 vs the population density.

Theorem 1's round complexity scales as ``1/d``: at a fixed round budget the
empirical ε should scale as ``d^{-1/2}`` (denser populations are easier to
estimate because agents collide more often). The experiment sweeps the
density at fixed ``t`` and reports the measured ε against the prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon, fit_power_law
from repro.core import bounds
from repro.core.estimator import RandomWalkDensityEstimator
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class AccuracyVsDensityConfig:
    """Parameters of experiment E02."""

    side: int = 48
    densities: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2)
    rounds: int = 300
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "AccuracyVsDensityConfig":
        return cls(side=32, densities=(0.05, 0.1, 0.2), rounds=100, trials=1)


def run(config: AccuracyVsDensityConfig | None = None, seed: SeedLike = 0) -> ExperimentResult:
    """Run E02 and return the accuracy-vs-density table."""
    config = config or AccuracyVsDensityConfig()
    topology = Torus2D(config.side)
    result = ExperimentResult(
        experiment_id="E02",
        title="Random-walk density estimation accuracy vs density (2-D torus)",
        claim="Theorem 1: at fixed t, epsilon scales ~ 1/sqrt(d)",
        columns=[
            "target_density",
            "true_density",
            "num_agents",
            "empirical_epsilon",
            "theorem1_epsilon",
        ],
    )

    rngs = spawn_generators(seed, len(config.densities) * config.trials)
    rng_index = 0
    measured = []
    true_densities = []
    for target in config.densities:
        num_agents = max(2, int(round(target * topology.num_nodes)) + 1)
        true_density = (num_agents - 1) / topology.num_nodes
        epsilons = []
        for _ in range(config.trials):
            estimator = RandomWalkDensityEstimator(topology, num_agents, config.rounds)
            run_result = estimator.run(rngs[rng_index])
            rng_index += 1
            epsilons.append(
                empirical_epsilon(run_result.estimates, true_density, config.delta)
            )
        measured.append(float(np.mean(epsilons)))
        true_densities.append(true_density)
        result.add(
            target_density=target,
            true_density=true_density,
            num_agents=num_agents,
            empirical_epsilon=float(np.mean(epsilons)),
            theorem1_epsilon=bounds.theorem1_epsilon(config.rounds, true_density, config.delta),
        )

    if len(config.densities) >= 2:
        _, exponent = fit_power_law(np.array(true_densities), np.array(measured))
        result.notes.append(
            f"fitted scaling exponent of empirical epsilon vs d: {exponent:.3f} "
            "(Theorem 1 predicts about -0.5)"
        )
    return result


__all__ = ["AccuracyVsDensityConfig", "run"]
