"""E24 — Robustness of encounter-rate density estimation under agent churn.

The paper argues random-walk collision counting is a *robust* primitive
for biological and robotic swarms. Real swarms churn: agents fail, join,
or get recruited away. This experiment sweeps a symmetric Poisson
birth/death rate (expected arrivals = expected departures per round, so
the population stays statistically level while its *composition* turns
over) and measures how well the sliding-window tracker follows the
instantaneous true density.

Because arrivals are placed at independent uniform nodes — the stationary
law of the walk — churn does not bias the per-round encounter rate: each
round's population mean collision count still has expectation equal to
the live density. The measurable cost of churn is therefore variance, not
bias: the tracking error should grow only mildly with the churn rate,
while the population turnover column confirms the composition really did
change. This is the dynamic counterpart of E17's static unbiasedness
check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.driver import run_scenario
from repro.dynamics.events import random_churn_schedule
from repro.dynamics.scenario import Scenario
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.sweeps.spec import GridAxis, expand_axes
from repro.utils.rng import SeedLike, spawn_seed_sequences


@dataclass(frozen=True)
class ChurnRobustnessConfig:
    """Parameters of experiment E24."""

    side: int = 32
    num_agents: int = 200
    rounds: int = 300
    #: Expected per-round arrivals and departures, as fractions of the
    #: initial population (0.01 → about two agents churn per round at the
    #: default population).
    churn_rates: tuple[float, ...] = (0.0, 0.005, 0.01, 0.02, 0.05)
    replicates: int = 8

    @classmethod
    def quick(cls) -> "ChurnRobustnessConfig":
        """Scaled-down configuration for tests and benchmarks."""
        return cls(
            side=16,
            num_agents=60,
            rounds=60,
            churn_rates=(0.0, 0.02, 0.05),
            replicates=4,
        )


def _churn_cell(
    config: ChurnRobustnessConfig,
    churn_rate: float,
    *,
    rng: np.random.Generator,
) -> dict[str, float]:
    """One sweep point: tracking error at one churn rate (picklable task).

    The schedule and the walks get separate child seeds of the cell's
    stream, and the scenario's replicates run serially inside the cell —
    the experiment's parallelism is across churn rates, one cell each.
    """
    schedule_seed, run_seed = spawn_seed_sequences(rng, 2)
    per_round = churn_rate * config.num_agents
    events = (
        random_churn_schedule(config.rounds, per_round, per_round, schedule_seed)
        if churn_rate > 0.0
        else None
    )
    scenario = Scenario(
        name=f"churn-{churn_rate:g}",
        description=f"symmetric Poisson churn at rate {churn_rate:g} per agent per round",
        topology={"kind": "torus2d", "side": config.side},
        num_agents=config.num_agents,
        rounds=config.rounds,
        **({"events": events} if events is not None else {}),
    )
    outcome = run_scenario(scenario, replicates=config.replicates, seed=run_seed)

    density = outcome.true_density
    # Judge tracking over the second half, once every window has filled.
    tail = slice(config.rounds // 2, None)
    errors = {}
    for name in ("window", "running"):
        estimates = outcome.estimates[name].mean(axis=1)[tail]
        errors[name] = float(
            np.mean(np.abs(estimates - density[tail]) / np.maximum(density[tail], 1e-12))
        )
    return {
        "churn_rate": churn_rate,
        "expected_events_per_round": 2.0 * per_round,
        "final_population": int(outcome.population[-1]),
        "final_density": float(density[-1]),
        "window_error": errors["window"],
        "running_error": errors["running"],
        "mean_ci_width": float((outcome.ci_high - outcome.ci_low)[tail].mean()),
    }


def run(
    config: ChurnRobustnessConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E24 and return the error-vs-churn-rate table.

    The churn-rate grid is a :class:`repro.sweeps.GridAxis`; each rate is
    one self-contained scheduler cell, so the sweep fans out over the
    engine's workers with records identical for any worker count.
    """
    config = config or ChurnRobustnessConfig()
    engine = engine or ExecutionEngine()
    result = ExperimentResult(
        experiment_id="E24",
        title="Density tracking accuracy vs agent churn rate (2-D torus)",
        claim=(
            "Uniformly placed arrivals keep the encounter rate unbiased, so "
            "tracking error grows only mildly with churn (robustness, Section 6.1)"
        ),
        columns=[
            "churn_rate",
            "expected_events_per_round",
            "final_population",
            "final_density",
            "window_error",
            "running_error",
            "mean_ci_width",
        ],
    )

    axes = (GridAxis("churn_rate", config.churn_rates),)
    settings = [{"config": config, **point} for point in expand_axes(axes, seed=0)]
    for record in engine.map(_churn_cell, settings, seed):
        result.add(**record)

    baseline = result.records[0]["window_error"]
    worst = max(record["window_error"] for record in result.records)
    result.notes.append(
        f"window-tracker error: {baseline:.3f} with no churn, {worst:.3f} at the "
        "worst sweep point — churn widens the noise band but does not bias the estimate"
    )
    return result


__all__ = ["ChurnRobustnessConfig", "run"]
