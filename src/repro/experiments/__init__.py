"""Experiment suite regenerating the paper's quantitative claims.

The paper is an extended abstract of a theory result and contains no
empirical tables; each experiment here turns one of its theorems, lemmas, or
worked examples into a measurable table (see DESIGN.md for the full index).
Every experiment module exposes a ``*Config`` dataclass (with a ``quick()``
variant used by tests and benchmarks) and a ``run(config, seed)`` function
returning an :class:`~repro.experiments.base.ExperimentResult`.

Use :data:`EXPERIMENTS` to iterate over the whole suite, or
:func:`run_experiment` to run one by id::

    from repro.experiments import run_experiment
    print(run_experiment("E01", quick=True).to_table())
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Callable

from repro.experiments.base import ExperimentResult, summarize_many

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import ExecutionEngine
from repro.experiments import (
    e01_accuracy_vs_rounds,
    e02_accuracy_vs_density,
    e03_recollision_torus,
    e04_collision_moments,
    e05_rw_vs_independent,
    e06_topology_comparison,
    e07_recollision_topologies,
    e08_local_mixing,
    e09_network_size,
    e10_average_degree,
    e11_burn_in,
    e12_property_frequency,
    e13_all_agents,
    e14_noise_ablation,
    e15_nonuniform_placement,
    e16_sensor_sampling,
    e17_unbiasedness,
    e18_quorum_sensing,
    e19_movement_models,
    e20_boundary_effects,
    e21_adaptive_estimation,
    e22_collective_quorum,
    e23_density_tracking,
    e24_churn_robustness,
)

#: Registry: experiment id -> (module, config class).
EXPERIMENTS: dict[str, tuple[object, type]] = {
    "E01": (e01_accuracy_vs_rounds, e01_accuracy_vs_rounds.AccuracyVsRoundsConfig),
    "E02": (e02_accuracy_vs_density, e02_accuracy_vs_density.AccuracyVsDensityConfig),
    "E03": (e03_recollision_torus, e03_recollision_torus.RecollisionTorusConfig),
    "E04": (e04_collision_moments, e04_collision_moments.CollisionMomentsConfig),
    "E05": (e05_rw_vs_independent, e05_rw_vs_independent.RandomWalkVsIndependentConfig),
    "E06": (e06_topology_comparison, e06_topology_comparison.TopologyComparisonConfig),
    "E07": (e07_recollision_topologies, e07_recollision_topologies.RecollisionTopologiesConfig),
    "E08": (e08_local_mixing, e08_local_mixing.LocalMixingConfig),
    "E09": (e09_network_size, e09_network_size.NetworkSizeConfig),
    "E10": (e10_average_degree, e10_average_degree.AverageDegreeConfig),
    "E11": (e11_burn_in, e11_burn_in.BurnInConfig),
    "E12": (e12_property_frequency, e12_property_frequency.PropertyFrequencyConfig),
    "E13": (e13_all_agents, e13_all_agents.AllAgentsConfig),
    "E14": (e14_noise_ablation, e14_noise_ablation.NoiseAblationConfig),
    "E15": (e15_nonuniform_placement, e15_nonuniform_placement.NonuniformPlacementConfig),
    "E16": (e16_sensor_sampling, e16_sensor_sampling.SensorSamplingConfig),
    "E17": (e17_unbiasedness, e17_unbiasedness.UnbiasednessConfig),
    "E18": (e18_quorum_sensing, e18_quorum_sensing.QuorumSensingConfig),
    "E19": (e19_movement_models, e19_movement_models.MovementModelsConfig),
    "E20": (e20_boundary_effects, e20_boundary_effects.BoundaryEffectsConfig),
    "E21": (e21_adaptive_estimation, e21_adaptive_estimation.AdaptiveEstimationConfig),
    "E22": (e22_collective_quorum, e22_collective_quorum.CollectiveQuorumConfig),
    "E23": (e23_density_tracking, e23_density_tracking.DensityTrackingConfig),
    "E24": (e24_churn_robustness, e24_churn_robustness.ChurnRobustnessConfig),
}


def _engine_aware_runner(key: str, module: object) -> Callable:
    """The experiment's ``run`` — verified to forward the execution engine.

    Every registered experiment executes through the engine
    (``ExecutionPlan`` cells and/or the batched kernel), so its ``run``
    must accept ``engine=``. An experiment that silently dropped the
    parameter would run serially no matter what ``--workers`` asks for;
    this guard turns that regression into a loud error naming the module.
    """
    runner: Callable = module.run
    if "engine" not in inspect.signature(runner).parameters:
        raise TypeError(
            f"experiment {key} ({module.__name__}) does not accept engine=: "
            "every experiment must forward the execution engine so that "
            "batching, caching, and --workers reach it"
        )
    return runner


def run_experiment(
    experiment_id: str,
    *,
    quick: bool = False,
    seed: int = 0,
    engine: "ExecutionEngine | None" = None,
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"E03"``).

    Parameters
    ----------
    experiment_id:
        Key of :data:`EXPERIMENTS` (case-insensitive).
    quick:
        Use the scaled-down configuration (seconds instead of minutes).
    seed:
        Seed forwarded to the experiment.
    engine:
        Optional :class:`repro.engine.ExecutionEngine`, forwarded to every
        experiment (each defaults to a serial engine when ``None``).
        Records never depend on the engine's worker count — only
        wall-clock does.
    """
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment id {experiment_id!r}; known ids: {sorted(EXPERIMENTS)}")
    module, config_cls = EXPERIMENTS[key]
    config = config_cls.quick() if quick else config_cls()
    runner = _engine_aware_runner(key, module)
    return runner(config, seed=seed, engine=engine)


def run_all(
    *, quick: bool = True, seed: int = 0, engine: "ExecutionEngine | None" = None
) -> dict[str, ExperimentResult]:
    """Run the whole suite (quick configurations by default) and return results by id.

    Before anything runs, every registered experiment is checked to forward
    the engine — one experiment ignoring ``engine=`` would silently run
    serially under ``--workers N``, so the check fails fast and names it.
    """
    for key, (module, _) in EXPERIMENTS.items():
        _engine_aware_runner(key, module)
    return {key: run_experiment(key, quick=quick, seed=seed, engine=engine) for key in EXPERIMENTS}


__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment", "run_all", "summarize_many"]
