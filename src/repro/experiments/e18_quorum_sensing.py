"""E18 — Section 6.2: quorum (density threshold) detection.

Many biological uses of density estimation only need a threshold decision:
is the density above θ? With a round budget sized for the threshold (not the
unknown true density) and a margin between the true density and θ, almost
all agents decide correctly. The experiment sweeps the true density across
the threshold and reports the fraction of agents answering "above".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.thresholds import QuorumDetector
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class QuorumSensingConfig:
    """Parameters of experiment E18."""

    side: int = 40
    threshold: float = 0.1
    density_multipliers: tuple[float, ...] = (0.5, 0.75, 1.5, 2.0)
    margin: float = 0.5
    delta: float = 0.1
    rounds: int | None = 400
    trials: int = 3

    @classmethod
    def quick(cls) -> "QuorumSensingConfig":
        return cls(side=30, density_multipliers=(0.5, 2.0), rounds=200, trials=1)


def _quorum_cell(
    side: int,
    num_agents: int,
    threshold: float,
    margin: float,
    delta: float,
    rounds: int | None,
    *,
    rng: np.random.Generator,
) -> float:
    """One detection trial at one density (stream-identical to the legacy loop)."""
    detector = QuorumDetector(
        topology=Torus2D(side),
        num_agents=num_agents,
        threshold=threshold,
        margin=margin,
        delta=delta,
        rounds=rounds,
    )
    return detector.fraction_above(rng)


def run(
    config: QuorumSensingConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E18 and return the quorum-decision table.

    Every (density, trial) pair is one cell of a single execution plan
    (cell seeds match the legacy trial generators, so records are unchanged
    by the migration and identical for any worker count).
    """
    config = config or QuorumSensingConfig()
    engine = engine or ExecutionEngine()
    topology = Torus2D(config.side)

    result = ExperimentResult(
        experiment_id="E18",
        title="Quorum sensing: threshold decisions from encounter rates",
        claim=(
            "Section 6.2: when the true density is separated from the threshold, nearly all "
            "agents decide the quorum question correctly"
        ),
        columns=[
            "density_multiplier",
            "true_density",
            "threshold",
            "fraction_reporting_above",
            "expected_answer",
            "fraction_correct",
        ],
    )

    agent_counts = [
        max(2, int(round(config.threshold * multiplier * topology.num_nodes)) + 1)
        for multiplier in config.density_multipliers
    ]
    settings = [
        {
            "side": config.side,
            "num_agents": num_agents,
            "threshold": config.threshold,
            "margin": config.margin,
            "delta": config.delta,
            "rounds": config.rounds,
        }
        for num_agents in agent_counts
        for _ in range(config.trials)
    ]
    cells = engine.map(_quorum_cell, settings, seed)
    for index, (multiplier, num_agents) in enumerate(
        zip(config.density_multipliers, agent_counts)
    ):
        true_density = (num_agents - 1) / topology.num_nodes
        expected_above = true_density >= config.threshold
        fraction_above = float(np.mean(cells[index * config.trials : (index + 1) * config.trials]))
        fraction_correct = fraction_above if expected_above else 1.0 - fraction_above
        result.add(
            density_multiplier=multiplier,
            true_density=true_density,
            threshold=config.threshold,
            fraction_reporting_above=fraction_above,
            expected_answer="above" if expected_above else "below",
            fraction_correct=fraction_correct,
        )

    result.notes.append(
        "fraction_correct should be close to 1 for densities well separated from the threshold"
    )
    return result


__all__ = ["QuorumSensingConfig", "run"]
