"""E03 — Lemma 4 / Corollary 10: re-collision and equalization probabilities.

Lemma 4 bounds the probability that two torus walkers which collide at some
round collide again ``m`` rounds later by ``O(1/(m+1) + 1/A)``; Corollary 10
gives the matching ``Θ(1/(m+1))`` statement for a single walk returning to
its origin (at even offsets). The experiment measures both curves and
reports them against the bound, plus the fitted decay exponent (expected
close to -1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import fit_power_law
from repro.core import bounds
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike
from repro.walks.equalization import equalization_profile
from repro.walks.recollision import recollision_profile


@dataclass(frozen=True)
class RecollisionTorusConfig:
    """Parameters of experiment E03."""

    side: int = 100
    max_offset: int = 64
    trials: int = 20000
    report_offsets: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

    @classmethod
    def quick(cls) -> "RecollisionTorusConfig":
        return cls(side=50, max_offset=16, trials=3000, report_offsets=(1, 2, 4, 8, 16))


def _profile_cell(
    kind: str, side: int, max_offset: int, trials: int, *, rng: np.random.Generator
):
    """One measurement cell: a full re-collision or equalization profile."""
    topology = Torus2D(side)
    if kind == "recollision":
        return recollision_profile(topology, max_offset, trials=trials, seed=rng)
    return equalization_profile(topology, max_offset, trials=trials, seed=rng)


def run(
    config: RecollisionTorusConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E03 and return the re-collision / equalization probability table.

    The two profile measurements are independent cells of one execution
    plan (cell seeds match the legacy per-profile generators, so records
    are unchanged by the migration and identical for any worker count).
    """
    config = config or RecollisionTorusConfig()
    engine = engine or ExecutionEngine()
    topology = Torus2D(config.side)

    base = {"side": config.side, "max_offset": config.max_offset, "trials": config.trials}
    profile, returns = engine.map(
        _profile_cell,
        [{"kind": "recollision", **base}, {"kind": "equalization", **base}],
        seed,
    )

    result = ExperimentResult(
        experiment_id="E03",
        title="Re-collision and equalization probability vs offset (2-D torus)",
        claim="Lemma 4 / Corollary 10: probability decays as Theta(1/(m+1)) + O(1/A)",
        columns=[
            "offset",
            "recollision_probability",
            "equalization_probability",
            "lemma4_bound",
        ],
    )
    for offset in config.report_offsets:
        if offset > config.max_offset:
            continue
        even_offset = offset if offset % 2 == 0 else offset + 1
        equalization_value = (
            float(returns.probability[even_offset])
            if even_offset <= config.max_offset
            else float("nan")
        )
        result.add(
            offset=offset,
            recollision_probability=float(profile.probability[offset]),
            equalization_probability=equalization_value,
            lemma4_bound=bounds.recollision_bound_torus2d(offset, topology.num_nodes),
        )

    offsets = np.array([o for o in config.report_offsets if o <= config.max_offset], dtype=float)
    probabilities = np.array([profile.probability[int(o)] for o in offsets])
    if np.count_nonzero(probabilities > 0) >= 2:
        _, exponent = fit_power_law(offsets + 1.0, probabilities)
        result.notes.append(
            f"fitted decay exponent of re-collision probability: {exponent:.3f} "
            "(Lemma 4 predicts about -1)"
        )
    result.notes.append(f"local mixing sum B({config.max_offset}) = {profile.local_mixing_sum():.3f}")
    return result


__all__ = ["RecollisionTorusConfig", "run"]
