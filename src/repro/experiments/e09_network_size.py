"""E09 — Theorem 27 / Section 5.1.5: network size estimation and query cost.

Algorithm 2 trades the number of walks against the number of collision-
counting rounds (``n²t`` fixed), which pays off when burn-in is expensive:
fewer walks ⇒ fewer burn-in link queries. The [KLSC14] baseline is the
``t = 0`` extreme (collisions of one stationary configuration only) and
therefore needs many more walks for the same accuracy. The experiment runs
the full pipeline at several ``t`` on an expander and on a skewed-degree
graph, reporting accuracy and link queries, plus the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core import bounds
from repro.experiments.base import ExperimentResult
from repro.netsize.pipeline import NetworkSizeEstimationPipeline
from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator, spawn_generators


@dataclass(frozen=True)
class NetworkSizeConfig:
    """Parameters of experiment E09."""

    expander_size: int = 2000
    expander_degree: int = 4
    powerlaw_size: int = 2000
    powerlaw_edges: int = 3
    rounds_grid: tuple[int, ...] = (4, 16, 64)
    epsilon: float = 0.25
    delta: float = 0.2
    burn_in: int = 60
    trials: int = 3

    @classmethod
    def quick(cls) -> "NetworkSizeConfig":
        return cls(
            expander_size=600,
            powerlaw_size=600,
            rounds_grid=(4, 16),
            burn_in=30,
            trials=1,
        )


def _graphs(config: NetworkSizeConfig, seed: SeedLike):
    rng = as_generator(seed)
    expander_graph = nx.random_regular_graph(
        config.expander_degree, config.expander_size, seed=int(rng.integers(0, 2**31 - 1))
    )
    powerlaw_graph = nx.powerlaw_cluster_graph(
        config.powerlaw_size, config.powerlaw_edges, 0.1, seed=int(rng.integers(0, 2**31 - 1))
    )
    yield NetworkXTopology(expander_graph, name="expander")
    yield NetworkXTopology(powerlaw_graph, name="powerlaw")


def run(config: NetworkSizeConfig | None = None, seed: SeedLike = 0) -> ExperimentResult:
    """Run E09 and return the size-estimation accuracy / query-cost table."""
    config = config or NetworkSizeConfig()
    result = ExperimentResult(
        experiment_id="E09",
        title="Network size estimation: Algorithm 2 vs the [KLSC14] baseline",
        claim=(
            "Theorem 27 / Section 5.1.5: increasing the per-walk round count t lets the "
            "estimator use fewer walks, cutting burn-in link queries while keeping accuracy"
        ),
        columns=[
            "graph",
            "method",
            "rounds",
            "num_walks",
            "size_estimate",
            "true_size",
            "relative_error",
            "link_queries",
        ],
    )

    rngs = spawn_generators(seed, 4)
    graphs = list(_graphs(config, rngs[0]))
    trial_rngs = spawn_generators(rngs[1], (len(config.rounds_grid) + 1) * len(graphs) * config.trials)
    rng_index = 0
    for topology in graphs:
        degrees = np.asarray(topology.degree_of(np.arange(topology.num_nodes)))
        # Walk budget from Theorem 27 at each t (B(t) approximated by the
        # expander-style constant; the shape comparison is what matters).
        for rounds in config.rounds_grid:
            local_mixing = 2.0
            walks = bounds.theorem27_walks_required(
                topology.num_nodes,
                topology.num_edges,
                local_mixing,
                rounds,
                config.epsilon,
                config.delta,
            )
            walks = min(walks, topology.num_nodes // 2)
            errors = []
            queries = []
            estimates = []
            for _ in range(config.trials):
                pipeline = NetworkSizeEstimationPipeline(
                    topology,
                    num_walks=walks,
                    rounds=rounds,
                    burn_in=config.burn_in,
                )
                report = pipeline.run(trial_rngs[rng_index])
                rng_index += 1
                errors.append(report.relative_error)
                queries.append(report.link_queries)
                estimates.append(report.size_estimate)
            result.add(
                graph=topology.name,
                method="algorithm2",
                rounds=rounds,
                num_walks=walks,
                size_estimate=float(np.median(estimates)),
                true_size=topology.num_nodes,
                relative_error=float(np.median(errors)),
                link_queries=int(np.mean(queries)),
            )

        # [KLSC14] baseline: same accuracy target, single collision round,
        # so the walk count follows the baseline's own formula.
        baseline_walks = bounds.katzir_walks_required(
            topology.num_nodes, degrees, config.epsilon, config.delta
        )
        baseline_walks = min(baseline_walks, topology.num_nodes // 2)
        errors = []
        queries = []
        estimates = []
        for _ in range(config.trials):
            pipeline = NetworkSizeEstimationPipeline(
                topology,
                num_walks=baseline_walks,
                rounds=1,
                burn_in=config.burn_in,
            )
            report = pipeline.run_katzir_baseline(trial_rngs[rng_index])
            rng_index += 1
            errors.append(report.relative_error)
            queries.append(report.link_queries)
            estimates.append(report.size_estimate)
        result.add(
            graph=topology.name,
            method="katzir_baseline",
            rounds=0,
            num_walks=baseline_walks,
            size_estimate=float(np.median(estimates)),
            true_size=topology.num_nodes,
            relative_error=float(np.median(errors)),
            link_queries=int(np.mean(queries)),
        )

    result.notes.append(
        "for each graph, compare link_queries of algorithm2 at large t against the "
        "katzir_baseline row at comparable relative_error"
    )
    return result


__all__ = ["NetworkSizeConfig", "run"]
