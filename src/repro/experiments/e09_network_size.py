"""E09 — Theorem 27 / Section 5.1.5: network size estimation and query cost.

Algorithm 2 trades the number of walks against the number of collision-
counting rounds (``n²t`` fixed), which pays off when burn-in is expensive:
fewer walks ⇒ fewer burn-in link queries. The [KLSC14] baseline is the
``t = 0`` extreme (collisions of one stationary configuration only) and
therefore needs many more walks for the same accuracy. The experiment runs
the full pipeline at several ``t`` on an expander and on a skewed-degree
graph, reporting accuracy and link queries, plus the baseline.

The measurement grid is declared with sweep axes — a :class:`GridAxis`
over the two graphs times a :class:`ZipAxis` locking ``(method, rounds)``
pairs together — and each grid point is one self-contained scheduler task
(graph construction included, from a pinned integer seed), so the whole
table fans out over the engine's workers as one flat plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core import bounds
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.netsize.pipeline import NetworkSizeEstimationPipeline
from repro.sweeps.spec import GridAxis, ZipAxis, expand_axes
from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences


@dataclass(frozen=True)
class NetworkSizeConfig:
    """Parameters of experiment E09."""

    expander_size: int = 2000
    expander_degree: int = 4
    powerlaw_size: int = 2000
    powerlaw_edges: int = 3
    rounds_grid: tuple[int, ...] = (4, 16, 64)
    epsilon: float = 0.25
    delta: float = 0.2
    burn_in: int = 60
    trials: int = 3

    @classmethod
    def quick(cls) -> "NetworkSizeConfig":
        return cls(
            expander_size=600,
            powerlaw_size=600,
            rounds_grid=(4, 16),
            burn_in=30,
            trials=1,
        )


def _build_topology(
    graph: str, graph_seed: int, config: NetworkSizeConfig
) -> NetworkXTopology:
    """Rebuild one of the experiment's graphs from its pinned integer seed."""
    if graph == "expander":
        built = nx.random_regular_graph(config.expander_degree, config.expander_size, seed=graph_seed)
    elif graph == "powerlaw":
        built = nx.powerlaw_cluster_graph(config.powerlaw_size, config.powerlaw_edges, 0.1, seed=graph_seed)
    else:  # pragma: no cover - axis values are fixed below
        raise ValueError(f"unknown graph {graph!r}")
    return NetworkXTopology(built, name=graph)


def _e09_cell(
    config: NetworkSizeConfig,
    graph: str,
    graph_seed: int,
    method: str,
    rounds: int,
    *,
    rng: np.random.Generator,
) -> dict[str, float]:
    """One table row: ``trials`` pipeline runs at one (graph, method, t) point."""
    topology = _build_topology(graph, graph_seed, config)
    baseline = method == "katzir_baseline"
    if baseline:
        degrees = np.asarray(topology.degree_of(np.arange(topology.num_nodes)))
        walks = bounds.katzir_walks_required(topology.num_nodes, degrees, config.epsilon, config.delta)
        pipeline_rounds = 1
    else:
        # Walk budget from Theorem 27 at each t (B(t) approximated by the
        # expander-style constant; the shape comparison is what matters).
        local_mixing = 2.0
        walks = bounds.theorem27_walks_required(
            topology.num_nodes,
            topology.num_edges,
            local_mixing,
            rounds,
            config.epsilon,
            config.delta,
        )
        pipeline_rounds = rounds
    walks = min(walks, topology.num_nodes // 2)

    reports = []
    # Trial streams spawn from the cell's generator exactly as the legacy
    # per-trial generators did (one integer draw per trial), so the cell's
    # records are unchanged.
    for trial_seed in spawn_seed_sequences(rng, config.trials):
        pipeline = NetworkSizeEstimationPipeline(
            topology, num_walks=walks, rounds=pipeline_rounds, burn_in=config.burn_in
        )
        trial_rng = as_generator(trial_seed)
        reports.append(pipeline.run_katzir_baseline(trial_rng) if baseline else pipeline.run(trial_rng))
    return {
        "graph": graph,
        "method": method,
        "rounds": rounds,
        "num_walks": walks,
        "size_estimate": float(np.median([report.size_estimate for report in reports])),
        "true_size": topology.num_nodes,
        "relative_error": float(np.median([report.relative_error for report in reports])),
        "link_queries": int(np.mean([report.link_queries for report in reports])),
    }


def run(
    config: NetworkSizeConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E09 and return the size-estimation accuracy / query-cost table.

    The grid — graphs x (method, rounds) pairs — expands through the sweep
    axes into one flat execution plan, so the engine's pool spins up once
    for the whole table and records are identical for any worker count.
    """
    config = config or NetworkSizeConfig()
    engine = engine or ExecutionEngine()
    result = ExperimentResult(
        experiment_id="E09",
        title="Network size estimation: Algorithm 2 vs the [KLSC14] baseline",
        claim=(
            "Theorem 27 / Section 5.1.5: increasing the per-walk round count t lets the "
            "estimator use fewer walks, cutting burn-in link queries while keeping accuracy"
        ),
        columns=[
            "graph",
            "method",
            "rounds",
            "num_walks",
            "size_estimate",
            "true_size",
            "relative_error",
            "link_queries",
        ],
    )

    graph_rng_seed, cell_seed = spawn_seed_sequences(seed, 2)
    # One pinned integer seed per graph, drawn in a fixed order so both
    # graphs — shared by every cell that names them — are pure functions of
    # the experiment seed.
    graph_rng = as_generator(graph_rng_seed)
    graph_seeds = {
        "expander": int(graph_rng.integers(0, 2**31 - 1)),
        "powerlaw": int(graph_rng.integers(0, 2**31 - 1)),
    }

    # [KLSC14] baseline: same accuracy target, single collision round, so
    # its walk count follows the baseline's own formula (rounds shows as 0).
    method_rows = tuple(("algorithm2", rounds) for rounds in config.rounds_grid) + (
        ("katzir_baseline", 0),
    )
    axes = (
        GridAxis("graph", ("expander", "powerlaw")),
        ZipAxis(("method", "rounds"), method_rows),
    )
    settings = [
        {"config": config, "graph_seed": graph_seeds[point["graph"]], **point}
        for point in expand_axes(axes, seed=0)
    ]
    for record in engine.map(_e09_cell, settings, cell_seed):
        result.add(**record)

    result.notes.append(
        "for each graph, compare link_queries of algorithm2 at large t against the "
        "katzir_baseline row at comparable relative_error"
    )
    return result


__all__ = ["NetworkSizeConfig", "run"]
