"""E09 — Theorem 27 / Section 5.1.5: network size estimation and query cost.

Algorithm 2 trades the number of walks against the number of collision-
counting rounds (``n²t`` fixed), which pays off when burn-in is expensive:
fewer walks ⇒ fewer burn-in link queries. The [KLSC14] baseline is the
``t = 0`` extreme (collisions of one stationary configuration only) and
therefore needs many more walks for the same accuracy. The experiment runs
the full pipeline at several ``t`` on an expander and on a skewed-degree
graph, reporting accuracy and link queries, plus the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core import bounds
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.netsize.pipeline import NetworkSizeEstimationPipeline
from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator, spawn_generators


@dataclass(frozen=True)
class NetworkSizeConfig:
    """Parameters of experiment E09."""

    expander_size: int = 2000
    expander_degree: int = 4
    powerlaw_size: int = 2000
    powerlaw_edges: int = 3
    rounds_grid: tuple[int, ...] = (4, 16, 64)
    epsilon: float = 0.25
    delta: float = 0.2
    burn_in: int = 60
    trials: int = 3

    @classmethod
    def quick(cls) -> "NetworkSizeConfig":
        return cls(
            expander_size=600,
            powerlaw_size=600,
            rounds_grid=(4, 16),
            burn_in=30,
            trials=1,
        )


def _graphs(config: NetworkSizeConfig, seed: SeedLike):
    rng = as_generator(seed)
    expander_graph = nx.random_regular_graph(
        config.expander_degree, config.expander_size, seed=int(rng.integers(0, 2**31 - 1))
    )
    powerlaw_graph = nx.powerlaw_cluster_graph(
        config.powerlaw_size, config.powerlaw_edges, 0.1, seed=int(rng.integers(0, 2**31 - 1))
    )
    yield NetworkXTopology(expander_graph, name="expander")
    yield NetworkXTopology(powerlaw_graph, name="powerlaw")


def _pipeline_trial(
    topology: NetworkXTopology,
    num_walks: int,
    rounds: int,
    burn_in: int,
    baseline: bool,
    rng: np.random.Generator,
) -> dict[str, float]:
    """One pipeline run, as a module-level scheduler task (picklable)."""
    pipeline = NetworkSizeEstimationPipeline(
        topology, num_walks=num_walks, rounds=rounds, burn_in=burn_in
    )
    report = pipeline.run_katzir_baseline(rng) if baseline else pipeline.run(rng)
    return {
        "relative_error": report.relative_error,
        "link_queries": report.link_queries,
        "size_estimate": report.size_estimate,
    }


def run(
    config: NetworkSizeConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E09 and return the size-estimation accuracy / query-cost table.

    The pipeline trials are independent but cannot be batched (each drives
    its own burn-in / degree-estimation / size-estimation stages), so they
    run through the engine scheduler — across worker processes when the
    engine has ``workers > 1``, with identical records either way.
    """
    config = config or NetworkSizeConfig()
    engine = engine or ExecutionEngine()
    result = ExperimentResult(
        experiment_id="E09",
        title="Network size estimation: Algorithm 2 vs the [KLSC14] baseline",
        claim=(
            "Theorem 27 / Section 5.1.5: increasing the per-walk round count t lets the "
            "estimator use fewer walks, cutting burn-in link queries while keeping accuracy"
        ),
        columns=[
            "graph",
            "method",
            "rounds",
            "num_walks",
            "size_estimate",
            "true_size",
            "relative_error",
            "link_queries",
        ],
    )

    rngs = spawn_generators(seed, 4)
    graphs = list(_graphs(config, rngs[0]))

    # Lay out every pipeline trial as one flat execution plan so the engine
    # can fan all of them out at once; ``rows`` remembers how consecutive
    # blocks of ``trials`` outputs aggregate into table rows.
    settings: list[dict] = []
    rows: list[dict] = []
    for topology in graphs:
        degrees = np.asarray(topology.degree_of(np.arange(topology.num_nodes)))
        # Walk budget from Theorem 27 at each t (B(t) approximated by the
        # expander-style constant; the shape comparison is what matters).
        for rounds in config.rounds_grid:
            local_mixing = 2.0
            walks = bounds.theorem27_walks_required(
                topology.num_nodes,
                topology.num_edges,
                local_mixing,
                rounds,
                config.epsilon,
                config.delta,
            )
            walks = min(walks, topology.num_nodes // 2)
            rows.append(
                {"graph": topology.name, "method": "algorithm2", "rounds": rounds,
                 "num_walks": walks, "true_size": topology.num_nodes}
            )
            settings.extend(
                [{"topology": topology, "num_walks": walks, "rounds": rounds,
                  "burn_in": config.burn_in, "baseline": False}] * config.trials
            )

        # [KLSC14] baseline: same accuracy target, single collision round,
        # so the walk count follows the baseline's own formula.
        baseline_walks = bounds.katzir_walks_required(
            topology.num_nodes, degrees, config.epsilon, config.delta
        )
        baseline_walks = min(baseline_walks, topology.num_nodes // 2)
        rows.append(
            {"graph": topology.name, "method": "katzir_baseline", "rounds": 0,
             "num_walks": baseline_walks, "true_size": topology.num_nodes}
        )
        settings.extend(
            [{"topology": topology, "num_walks": baseline_walks, "rounds": 1,
              "burn_in": config.burn_in, "baseline": True}] * config.trials
        )

    outputs = engine.map(_pipeline_trial, settings, rngs[1])
    for row_index, row in enumerate(rows):
        block = outputs[row_index * config.trials : (row_index + 1) * config.trials]
        result.add(
            graph=row["graph"],
            method=row["method"],
            rounds=row["rounds"],
            num_walks=row["num_walks"],
            size_estimate=float(np.median([o["size_estimate"] for o in block])),
            true_size=row["true_size"],
            relative_error=float(np.median([o["relative_error"] for o in block])),
            link_queries=int(np.mean([o["link_queries"] for o in block])),
        )

    result.notes.append(
        "for each graph, compare link_queries of algorithm2 at large t against the "
        "katzir_baseline row at comparable relative_error"
    )
    return result


__all__ = ["NetworkSizeConfig", "run"]
