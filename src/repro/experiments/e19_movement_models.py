"""E19 — Section 6.1 extension: density estimation under perturbed movement.

The paper's analysis assumes a pure uniform random walk; Section 6.1 asks
what happens under more realistic movement. The experiment compares four
movement models on the same torus and budget:

* the uniform random walk (the analysed baseline),
* a lazy walk (agents sometimes stay put) — still unbiased, weaker local
  mixing, so somewhat less accurate,
* a biased walk (all agents drift in +x) — relative motion is unchanged, so
  the estimator keeps working,
* a collision-avoiding walk (agents flee after encounters) — encounter rates
  drop below the density, producing the downward bias field studies report
  for real ants [GPT93, NTD05].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon
from repro.core.estimator import RandomWalkDensityEstimator
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_generators
from repro.walks.movement import (
    BiasedTorusWalk,
    CollisionAvoidingWalk,
    LazyRandomWalk,
    UniformRandomWalk,
)


@dataclass(frozen=True)
class MovementModelsConfig:
    """Parameters of experiment E19."""

    side: int = 40
    num_agents: int = 320
    rounds: int = 300
    lazy_probability: float = 0.5
    bias: float = 0.3
    avoidance_steps: int = 2
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "MovementModelsConfig":
        return cls(side=30, num_agents=180, rounds=120, trials=1)


def run(config: MovementModelsConfig | None = None, seed: SeedLike = 0) -> ExperimentResult:
    """Run E19 and return the movement-model ablation table."""
    config = config or MovementModelsConfig()
    topology = Torus2D(config.side)
    density = (config.num_agents - 1) / topology.num_nodes

    models = [
        UniformRandomWalk(),
        LazyRandomWalk(stay_probability=config.lazy_probability),
        BiasedTorusWalk(bias=config.bias),
        CollisionAvoidingWalk(avoidance_steps=config.avoidance_steps),
    ]

    result = ExperimentResult(
        experiment_id="E19",
        title="Density estimation under perturbed movement models",
        claim=(
            "Section 6.1 extension: lazy and uniformly biased walks keep the estimator "
            "unbiased (at some accuracy cost); collision-avoiding movement depresses the "
            "encounter rate below the density"
        ),
        columns=[
            "movement_model",
            "mean_estimate",
            "true_density",
            "relative_bias",
            "empirical_epsilon",
        ],
    )

    rngs = spawn_generators(seed, len(models) * config.trials)
    rng_index = 0
    for model in models:
        means = []
        epsilons = []
        for _ in range(config.trials):
            estimator = RandomWalkDensityEstimator(
                topology, config.num_agents, config.rounds, movement=model
            )
            run_result = estimator.run(rngs[rng_index])
            rng_index += 1
            means.append(run_result.mean_estimate())
            epsilons.append(empirical_epsilon(run_result.estimates, density, config.delta))
        mean_estimate = float(np.mean(means))
        result.add(
            movement_model=model.name,
            mean_estimate=mean_estimate,
            true_density=density,
            relative_bias=(mean_estimate - density) / density,
            empirical_epsilon=float(np.mean(epsilons)),
        )

    result.notes.append(
        "uniform, lazy, and biased walks should show near-zero relative bias; the "
        "collision-avoiding walk should be biased downwards"
    )
    return result


__all__ = ["MovementModelsConfig", "run"]
