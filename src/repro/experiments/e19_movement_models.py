"""E19 — Section 6.1 extension: density estimation under perturbed movement.

The paper's analysis assumes a pure uniform random walk; Section 6.1 asks
what happens under more realistic movement. The experiment compares four
movement models on the same torus and budget:

* the uniform random walk (the analysed baseline),
* a lazy walk (agents sometimes stay put) — still unbiased, weaker local
  mixing, so somewhat less accurate,
* a biased walk (all agents drift in +x) — relative motion is unchanged, so
  the estimator keeps working,
* a collision-avoiding walk (agents flee after encounters) — encounter rates
  drop below the density, producing the downward bias field studies report
  for real ants [GPT93, NTD05].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import empirical_epsilon
from repro.core.kernel import run_kernel
from repro.core.simulation import SimulationConfig
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike
from repro.walks.movement import (
    BiasedTorusWalk,
    CollisionAvoidingWalk,
    LazyRandomWalk,
    UniformRandomWalk,
)


@dataclass(frozen=True)
class MovementModelsConfig:
    """Parameters of experiment E19."""

    side: int = 40
    num_agents: int = 320
    rounds: int = 300
    lazy_probability: float = 0.5
    bias: float = 0.3
    avoidance_steps: int = 2
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "MovementModelsConfig":
        return cls(side=30, num_agents=180, rounds=120, trials=1)


def _movement_cell(
    side: int,
    num_agents: int,
    rounds: int,
    movement,
    delta: float,
    trials: int,
    *,
    rng: np.random.Generator,
) -> dict[str, float]:
    """One movement model: all trials as a single batched kernel simulation.

    Every catalog model — the collision-avoiding walk included, since its
    vectorization — is batch-safe, so the whole ablation runs on the
    kernel's ``(R, n)`` matrix path.
    """
    topology = Torus2D(side)
    density = (num_agents - 1) / topology.num_nodes
    batch = run_kernel(
        topology,
        SimulationConfig(num_agents=num_agents, rounds=rounds, movement=movement),
        trials,
        rng,
    )
    estimates = batch.estimates()  # (trials, n)
    mean_estimate = float(estimates.mean())
    return {
        "movement_model": movement.name,
        "mean_estimate": mean_estimate,
        "true_density": density,
        "relative_bias": (mean_estimate - density) / density,
        "empirical_epsilon": float(
            np.mean([empirical_epsilon(row, density, delta) for row in estimates])
        ),
    }


def run(
    config: MovementModelsConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E19 and return the movement-model ablation table.

    Each movement model is one plan cell, and within a cell all trials run
    as one batched ``(trials, n)`` kernel simulation.
    """
    config = config or MovementModelsConfig()
    engine = engine or ExecutionEngine()

    models = [
        UniformRandomWalk(),
        LazyRandomWalk(stay_probability=config.lazy_probability),
        BiasedTorusWalk(bias=config.bias),
        CollisionAvoidingWalk(avoidance_steps=config.avoidance_steps),
    ]

    result = ExperimentResult(
        experiment_id="E19",
        title="Density estimation under perturbed movement models",
        claim=(
            "Section 6.1 extension: lazy and uniformly biased walks keep the estimator "
            "unbiased (at some accuracy cost); collision-avoiding movement depresses the "
            "encounter rate below the density"
        ),
        columns=[
            "movement_model",
            "mean_estimate",
            "true_density",
            "relative_bias",
            "empirical_epsilon",
        ],
    )

    settings = [
        {
            "side": config.side,
            "num_agents": config.num_agents,
            "rounds": config.rounds,
            "movement": model,
            "delta": config.delta,
            "trials": config.trials,
        }
        for model in models
    ]
    for record in engine.map(_movement_cell, settings, seed):
        result.add(**record)

    result.notes.append(
        "uniform, lazy, and biased walks should show near-zero relative bias; the "
        "collision-avoiding walk should be biased downwards"
    )
    return result


__all__ = ["MovementModelsConfig", "run"]
