"""E08 — Lemma 19: local mixing sums B(t) per topology.

The quantity that translates re-collision bounds into estimation accuracy is
``B(t) = Σ_{m<=t} β(m)``. Section 4 derives its growth per topology:
``Θ(sqrt(t))`` on the ring, ``Θ(log t)`` on the 2-D torus, and ``O(1)`` on
3-D tori, hypercubes, and expanders. The experiment measures B(t) at several
``t`` for each topology so the growth (and the divergence from *global*
mixing behaviour) is visible in one table.
"""

from __future__ import annotations

from dataclasses import dataclass


import numpy as np

from repro.core import bounds
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.expander import RegularExpander
from repro.topology.hypercube import Hypercube
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D
from repro.topology.torus_kd import TorusKD
from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences
from repro.walks.recollision import recollision_profile


@dataclass(frozen=True)
class LocalMixingConfig:
    """Parameters of experiment E08."""

    torus_side: int = 100
    ring_size: int = 10000
    torus3d_side: int = 22
    hypercube_dims: int = 12
    expander_size: int = 2000
    expander_degree: int = 4
    checkpoints: tuple[int, ...] = (10, 40, 160)
    trials: int = 20000

    @classmethod
    def quick(cls) -> "LocalMixingConfig":
        return cls(
            torus_side=50,
            ring_size=2000,
            torus3d_side=12,
            hypercube_dims=10,
            expander_size=500,
            checkpoints=(10, 40),
            trials=4000,
        )


def _profile_cell(topology, max_offset: int, trials: int, *, rng: np.random.Generator):
    """One cell: the full re-collision profile of one topology (picklable)."""
    return recollision_profile(topology, max_offset, trials=trials, seed=rng)


def run(
    config: LocalMixingConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E08 and return the B(t) growth table.

    Each topology's profile measurement is one cell of a single execution
    plan (cell seeds match the legacy per-topology generators, so records
    are unchanged by the migration and identical for any worker count).
    """
    config = config or LocalMixingConfig()
    engine = engine or ExecutionEngine()
    max_offset = max(config.checkpoints)
    children = spawn_seed_sequences(seed, 8)
    expander = RegularExpander(
        config.expander_size, config.expander_degree, seed=as_generator(children[0])
    )

    topologies = [
        Ring(config.ring_size),
        Torus2D(config.torus_side),
        TorusKD(config.torus3d_side, 3),
        Hypercube(config.hypercube_dims),
        expander,
    ]
    theory = {
        "ring": lambda t: bounds.local_mixing_sum_ring(t),
        "torus2d": lambda t: bounds.local_mixing_sum_torus2d(t),
        "torus_3d": lambda t: bounds.local_mixing_sum_torus_kd(t, 3),
        "hypercube": lambda t: bounds.local_mixing_sum_hypercube(t, 2**config.hypercube_dims),
        expander.name: lambda t: bounds.local_mixing_sum_expander(
            t, expander.second_eigenvalue, expander.num_nodes
        ),
    }

    result = ExperimentResult(
        experiment_id="E08",
        title="Local mixing sum B(t) growth per topology",
        claim=(
            "Section 4: B(t) grows like sqrt(t) on the ring, log(t) on the 2-D torus, "
            "and stays O(1) on the 3-D torus, hypercube, and expander"
        ),
        columns=["topology"]
        + [f"B_at_{t}" for t in config.checkpoints]
        + [f"theory_at_{t}" for t in config.checkpoints]
        + ["growth_ratio"],
    )

    settings = [
        {"topology": topology, "max_offset": max_offset, "trials": config.trials}
        for topology in topologies
    ]
    profiles = engine.map(_profile_cell, settings, as_generator(children[1]))
    for topology, profile in zip(topologies, profiles):
        cumulative = profile.cumulative()
        record: dict = {"topology": topology.name}
        values = []
        for checkpoint in config.checkpoints:
            value = float(cumulative[checkpoint])
            record[f"B_at_{checkpoint}"] = value
            values.append(value)
        for checkpoint in config.checkpoints:
            record[f"theory_at_{checkpoint}"] = float(theory[topology.name](checkpoint))
        # Growth of the measured B(t) between the first and last checkpoint;
        # close to 1 means B(t) has already saturated (strong local mixing).
        record["growth_ratio"] = values[-1] / values[0] if values[0] > 0 else float("inf")
        result.records.append(record)

    result.notes.append(
        "growth_ratio compares B at the last and first checkpoints: large for the ring, "
        "moderate for the 2-D torus, near 1 for the strongly locally mixing topologies"
    )
    return result


__all__ = ["LocalMixingConfig", "run"]
