"""E11 — Section 5.1.4: effect of the burn-in length on size estimation.

Walks that have not burned in long enough are still clustered near the seed
vertex; they collide far too often, the weighted collision rate ``C`` is
inflated, and the size estimate ``Ã = 1/C`` is biased *low*. The experiment
sweeps the burn-in length from zero up to (and beyond) the prescription of
Section 5.1.4 and reports how the bias disappears.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.netsize.pipeline import NetworkSizeEstimationPipeline
from repro.netsize.burn_in import required_burn_in_steps
from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class BurnInConfig:
    """Parameters of experiment E11."""

    graph_size: int = 1500
    graph_degree: int = 4
    num_walks: int = 150
    rounds: int = 32
    burn_in_grid: tuple[int, ...] = (0, 2, 5, 10, 25, 60)
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "BurnInConfig":
        return cls(graph_size=500, num_walks=80, rounds=16, burn_in_grid=(0, 5, 25), trials=1)


def _pipeline_cell(
    topology: NetworkXTopology,
    num_walks: int,
    rounds: int,
    burn_in: int,
    *,
    rng: np.random.Generator,
) -> float:
    """One size-estimation pipeline run (picklable plan cell)."""
    pipeline = NetworkSizeEstimationPipeline(
        topology, num_walks=num_walks, rounds=rounds, burn_in=burn_in
    )
    return float(pipeline.run(rng).size_estimate)


def run(
    config: BurnInConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E11 and return the burn-in sensitivity table.

    Every (burn-in, trial) pair is one cell of a single execution plan
    (cell seeds match the legacy trial generators, so records are unchanged
    by the migration and identical for any worker count).
    """
    config = config or BurnInConfig()
    engine = engine or ExecutionEngine()
    rng = as_generator(seed)
    graph = nx.random_regular_graph(
        config.graph_degree, config.graph_size, seed=int(rng.integers(0, 2**31 - 1))
    )
    topology = NetworkXTopology(graph, name="expander")
    prescribed = required_burn_in_steps(topology, config.delta)

    result = ExperimentResult(
        experiment_id="E11",
        title="Network size estimation vs burn-in length",
        claim=(
            "Section 5.1.4: a burn-in of O(log(|E|/delta)/(1-lambda)) steps removes the "
            "seed-clustering bias; shorter burn-ins underestimate the network size"
        ),
        columns=[
            "burn_in_steps",
            "median_size_estimate",
            "true_size",
            "median_relative_error",
            "signed_bias",
        ],
    )

    settings = [
        {
            "topology": topology,
            "num_walks": config.num_walks,
            "rounds": config.rounds,
            "burn_in": burn_in,
        }
        for burn_in in config.burn_in_grid
        for _ in range(config.trials)
    ]
    outputs = engine.map(_pipeline_cell, settings, rng)
    for index, burn_in in enumerate(config.burn_in_grid):
        estimates = outputs[index * config.trials : (index + 1) * config.trials]
        finite = [e for e in estimates if np.isfinite(e)]
        median_estimate = float(np.median(finite)) if finite else float("inf")
        error = (
            abs(median_estimate - topology.num_nodes) / topology.num_nodes
            if np.isfinite(median_estimate)
            else float("inf")
        )
        bias = (
            (median_estimate - topology.num_nodes) / topology.num_nodes
            if np.isfinite(median_estimate)
            else float("nan")
        )
        result.add(
            burn_in_steps=burn_in,
            median_size_estimate=median_estimate,
            true_size=topology.num_nodes,
            median_relative_error=error,
            signed_bias=bias,
        )

    result.notes.append(f"Section 5.1.4 prescribes roughly {prescribed} burn-in steps for this graph")
    return result


__all__ = ["BurnInConfig", "run"]
