"""E12 — Section 5.2: relative property-frequency estimation.

Agents separately track encounters with agents carrying a property P (e.g.
successful foragers). The paper shows the ratio ``d̃_P / d̃`` is a
``(1 ± O(ε))`` approximation of the true relative frequency ``f_P = d_P/d``
after the Theorem 1 round count for the *marked* density. The experiment
sweeps the round budget and reports how the frequency error falls, plus the
fraction of agents within the target ε.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.frequency import estimate_property_frequency
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class PropertyFrequencyConfig:
    """Parameters of experiment E12."""

    side: int = 40
    num_agents: int = 320
    marked_fraction: float = 0.25
    rounds_grid: tuple[int, ...] = (50, 100, 200, 400)
    epsilon: float = 0.25
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "PropertyFrequencyConfig":
        return cls(side=30, num_agents=180, rounds_grid=(50, 100), trials=1)


def run(config: PropertyFrequencyConfig | None = None, seed: SeedLike = 0) -> ExperimentResult:
    """Run E12 and return the property-frequency accuracy table."""
    config = config or PropertyFrequencyConfig()
    topology = Torus2D(config.side)
    result = ExperimentResult(
        experiment_id="E12",
        title="Relative property-frequency estimation (robot swarm / task allocation)",
        claim=(
            "Section 5.2: the ratio of marked to overall encounter rates approximates the "
            "true relative frequency f_P, improving with the round budget"
        ),
        columns=[
            "rounds",
            "true_frequency",
            "median_frequency_estimate",
            "median_relative_error",
            "fraction_within_epsilon",
        ],
    )

    rngs = spawn_generators(seed, len(config.rounds_grid) * config.trials)
    rng_index = 0
    for rounds in config.rounds_grid:
        errors = []
        estimates = []
        fractions = []
        for _ in range(config.trials):
            outcome = estimate_property_frequency(
                topology,
                config.num_agents,
                rounds,
                config.marked_fraction,
                rngs[rng_index],
            )
            rng_index += 1
            if outcome.true_frequency == 0:
                continue
            errors.append(float(np.median(outcome.frequency_relative_errors())))
            estimates.append(float(np.median(outcome.frequency_estimates)))
            fractions.append(outcome.fraction_within(config.epsilon))
            true_frequency = outcome.true_frequency
        result.add(
            rounds=rounds,
            true_frequency=true_frequency,
            median_frequency_estimate=float(np.median(estimates)),
            median_relative_error=float(np.median(errors)),
            fraction_within_epsilon=float(np.mean(fractions)),
        )

    result.notes.append(
        "fraction_within_epsilon should increase towards 1 as the round budget grows"
    )
    return result


__all__ = ["PropertyFrequencyConfig", "run"]
