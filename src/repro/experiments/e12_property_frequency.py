"""E12 — Section 5.2: relative property-frequency estimation.

Agents separately track encounters with agents carrying a property P (e.g.
successful foragers). The paper shows the ratio ``d̃_P / d̃`` is a
``(1 ± O(ε))`` approximation of the true relative frequency ``f_P = d_P/d``
after the Theorem 1 round count for the *marked* density. The experiment
sweeps the round budget and reports how the frequency error falls, plus the
fraction of agents within the target ε.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.frequency import estimate_property_frequency_batch
from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class PropertyFrequencyConfig:
    """Parameters of experiment E12."""

    side: int = 40
    num_agents: int = 320
    marked_fraction: float = 0.25
    rounds_grid: tuple[int, ...] = (50, 100, 200, 400)
    epsilon: float = 0.25
    delta: float = 0.1
    trials: int = 3

    @classmethod
    def quick(cls) -> "PropertyFrequencyConfig":
        return cls(side=30, num_agents=180, rounds_grid=(50, 100), trials=1)


def _frequency_cell(
    side: int,
    num_agents: int,
    rounds: int,
    marked_fraction: float,
    epsilon: float,
    trials: int,
    *,
    rng: np.random.Generator,
) -> dict[str, float]:
    """One grid point: all trials as a single batched kernel simulation."""
    outcomes = estimate_property_frequency_batch(
        Torus2D(side), num_agents, rounds, marked_fraction, trials, rng
    )
    errors, estimates, fractions = [], [], []
    true_frequency = float("nan")
    for outcome in outcomes:
        if outcome.true_frequency == 0:
            continue
        errors.append(float(np.median(outcome.frequency_relative_errors())))
        estimates.append(float(np.median(outcome.frequency_estimates)))
        fractions.append(outcome.fraction_within(epsilon))
        true_frequency = outcome.true_frequency
    return {
        "rounds": rounds,
        "true_frequency": true_frequency,
        "median_frequency_estimate": float(np.median(estimates)),
        "median_relative_error": float(np.median(errors)),
        "fraction_within_epsilon": float(np.mean(fractions)),
    }


def run(
    config: PropertyFrequencyConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E12 and return the property-frequency accuracy table.

    Each round budget is one plan cell, and within a cell all trials run as
    one batched ``(trials, n)`` kernel simulation (shared collision passes),
    so the experiment gains both the scheduler and the matrix path.
    """
    config = config or PropertyFrequencyConfig()
    engine = engine or ExecutionEngine()
    result = ExperimentResult(
        experiment_id="E12",
        title="Relative property-frequency estimation (robot swarm / task allocation)",
        claim=(
            "Section 5.2: the ratio of marked to overall encounter rates approximates the "
            "true relative frequency f_P, improving with the round budget"
        ),
        columns=[
            "rounds",
            "true_frequency",
            "median_frequency_estimate",
            "median_relative_error",
            "fraction_within_epsilon",
        ],
    )

    settings = [
        {
            "side": config.side,
            "num_agents": config.num_agents,
            "rounds": rounds,
            "marked_fraction": config.marked_fraction,
            "epsilon": config.epsilon,
            "trials": config.trials,
        }
        for rounds in config.rounds_grid
    ]
    for record in engine.map(_frequency_cell, settings, seed):
        result.add(**record)

    result.notes.append(
        "fraction_within_epsilon should increase towards 1 as the round budget grows"
    )
    return result


__all__ = ["PropertyFrequencyConfig", "run"]
