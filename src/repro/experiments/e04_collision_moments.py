"""E04 — Lemma 11 / Corollaries 15–16: moments of collision and visit counts.

Lemma 11 bounds every central moment of the pairwise collision count over
``t`` rounds by ``(t/A)·w^k·k!·log^k(2t)``. The experiment samples pairwise
collision counts, node-visit counts, and equalization counts empirically,
computes their central moments for k = 2, 3, 4, and compares against the
bound with the constant ``w`` fitted from the k = 2 measurement — checking
the *growth in k*, which is the content of the lemma.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike
from repro.walks.equalization import equalization_counts
from repro.walks.moments import central_moments, pairwise_collision_counts, visit_counts


@dataclass(frozen=True)
class CollisionMomentsConfig:
    """Parameters of experiment E04."""

    side: int = 40
    rounds: int = 128
    trials: int = 20000
    orders: tuple[int, ...] = (2, 3, 4)

    @classmethod
    def quick(cls) -> "CollisionMomentsConfig":
        return cls(side=30, rounds=64, trials=4000, orders=(2, 3))


def _bound_shape(rounds: int, num_nodes: int, order: int, fitted_constant: float) -> float:
    """Lemma 11's right-hand side with the fitted constant."""
    log_term = math.log(2.0 * rounds)
    return (rounds / num_nodes) * (fitted_constant**order) * math.factorial(order) * (log_term**order)


def _sample_cell(
    kind: str, side: int, rounds: int, trials: int, *, rng: np.random.Generator
) -> np.ndarray:
    """One measurement cell: a vector of count samples of the given kind."""
    topology = Torus2D(side)
    if kind == "pair":
        return pairwise_collision_counts(topology, rounds, trials=trials, seed=rng)
    if kind == "visit":
        return visit_counts(topology, rounds, trials=trials, seed=rng)
    return equalization_counts(topology, rounds, trials=trials, seed=rng)


def run(
    config: CollisionMomentsConfig | None = None,
    seed: SeedLike = 0,
    engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Run E04 and return the moment-bound comparison table.

    The three sample families are independent cells of one execution plan
    (cell seeds match the legacy per-family generators, so records are
    unchanged by the migration and identical for any worker count).
    """
    config = config or CollisionMomentsConfig()
    engine = engine or ExecutionEngine()
    topology = Torus2D(config.side)

    base = {"side": config.side, "rounds": config.rounds, "trials": config.trials}
    pair_samples, visit_samples, equal_samples = engine.map(
        _sample_cell,
        [{"kind": "pair", **base}, {"kind": "visit", **base}, {"kind": "equal", **base}],
        seed,
    )

    pair_moments = central_moments(pair_samples, config.orders)
    visit_moments = central_moments(visit_samples, config.orders)
    equal_moments = central_moments(equal_samples, config.orders)

    # Fit w so the k = 2 bound matches the measurement exactly, then test k > 2.
    base = (config.rounds / topology.num_nodes) * 2.0 * math.log(2.0 * config.rounds) ** 2
    fitted_constant = math.sqrt(max(pair_moments[2], 1e-12) / base)

    result = ExperimentResult(
        experiment_id="E04",
        title="Central moments of collision, visit, and equalization counts (2-D torus)",
        claim=(
            "Lemma 11 / Corollaries 15-16: k-th central moment grows at most like "
            "(t/A) * w^k * k! * log^k(2t)"
        ),
        columns=[
            "order",
            "pair_collision_moment",
            "visit_count_moment",
            "equalization_moment",
            "lemma11_bound_fitted",
            "within_bound",
        ],
    )
    for order in config.orders:
        bound_value = _bound_shape(config.rounds, topology.num_nodes, order, fitted_constant)
        result.add(
            order=order,
            pair_collision_moment=abs(pair_moments[order]),
            visit_count_moment=abs(visit_moments[order]),
            equalization_moment=abs(equal_moments[order]),
            lemma11_bound_fitted=bound_value,
            within_bound=bool(abs(pair_moments[order]) <= bound_value * 4.0),
        )
    result.notes.append(
        f"constant w fitted on k=2: {fitted_constant:.4f}; "
        f"expected collision count t/A = {config.rounds / topology.num_nodes:.4f}, "
        f"measured mean = {float(np.mean(pair_samples)):.4f}"
    )
    return result


__all__ = ["CollisionMomentsConfig", "run"]
