"""Registry-derived API surface: listings, JSON schemas, OpenAPI document.

Nothing in this module is hand-maintained per workload. Every listing and
every schema is generated mechanically from the three registries the batch
stack already owns:

* :data:`repro.experiments.EXPERIMENTS` — experiment ids, their one-line
  summaries (module docstrings), and their config dataclasses (field names,
  JSON types, defaults);
* :data:`repro.dynamics.scenario.SCENARIOS` — the scenario catalog
  (names, descriptions, default geometry);
* :class:`repro.sweeps.SweepSpec` / :class:`~repro.sweeps.TargetSpec` —
  the sweep-spec fields.

Registering a new experiment or scenario therefore *is* the API change:
``/openapi.json``, ``repro serve schema``, ``repro list --json``, and the
submission validators all pick it up on the next call with no endpoint
table to edit.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Any, Mapping

from repro import __version__
from repro.dynamics.scenario import SCENARIOS, build_scenario, scenario_names
from repro.experiments import EXPERIMENTS

# ----------------------------------------------------------------------
# Python type hints -> JSON-schema fragments
# ----------------------------------------------------------------------


def json_type(hint: Any) -> dict[str, Any]:
    """JSON-schema fragment for one Python type hint.

    ``bool`` must be tested before ``int`` (bool subclasses int), and an
    optional hint (``X | None``) renders as the fragment for ``X`` with
    ``"nullable": true``. Unrecognised hints degrade to an unconstrained
    fragment rather than failing — the registry stays the source of truth
    even for types this mapper has never seen.
    """
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin in (typing.Union, getattr(__import__("types"), "UnionType", ())):
        non_none = [arg for arg in args if arg is not type(None)]
        if len(non_none) == 1 and len(args) == 2:
            fragment = json_type(non_none[0])
            fragment["nullable"] = True
            return fragment
        return {"anyOf": [json_type(arg) for arg in non_none]}
    if origin in (tuple, list):
        item = args[0] if args else Any
        return {"type": "array", "items": json_type(item)}
    if hint is bool:
        return {"type": "boolean"}
    if hint is int:
        return {"type": "integer"}
    if hint is float:
        return {"type": "number"}
    if hint is str:
        return {"type": "string"}
    return {}


def dataclass_schema(cls: type, *, description: str | None = None) -> dict[str, Any]:
    """JSON schema of a (frozen config) dataclass: fields, types, defaults."""
    hints = typing.get_type_hints(cls)
    properties: dict[str, Any] = {}
    for field in dataclasses.fields(cls):
        fragment = json_type(hints.get(field.name, Any))
        if field.default is not dataclasses.MISSING:
            fragment = {**fragment, "default": _plain(field.default)}
        elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            fragment = {**fragment, "default": _plain(field.default_factory())}  # type: ignore[misc]
        properties[field.name] = fragment
    schema: dict[str, Any] = {
        "type": "object",
        "properties": properties,
        "additionalProperties": False,
    }
    if description:
        schema["description"] = description
    return schema


def _plain(value: Any) -> Any:
    """Defaults as plain JSON values (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_plain(item) for item in value]
    return value


def _summary(module: Any) -> str:
    return (module.__doc__ or "").strip().splitlines()[0] if module.__doc__ else ""


# ----------------------------------------------------------------------
# Registry listings (shared by `repro list --json` and the API)
# ----------------------------------------------------------------------


def experiment_listing() -> list[dict[str, Any]]:
    """Machine-readable experiment registry, one entry per experiment."""
    listing = []
    for experiment_id in sorted(EXPERIMENTS):
        module, config_cls = EXPERIMENTS[experiment_id]
        listing.append(
            {
                "id": experiment_id,
                "summary": _summary(module),
                "config": config_cls.__name__,
                "config_schema": dataclass_schema(config_cls),
            }
        )
    return listing


def scenario_listing() -> list[dict[str, Any]]:
    """Machine-readable scenario catalog, one entry per catalog scenario."""
    listing = []
    for name in scenario_names():
        scenario = build_scenario(name)
        listing.append(
            {
                "name": name,
                "description": SCENARIOS[name].description,
                "rounds": scenario.rounds,
                "num_agents": scenario.num_agents,
                "topology": dict(scenario.topology),
                "events": len(scenario.events),
            }
        )
    return listing


def sweep_spec_schema() -> dict[str, Any]:
    """JSON schema of a sweep spec, generated from the spec dataclasses."""
    from repro.sweeps.spec import SweepSpec, TargetSpec

    target = dataclass_schema(TargetSpec)
    target["properties"]["kind"] = {"type": "string", "enum": ["experiment", "scenario"]}
    target["properties"]["axes"] = {
        "type": "array",
        "items": {
            "type": "object",
            "properties": {"kind": {"type": "string", "enum": ["grid", "zip", "random"]}},
            "required": ["kind"],
        },
    }
    spec = dataclass_schema(SweepSpec)
    spec["properties"]["targets"] = {"type": "array", "items": target}
    spec["required"] = ["name", "targets"]
    return spec


# ----------------------------------------------------------------------
# Submission schemas
# ----------------------------------------------------------------------


def submission_schema() -> dict[str, Any]:
    """The schema of a ``POST /jobs`` body: one of the three workload kinds."""
    experiment_ids = sorted(EXPERIMENTS)
    experiment = {
        "type": "object",
        "description": "Run one registered experiment (optionally with config overrides).",
        "properties": {
            "kind": {"type": "string", "enum": ["experiment"]},
            "name": {"type": "string", "enum": experiment_ids},
            "seed": {"type": "integer", "default": 0},
            "quick": {"type": "boolean", "default": False},
            "overrides": {
                "type": "object",
                "description": "config-field overrides; validated per experiment "
                "(see each entry's config_schema in /experiments)",
            },
        },
        "required": ["kind", "name"],
        "additionalProperties": False,
    }
    scenario = {
        "type": "object",
        "description": "Track one catalog scenario with the online estimators "
        "(streamable per round via /jobs/<id>/stream).",
        "properties": {
            "kind": {"type": "string", "enum": ["scenario"]},
            "name": {"type": "string", "enum": scenario_names()},
            "seed": {"type": "integer", "default": 0},
            "quick": {"type": "boolean", "default": False},
            "replicates": {"type": "integer", "minimum": 1, "default": 8},
            "rounds": {"type": "integer", "minimum": 2, "nullable": True},
            "side": {"type": "integer", "minimum": 2, "nullable": True},
            "num_agents": {"type": "integer", "minimum": 2, "nullable": True},
        },
        "required": ["kind", "name"],
        "additionalProperties": False,
    }
    sweep = {
        "type": "object",
        "description": "Run a declarative parameter sweep to completion.",
        "properties": {
            "kind": {"type": "string", "enum": ["sweep"]},
            "spec": sweep_spec_schema(),
        },
        "required": ["kind", "spec"],
        "additionalProperties": False,
    }
    return {"oneOf": [experiment, scenario, sweep]}


# ----------------------------------------------------------------------
# OpenAPI
# ----------------------------------------------------------------------


def openapi_document(routes: Mapping[str, Mapping[str, str]] | None = None) -> dict[str, Any]:
    """The daemon's OpenAPI 3 document, generated from the registries.

    ``routes`` maps ``"METHOD /path"`` to ``{"summary": ...}`` and comes
    from the API layer's route table, so the path list in the document is
    the same object the dispatcher matches against — it cannot drift.
    """
    paths: dict[str, Any] = {}
    for route, info in (routes or {}).items():
        method, _, path = route.partition(" ")
        entry = paths.setdefault(path, {})
        operation: dict[str, Any] = {"summary": info.get("summary", "")}
        if route == "POST /jobs":
            operation["requestBody"] = {
                "required": True,
                "content": {"application/json": {"schema": submission_schema()}},
            }
        if path == "/jobs/{id}/stream":
            operation["responses"] = {
                "200": {
                    "description": "server-sent events: one `round` event per simulation "
                    "round (scenario jobs), then one `final` event with the full payload",
                    "content": {"text/event-stream": {}},
                }
            }
        else:
            operation["responses"] = {"200": {"description": "JSON response"}}
        entry[method.lower()] = operation
    return {
        "openapi": "3.0.3",
        "info": {
            "title": "repro serve",
            "description": "Async job daemon over the density-estimation engine: "
            "submit experiments/scenarios/sweeps, poll, and stream per-round estimates.",
            "version": __version__,
        },
        "paths": paths,
        "components": {
            "schemas": {
                "Submission": submission_schema(),
                "SweepSpec": sweep_spec_schema(),
            }
        },
        "x-experiments": experiment_listing(),
        "x-scenarios": scenario_listing(),
    }


__all__ = [
    "dataclass_schema",
    "experiment_listing",
    "json_type",
    "openapi_document",
    "scenario_listing",
    "submission_schema",
    "sweep_spec_schema",
]
