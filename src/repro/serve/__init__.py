"""``repro serve``: async job daemon + HTTP API over the engine.

The service layer on top of the batch stack (engine, cache, sweeps, store,
telemetry). Five pieces, each its own module:

* :mod:`repro.serve.submit` — validated :class:`Submission` objects and the
  one execution path (shared with the CLI) whose cache keys make identical
  CLI and HTTP workloads the same content-addressed entry;
* :mod:`repro.serve.jobs` — bounded async job queue, worker-thread pool,
  per-client rate limits, persistence, single-flight dedupe via
  :meth:`RunCache.get_or_compute`;
* :mod:`repro.serve.stream` — backpressure-safe per-round SSE fan-out fed
  by the dynamics tracker's ``on_round`` hook (observation-only: the daemon
  layer never consumes a random draw);
* :mod:`repro.serve.schema` — listings, JSON schemas, and the OpenAPI
  document, generated mechanically from the experiment/scenario/sweep
  registries;
* :mod:`repro.serve.api` — the stdlib ``http.server`` front-end and the
  route table the OpenAPI document is rendered from.

Everything is stdlib + the package's existing dependencies; there is no
web framework.
"""

from repro.serve.jobs import (
    Job,
    JobManager,
    QueueFullError,
    RateLimitedError,
    TokenBucketLimiter,
    UnknownJobError,
)
from repro.serve.schema import (
    experiment_listing,
    openapi_document,
    scenario_listing,
    submission_schema,
)
from repro.serve.stream import RoundBroadcaster, sse_format
from repro.serve.submit import (
    CACHE_SCHEMA,
    Submission,
    execute_submission,
    run_submission,
)

__all__ = [
    "CACHE_SCHEMA",
    "Job",
    "JobManager",
    "QueueFullError",
    "RateLimitedError",
    "RoundBroadcaster",
    "Submission",
    "TokenBucketLimiter",
    "UnknownJobError",
    "execute_submission",
    "experiment_listing",
    "openapi_document",
    "run_submission",
    "scenario_listing",
    "sse_format",
    "submission_schema",
]
