"""Normalised job submissions: one execution path for the CLI and the daemon.

A :class:`Submission` is the validated, frozen form of "run this named
workload with these parameters" — an experiment from
:data:`repro.experiments.EXPERIMENTS` (optionally with config-field
overrides), a catalog scenario from :data:`repro.dynamics.scenario.SCENARIOS`
(optionally rescaled), or a full :class:`~repro.sweeps.SweepSpec`. The CLI's
``run`` / ``scenario run`` commands and the serve daemon's job queue both
normalise onto this type, which is what guarantees three properties the
service layer depends on:

* **shared cache identity** — :meth:`Submission.cache_key` is the single
  definition of a workload's content key, so a result computed by a CLI run
  is a cache hit for an identical HTTP submission (and vice versa);
* **shared payloads** — :func:`execute_submission` produces exactly the
  JSON document the CLI caches and prints, so every consumer of a key sees
  byte-identical results;
* **single-flight dedupe** — :func:`run_submission` routes computation
  through :meth:`RunCache.get_or_compute`, so identical concurrent
  submissions collapse to one engine execution.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Mapping, Optional

from repro import __version__
from repro.dynamics.driver import RoundListener, run_scenario
from repro.dynamics.scenario import SCENARIOS, Scenario, build_scenario, scenario_names
from repro.engine import ExecutionEngine, RunCache
from repro.experiments import EXPERIMENTS
from repro.experiments.base import ExperimentResult
from repro.utils.validation import require_integer

#: Bump when a cached payload layout changes; folded into every cache key.
#: (Moved here from ``repro.cli`` so the CLI and the daemon share it.)
CACHE_SCHEMA = 1

#: The kinds of workload a submission can name.
SUBMISSION_KINDS = ("experiment", "scenario", "sweep")

#: Scenario rescale parameters accepted by a scenario submission.
_SCENARIO_FIELDS = ("rounds", "side", "num_agents")


@dataclasses.dataclass(frozen=True)
class Submission:
    """One validated workload request (see the module docstring).

    Attributes
    ----------
    kind / name:
        What to run: ``experiment`` + id, ``scenario`` + catalog name, or
        ``sweep`` (``name`` is then the spec's own name).
    seed:
        Root seed of the run (sweeps carry their seed inside ``spec``).
    quick:
        Use the scaled-down configuration (experiments and scenarios).
    overrides:
        Experiment-config field overrides applied on top of the (quick or
        full) default config. Keys are validated against the dataclass.
    rounds / side / num_agents / replicates:
        Scenario rescaling and averaging parameters.
    spec:
        The full sweep-spec dict (``kind == "sweep"`` only).
    """

    kind: str
    name: str
    seed: int = 0
    quick: bool = False
    overrides: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    rounds: int | None = None
    side: int | None = None
    num_agents: int | None = None
    replicates: int = 8
    spec: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.kind not in SUBMISSION_KINDS:
            raise ValueError(
                f"unknown submission kind {self.kind!r}; known kinds: {list(SUBMISSION_KINDS)}"
            )
        require_integer(self.seed, "seed")
        if not isinstance(self.quick, bool):
            raise ValueError(f"quick must be a boolean, got {self.quick!r}")
        object.__setattr__(self, "overrides", dict(self.overrides))
        if self.kind == "experiment":
            object.__setattr__(self, "name", str(self.name).upper())
            if self.name not in EXPERIMENTS:
                raise KeyError(
                    f"unknown experiment id {self.name!r}; known ids: {sorted(EXPERIMENTS)}"
                )
            _, config_cls = EXPERIMENTS[self.name]
            known = {field.name for field in dataclasses.fields(config_cls)}
            unknown = sorted(set(self.overrides) - known)
            if unknown:
                raise ValueError(
                    f"unknown config fields {unknown} for {self.name}; "
                    f"known fields: {sorted(known)}"
                )
            self.build_experiment_config()  # fail fast on bad values
        elif self.kind == "scenario":
            if self.name not in SCENARIOS:
                raise KeyError(
                    f"unknown scenario {self.name!r}; known scenarios: {scenario_names()}"
                )
            if self.overrides:
                raise ValueError("scenario submissions take no config overrides")
            require_integer(self.replicates, "replicates", minimum=1)
            for field_name in _SCENARIO_FIELDS:
                value = getattr(self, field_name)
                if value is not None:
                    require_integer(value, field_name, minimum=2)
            self.build_scenario()  # fail fast (rounds floor, event fit, ...)
        else:  # sweep
            if self.spec is None:
                raise ValueError("sweep submissions need a 'spec' object")
            spec = self._sweep_spec()
            object.__setattr__(self, "name", spec.name)
            object.__setattr__(self, "spec", spec.to_dict())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Submission":
        """Build a submission from an untrusted JSON object, rejecting junk keys."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"a submission is a JSON object, got {type(payload).__name__}")
        data = dict(payload)
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown submission fields {unknown}; known fields: {sorted(known)}")
        if "kind" not in data:
            raise ValueError(f"a submission needs a 'kind' (one of {list(SUBMISSION_KINDS)})")
        if data.get("kind") != "sweep" and "name" not in data:
            raise ValueError("a submission needs a 'name' (experiment id or scenario name)")
        data.setdefault("name", "")
        return cls(**data)

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON form; round-trips through :meth:`from_payload`."""
        out: dict[str, Any] = {"kind": self.kind, "name": self.name, "seed": self.seed}
        if self.kind == "experiment":
            out["quick"] = self.quick
            if self.overrides:
                out["overrides"] = dict(self.overrides)
        elif self.kind == "scenario":
            out["quick"] = self.quick
            out["replicates"] = self.replicates
            for field_name in _SCENARIO_FIELDS:
                value = getattr(self, field_name)
                if value is not None:
                    out[field_name] = value
        else:
            out["spec"] = dict(self.spec or {})
        return out

    # ------------------------------------------------------------------
    # Workload construction
    # ------------------------------------------------------------------
    def build_experiment_config(self) -> Any:
        """The experiment's config dataclass with ``overrides`` applied."""
        _, config_cls = EXPERIMENTS[self.name]
        config = config_cls.quick() if self.quick else config_cls()
        if self.overrides:
            overrides = {
                key: tuple(value) if isinstance(value, list) else value
                for key, value in self.overrides.items()
            }
            config = dataclasses.replace(config, **overrides)
        return config

    def build_scenario(self) -> Scenario:
        """The (optionally rescaled) catalog scenario this submission names."""
        return build_scenario(
            self.name,
            rounds=self.rounds,
            side=self.side,
            num_agents=self.num_agents,
            quick=self.quick,
        )

    def _sweep_spec(self):
        from repro.sweeps import SweepSpec

        return SweepSpec.from_dict(self.spec)

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    def cache_key(self, cache: RunCache) -> str:
        """The submission's content key — the CLI's definitions, verbatim.

        Worker counts, telemetry, and the *simulating* backends are
        deliberately excluded: they never change records, only wall-clock.
        Two exceptions fold in: ``analytic`` — it returns expectations
        instead of samples, so when it is the process default it joins the
        key (``backend="analytic"``); and intra-kernel sharding — a
        sharded run seeds each replicate row from its own SeedSequence
        child instead of one shared stream, so its records differ from
        unsharded ones. The shard *count* is deliberately not in the key:
        results are bit-identical for every ``shard_workers=K``, so only
        the discipline switch matters. Simulating unsharded runs keep
        their historical keys. The package version is folded in so
        upgrades whose code changes could alter records miss.
        """
        from repro.core.kernel import get_default_backend, get_default_shard_workers

        extra: dict[str, Any] = {}
        if get_default_backend() == "analytic":
            extra["backend"] = "analytic"
        if get_default_shard_workers() is not None:
            extra["rng_discipline"] = "sharded"
        if self.kind == "experiment":
            return cache.key(
                kind="experiment",
                schema=CACHE_SCHEMA,
                version=__version__,
                experiment=self.name,
                quick=self.quick,
                seed=self.seed,
                config=repr(self.build_experiment_config()),
                **extra,
            )
        if self.kind == "scenario":
            return cache.key(
                kind="scenario",
                schema=CACHE_SCHEMA,
                version=__version__,
                scenario=repr(self.build_scenario()),
                replicates=self.replicates,
                seed=self.seed,
                **extra,
            )
        return cache.key(
            kind="sweep_job",
            schema=CACHE_SCHEMA,
            version=__version__,
            spec=dict(self.spec or {}),
            **extra,
        )


# ----------------------------------------------------------------------
# Payload shapes (what the cache stores and every consumer reads)
# ----------------------------------------------------------------------


def experiment_payload(result: ExperimentResult) -> dict[str, Any]:
    """The cached JSON document of one experiment run."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "claim": result.claim,
        "records": result.records,
        "columns": list(result.columns) if result.columns else None,
        "notes": result.notes,
    }


def result_from_payload(payload: Mapping[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`experiment_payload`."""
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        claim=payload["claim"],
        records=list(payload["records"]),
        columns=payload.get("columns"),
        notes=list(payload.get("notes", [])),
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def execute_submission(
    submission: Submission,
    *,
    engine: ExecutionEngine | None = None,
    cache: RunCache | None = None,
    workdir: str | Path | None = None,
    on_round: Optional[RoundListener] = None,
) -> dict[str, Any]:
    """Run ``submission`` and return its result payload (uncached).

    ``on_round`` streams per-round records for scenario submissions (it is
    ignored for the other kinds — experiments and sweeps have no per-round
    anytime estimate to stream). ``cache`` / ``workdir`` only matter for
    sweep submissions: cells checkpoint through ``cache`` and rows land in
    a result store under ``workdir``.
    """
    engine = engine or ExecutionEngine()
    if submission.kind == "experiment":
        module, _ = EXPERIMENTS[submission.name]
        result = module.run(submission.build_experiment_config(), seed=submission.seed, engine=engine)
        return experiment_payload(result)
    if submission.kind == "scenario":
        scenario = submission.build_scenario()
        outcome = run_scenario(
            scenario,
            replicates=submission.replicates,
            engine=engine,
            seed=submission.seed,
            on_round=on_round,
        )
        return {
            "scenario": scenario.to_dict(),
            "replicates": submission.replicates,
            "records": outcome.records(),
            "summary": outcome.summary(),
        }
    return _execute_sweep(submission, engine=engine, cache=cache, workdir=workdir)


def _execute_sweep(
    submission: Submission,
    *,
    engine: ExecutionEngine,
    cache: RunCache | None,
    workdir: str | Path | None,
) -> dict[str, Any]:
    from repro.store import ResultStore
    from repro.sweeps import run_sweep_spec

    spec = submission._sweep_spec()
    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-sweep-job-")
    store = ResultStore(Path(workdir) / "store")
    outcome = run_sweep_spec(spec, workers=engine.workers, cache=cache, store=store)
    if not outcome.complete:  # pragma: no cover - no max_cells on this path
        raise RuntimeError(f"sweep {spec.name!r} finished with pending cells")
    return {
        "spec": spec.to_dict(),
        "summary": outcome.summary(),
        "rows": store.select(),
    }


def run_submission(
    submission: Submission,
    *,
    cache: RunCache | None = None,
    engine: ExecutionEngine | None = None,
    workdir: str | Path | None = None,
    on_round: Optional[RoundListener] = None,
) -> tuple[dict[str, Any], str]:
    """Run ``submission`` through the shared result tier.

    Returns ``(payload, status)`` with status ``"hit"`` (loaded from the
    cache), ``"computed"`` (this call executed it), or ``"dedupe"`` (an
    identical concurrent call was already executing it; this one shares the
    single execution's payload). With ``cache=None`` the submission always
    executes (status ``"computed"``).

    Note: on a hit or dedupe the per-round stream never fires — there is no
    simulation to observe. Callers that stream should emit their own final
    event from the returned payload, which covers all three statuses.
    """
    if cache is None:
        return execute_submission(
            submission, engine=engine, cache=None, workdir=workdir, on_round=on_round
        ), "computed"
    key = submission.cache_key(cache)
    return cache.get_or_compute(
        key,
        lambda: execute_submission(
            submission, engine=engine, cache=cache, workdir=workdir, on_round=on_round
        ),
    )


__all__ = [
    "CACHE_SCHEMA",
    "SUBMISSION_KINDS",
    "Submission",
    "execute_submission",
    "experiment_payload",
    "result_from_payload",
    "run_submission",
]
