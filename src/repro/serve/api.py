"""Stdlib HTTP front-end: routes, handler, daemon lifecycle.

The route table below is the *only* place an endpoint is declared — the
dispatcher matches against it and :func:`repro.serve.schema.openapi_document`
renders it, so ``/openapi.json`` can never list a path the server does not
actually serve (and vice versa). Workload-level surface (which experiments,
which scenarios, which config fields) comes from the registries via
:mod:`repro.serve.schema`, not from this table.

The server is a :class:`http.server.ThreadingHTTPServer`: one thread per
connection, which SSE needs (a streaming response parks its thread for the
job's lifetime) and the stdlib gives us without any new dependency. Job
execution happens on the :class:`~repro.serve.jobs.JobManager` worker pool,
never on connection threads.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional

from repro import __version__
from repro.obs.telemetry import get_telemetry
from repro.serve.jobs import (
    JobManager,
    QueueFullError,
    RateLimitedError,
    UnknownJobError,
)
from repro.serve.schema import (
    experiment_listing,
    openapi_document,
    scenario_listing,
)
from repro.utils.serialization import dumps

#: Route table: ``"METHOD /path"`` (``{id}`` is a path parameter) -> summary.
#: Consumed by the dispatcher *and* the OpenAPI generator — one source.
ROUTES: dict[str, dict[str, str]] = {
    "GET /healthz": {"summary": "daemon readiness + worker-pool liveness"},
    "GET /openapi.json": {"summary": "this API, as an OpenAPI 3 document"},
    "GET /experiments": {"summary": "experiment registry with config schemas"},
    "GET /scenarios": {"summary": "scenario catalog"},
    "GET /jobs": {"summary": "all job records (most recent last)"},
    "POST /jobs": {"summary": "submit a workload; returns the job record"},
    "GET /jobs/{id}": {"summary": "poll one job's status record"},
    "GET /jobs/{id}/result": {"summary": "full result payload of a done job"},
    "GET /jobs/{id}/stream": {"summary": "server-sent per-round estimate events"},
    "DELETE /jobs/{id}": {"summary": "cancel a queued job"},
}

#: Cap on accepted request bodies (a sweep spec fits comfortably).
MAX_BODY_BYTES = 4 * 1024 * 1024


def _handler_name(method: str, route_path: str) -> str:
    """Method name of one route's handler, e.g. ``_route_jobs_id_stream_get``.

    Path parameters lose their braces and dots become underscores, so
    ``GET /jobs/{id}/stream`` -> ``_route_jobs_id_stream_get`` and
    ``GET /openapi.json`` -> ``_route_openapi_json_get``.
    """
    slug = route_path.strip("/")
    for old, new in (("/", "_"), ("{", ""), ("}", ""), (".", "_")):
        slug = slug.replace(old, new)
    return f"_route_{slug}_{method.lower()}"


def _match(route_path: str, path: str) -> dict[str, str] | None:
    """Match a concrete request path against a ``{param}`` template."""
    template_parts = route_path.strip("/").split("/")
    path_parts = path.strip("/").split("/")
    if len(template_parts) != len(path_parts):
        return None
    params: dict[str, str] = {}
    for template, concrete in zip(template_parts, path_parts):
        if template.startswith("{") and template.endswith("}"):
            if not concrete:
                return None
            params[template[1:-1]] = concrete
        elif template != concrete:
            return None
    return params


class ServeHandler(BaseHTTPRequestHandler):
    """One HTTP connection; ``self.server.manager`` is the job manager."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # Route access logs through telemetry counters instead of stderr
        # noise; the CLI's --verbose logging covers interactive debugging.
        get_telemetry().counter("serve.http.requests")

    def _send_json(
        self, payload: Any, *, status: int = 200, headers: dict[str, str] | None = None
    ) -> None:
        body = (payload if isinstance(payload, str) else dumps(payload)).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        headers = {}
        if retry_after is not None:
            # Retry-After is an integer number of seconds; round up so the
            # client never retries before a token is actually available.
            headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
        self._send_json({"error": message}, status=status, headers=headers)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except ValueError as error:
            raise ValueError(f"request body is not valid JSON: {error}") from None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        for route in ROUTES:
            route_method, _, route_path = route.partition(" ")
            if route_method != method:
                continue
            params = _match(route_path, path)
            if params is None:
                continue
            handler: Callable[..., None] = getattr(self, _handler_name(method, route_path))
            try:
                handler(**params)
            except UnknownJobError as error:
                self._send_error_json(404, str(error.args[0]))
            except RateLimitedError as error:
                self._send_error_json(429, str(error), retry_after=error.retry_after)
            except QueueFullError as error:
                self._send_error_json(503, str(error), retry_after=error.retry_after)
            except (KeyError, ValueError) as error:
                message = error.args[0] if isinstance(error, KeyError) and error.args else error
                self._send_error_json(400, str(message))
            except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                pass  # the client went away mid-response; nothing to answer
            return
        known = sorted({r.partition(" ")[2] for r in ROUTES})
        self._send_error_json(404, f"no route for {method} {path}; known paths: {known}")

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _route_healthz_get(self) -> None:
        health = self.manager.health()
        self._send_json(health, status=200 if health["status"] == "ok" else 503)

    def _route_openapi_json_get(self) -> None:
        self._send_json(openapi_document(ROUTES))

    def _route_experiments_get(self) -> None:
        self._send_json(experiment_listing())

    def _route_scenarios_get(self) -> None:
        self._send_json(scenario_listing())

    def _route_jobs_get(self) -> None:
        self._send_json([job.to_record() for job in self.manager.jobs()])

    def _route_jobs_post(self) -> None:
        payload = self._read_body()
        job = self.manager.submit(payload, client=self.client_address[0])
        self._send_json(job.to_record(), status=202)

    def _route_jobs_id_get(self, id: str) -> None:  # noqa: A002
        self._send_json(self.manager.get(id).to_record())

    def _route_jobs_id_result_get(self, id: str) -> None:  # noqa: A002
        try:
            payload = self.manager.result(id)
        except ValueError as error:
            job = self.manager.get(id)
            status = 409 if job.status in ("queued", "running") else 410
            self._send_error_json(status, str(error))
            return
        # dumps() here, not a re-serialisation downstream: every client of
        # the same cache key receives these exact bytes.
        self._send_json(dumps(payload))

    def _route_jobs_id_delete(self, id: str) -> None:  # noqa: A002
        if self.manager.cancel(id):
            self._send_json(self.manager.get(id).to_record())
        else:
            self._send_error_json(409, f"job {id} is already running or finished; cannot cancel")

    def _route_jobs_id_stream_get(self, id: str) -> None:  # noqa: A002
        job = self.manager.get(id)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is an unbounded response: close-delimited, no Content-Length.
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for frame in job.broadcaster.subscribe():
                self.wfile.write(frame)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            get_telemetry().counter("serve.stream.disconnects")
        self.close_connection = True


class ReproServer(ThreadingHTTPServer):
    """The daemon: a threading HTTP server bound to one :class:`JobManager`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], manager: JobManager):
        super().__init__(address, ServeHandler)
        self.manager = manager


def serve_forever(
    server: ReproServer, *, install_signal_handlers: bool = True
) -> None:
    """Run the daemon until SIGTERM/SIGINT (or ``server.shutdown()``).

    ``server.shutdown()`` blocks until ``serve_forever`` returns, so calling
    it from a signal handler that interrupted the serving thread would
    deadlock — the shutdown runs on a short-lived helper thread instead.
    Handlers are only installed on the main thread (tests drive the server
    from worker threads, where installing handlers raises).
    """
    if install_signal_handlers and threading.current_thread() is threading.main_thread():
        import signal

        def _shutdown(signum: int, frame: Optional[Any]) -> None:
            threading.Thread(target=server.shutdown, name="repro-serve-shutdown").start()

        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, _shutdown)
    server.manager.start()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.manager.stop()
        server.server_close()


__all__ = ["MAX_BODY_BYTES", "ROUTES", "ReproServer", "ServeHandler", "serve_forever"]
