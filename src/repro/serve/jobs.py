"""Async job queue over the engine: submit, poll, stream, dedupe, persist.

The :class:`JobManager` is the daemon's core. HTTP handlers (or tests) call
:meth:`~JobManager.submit` with a JSON payload; the manager validates it
into a :class:`~repro.serve.submit.Submission`, enqueues a :class:`Job`, and
a pool of worker *threads* drains the queue through
:func:`~repro.serve.submit.run_submission` — which routes every execution
through the shared content-addressed :class:`~repro.engine.RunCache`, so

* a previously completed identical workload returns immediately
  (status ``hit``, no engine execution), and
* identical *concurrent* submissions collapse to one engine execution
  (single-flight; the followers report status ``dedupe``), with every
  caller receiving the identical payload.

Worker threads (not processes) are deliberate: per-round streaming hooks
cannot cross a process boundary, so each job runs on an in-process
``ExecutionEngine(workers=1)`` and daemon concurrency comes from the thread
pool. Results stay bit-identical either way — the engine seeds replicates
from the plan index, never from scheduling order.

Admission control is two-layered and both layers map onto HTTP semantics:
a bounded queue (:class:`QueueFullError` → 503) and a per-client token
bucket (:class:`RateLimitedError` → 429), each carrying a ``retry_after``
hint.

Job records persist as one JSON file per job under ``jobs_dir`` (atomic
writes). On restart the manager reloads them: completed jobs keep their
cache key — payloads are re-served straight from the cache — queued jobs
re-enqueue, and jobs that were mid-run when the daemon died are marked
failed (the next identical submission is a plain cache hit if the leader
finished its store, a recompute otherwise).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.engine import ExecutionEngine, RunCache
from repro.obs.telemetry import get_telemetry
from repro.serve.stream import RoundBroadcaster
from repro.serve.submit import Submission, run_submission
from repro.utils.atomic import atomic_write_text
from repro.utils.serialization import dumps

JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: Statuses that are terminal — the record will never change again.
TERMINAL = frozenset({"done", "failed", "cancelled"})


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity (HTTP 503)."""

    def __init__(self, depth: int, retry_after: float):
        super().__init__(f"job queue is full ({depth} jobs queued); retry later")
        self.retry_after = retry_after


class RateLimitedError(RuntimeError):
    """The client exceeded its submission rate (HTTP 429)."""

    def __init__(self, client: str, retry_after: float):
        super().__init__(f"rate limit exceeded for client {client!r}")
        self.retry_after = retry_after


class UnknownJobError(KeyError):
    """No job with the requested id (HTTP 404)."""

    def __init__(self, job_id: str):
        super().__init__(f"unknown job id {job_id!r}")
        self.job_id = job_id


class TokenBucketLimiter:
    """Per-client token bucket: ``burst`` capacity refilled at ``rate``/s.

    ``rate=None`` disables limiting entirely. Buckets are created lazily per
    client key and pruned once full again (idle clients cost nothing).
    """

    def __init__(self, rate: float | None, burst: int = 10, *, clock=time.monotonic):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive (or None to disable), got {rate!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, tuple[float, float]] = {}  # client -> (tokens, stamp)
        self._lock = threading.Lock()

    def check(self, client: str) -> float | None:
        """Take one token for ``client``; returns ``None`` (admitted) or
        the seconds until the next token (rejected)."""
        if self.rate is None:
            return None
        now = self._clock()
        with self._lock:
            tokens, stamp = self._buckets.get(client, (float(self.burst), now))
            tokens = min(float(self.burst), tokens + (now - stamp) * self.rate)
            if tokens >= 1.0:
                tokens -= 1.0
                self._buckets[client] = (tokens, now)
                return None
            self._buckets[client] = (tokens, now)
            return (1.0 - tokens) / self.rate


class Job:
    """One submitted workload and its lifecycle record."""

    def __init__(self, job_id: str, submission: Submission, *, client: str = "") -> None:
        self.id = job_id
        self.submission = submission
        self.client = client
        self.status = "queued"
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.error: str | None = None
        self.key: str | None = None
        self.result_status: str | None = None  # hit / computed / dedupe
        self.result: dict[str, Any] | None = None
        self.broadcaster = RoundBroadcaster()
        self.cancel_requested = False

    def to_record(self) -> dict[str, Any]:
        """The persisted/polled JSON form (never includes the payload)."""
        return {
            "id": self.id,
            "status": self.status,
            "submission": self.submission.to_dict(),
            "client": self.client,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "key": self.key,
            "result_status": self.result_status,
        }


class JobManager:
    """Bounded queue + worker pool + persistence (see the module docstring).

    Parameters
    ----------
    cache:
        Shared result tier. ``None`` disables caching *and* dedupe (every
        submission executes); the daemon always passes a cache.
    jobs_dir:
        Directory for per-job JSON records; ``None`` disables persistence.
    workers:
        Worker **threads** draining the queue (not engine processes).
    queue_depth:
        Max jobs queued (not yet running) before submissions get 503.
    rate / burst:
        Per-client token bucket (submissions/second, bucket size).
        ``rate=None`` disables rate limiting.

    The manager starts idle: call :meth:`start` to launch the workers.
    (Tests exploit this — submit N identical jobs *before* starting the
    pool to deterministically exercise single-flight dedupe.)
    """

    def __init__(
        self,
        *,
        cache: RunCache | None = None,
        jobs_dir: str | Path | None = None,
        workers: int = 2,
        queue_depth: int = 64,
        rate: float | None = None,
        burst: int = 10,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth!r}")
        self.cache = cache
        self.jobs_dir = Path(jobs_dir) if jobs_dir is not None else None
        self.workers = workers
        self.queue_depth = queue_depth
        self.limiter = TokenBucketLimiter(rate, burst)
        self.engine = ExecutionEngine(workers=1)  # in-process: on_round hooks work
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._queue: list[str] = []
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self._counter = 0
        if self.jobs_dir is not None:
            self._restore()

    # ------------------------------------------------------------------
    # Submission / polling
    # ------------------------------------------------------------------
    def submit(
        self, payload: Mapping[str, Any] | Submission, *, client: str = ""
    ) -> Job:
        """Validate, admit, enqueue. Raises :class:`RateLimitedError`,
        :class:`QueueFullError`, or the submission's own ``ValueError`` /
        ``KeyError`` for malformed payloads."""
        tel = get_telemetry()
        retry_after = self.limiter.check(client)
        if retry_after is not None:
            tel.counter("serve.jobs.rate_limited")
            raise RateLimitedError(client, retry_after)
        submission = (
            payload if isinstance(payload, Submission) else Submission.from_payload(payload)
        )
        with self._lock:
            if len(self._queue) >= self.queue_depth:
                tel.counter("serve.jobs.rejected_full")
                raise QueueFullError(len(self._queue), retry_after=5.0)
            self._counter += 1
            job = Job(f"job-{self._counter:06d}", submission, client=client)
            if self.cache is not None:
                job.key = submission.cache_key(self.cache)
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._queue.append(job.id)
            tel.counter("serve.jobs.submitted")
            tel.gauge("serve.queue.depth", len(self._queue))
            self._wake.notify()
        self._persist(job)
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def result(self, job_id: str) -> dict[str, Any]:
        """The payload of a done job; reloads from the cache after a restart."""
        job = self.get(job_id)
        if job.status != "done":
            raise ValueError(f"job {job_id} is {job.status}, not done")
        if job.result is None and self.cache is not None and job.key is not None:
            job.result = self.cache.load(job.key)
        if job.result is None:
            raise ValueError(f"job {job_id} has no retrievable payload")
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; returns False once it is already running."""
        job = self.get(job_id)
        with self._lock:
            if job.status == "queued":
                job.cancel_requested = True
                job.status = "cancelled"
                job.finished = time.time()
                if job_id in self._queue:
                    self._queue.remove(job_id)
                get_telemetry().counter("serve.jobs.cancelled")
                cancelled = True
            else:
                cancelled = job.status == "cancelled"
        if cancelled:
            job.broadcaster.close({"job": job.id, "status": "cancelled"})
            self._persist(job)
        return cancelled

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return
            self._stopping = False
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"repro-serve-worker-{index}", daemon=True
                )
                self._threads.append(thread)
        for thread in self._threads:
            thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Drain-free stop: running jobs finish, queued jobs stay queued."""
        with self._lock:
            self._stopping = True
            self._wake.notify_all()
            threads, self._threads = self._threads, []
        for thread in threads:
            thread.join(timeout=timeout)

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for thread in self._threads if thread.is_alive())

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` body: worker-pool liveness + queue/job counts."""
        with self._lock:
            alive = sum(1 for thread in self._threads if thread.is_alive())
            expected = len(self._threads)
            counts: dict[str, int] = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                counts[job.status] += 1
            depth = len(self._queue)
        healthy = expected > 0 and alive == expected
        return {
            "status": "ok" if healthy else "degraded",
            "workers": {"expected": expected, "alive": alive},
            "queue_depth": depth,
            "jobs": counts,
        }

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopping:
                    self._wake.wait(timeout=0.5)
                if self._stopping:
                    return
                job_id = self._queue.pop(0)
                job = self._jobs[job_id]
                if job.status != "queued":  # cancelled while queued
                    continue
                job.status = "running"
                job.started = time.time()
                get_telemetry().gauge("serve.queue.depth", len(self._queue))
            self._persist(job)
            self._execute(job)

    def _execute(self, job: Job) -> None:
        tel = get_telemetry()
        start = time.perf_counter()
        workdir = None
        if self.jobs_dir is not None:
            workdir = self.jobs_dir / f"{job.id}-work"
        try:
            payload, status = run_submission(
                job.submission,
                cache=self.cache,
                engine=self.engine,
                workdir=workdir,
                on_round=job.broadcaster.publish,
            )
        except Exception as error:
            job.status = "failed"
            job.error = f"{type(error).__name__}: {error}"
            job.finished = time.time()
            tel.counter("serve.jobs.failed")
            job.broadcaster.close({"job": job.id, "status": "failed", "error": job.error})
        else:
            job.result = payload
            job.result_status = status
            job.status = "done"
            job.finished = time.time()
            tel.counter("serve.jobs.completed")
            tel.counter(f"serve.jobs.{status}")  # hit / computed / dedupe
            if status == "computed":
                tel.counter("serve.jobs.executed")
            tel.timer("serve.job_seconds", time.perf_counter() - start)
            # The final SSE event carries the job's full payload: on a
            # cache hit or dedupe no per-round events ever fired, so this
            # is the one event every subscriber is guaranteed to get.
            job.broadcaster.close(
                {"job": job.id, "status": "done", "result_status": status, "result": payload}
            )
        self._persist(job)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _persist(self, job: Job) -> None:
        if self.jobs_dir is None:
            return
        try:
            atomic_write_text(self.jobs_dir / f"{job.id}.json", dumps(job.to_record()))
        except OSError:  # pragma: no cover - disk trouble must not kill a worker
            get_telemetry().counter("serve.jobs.persist_errors")

    def _restore(self) -> None:
        """Reload persisted job records (constructor-time, single-threaded)."""
        import json

        if not self.jobs_dir.is_dir():
            return
        records = []
        for path in sorted(self.jobs_dir.glob("job-*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    records.append(json.load(handle))
            except (OSError, ValueError):  # pragma: no cover - corrupt record
                continue
        restored = 0
        for record in records:
            try:
                submission = Submission.from_payload(record["submission"])
            except (KeyError, ValueError):  # pragma: no cover - stale schema
                continue
            job = Job(record["id"], submission, client=record.get("client", ""))
            job.created = record.get("created", job.created)
            job.started = record.get("started")
            job.finished = record.get("finished")
            job.error = record.get("error")
            job.key = record.get("key")
            job.result_status = record.get("result_status")
            status = record.get("status", "queued")
            if status == "running":
                # The daemon died mid-run. The cache may or may not hold the
                # result; failing the record keeps the ledger honest and a
                # resubmission is a cheap hit if the store completed.
                job.status = "failed"
                job.error = job.error or "daemon restarted while the job was running"
                job.finished = job.finished or time.time()
            else:
                job.status = status
            if job.status in TERMINAL:
                job.broadcaster.close({"job": job.id, "status": job.status})
            self._jobs[job.id] = job
            self._order.append(job.id)
            if job.status == "queued":
                self._queue.append(job.id)
            try:
                self._counter = max(self._counter, int(record["id"].rsplit("-", 1)[1]))
            except (IndexError, ValueError):  # pragma: no cover - foreign id form
                pass
            restored += 1
        if restored:
            get_telemetry().counter("serve.jobs.restored", restored)


__all__ = [
    "JOB_STATUSES",
    "Job",
    "JobManager",
    "QueueFullError",
    "RateLimitedError",
    "TokenBucketLimiter",
    "UnknownJobError",
]
