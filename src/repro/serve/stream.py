"""Per-round event fan-out for SSE streaming.

A :class:`RoundBroadcaster` sits between a running job's ``on_round`` hook
(the :data:`~repro.dynamics.driver.RoundListener` the tracker calls once per
simulation round) and any number of HTTP subscribers. It is strictly
observation-side — it consumes records the tracker already computed and
never touches a random draw — so streaming cannot perturb results.

Two properties make it safe to put in front of the engine:

* **Backpressure isolation.** Each subscriber gets its own bounded queue.
  A slow (or stalled) SSE client fills *its* queue; further events for that
  subscriber are counted as dropped and a terminal marker tells the client
  the stream is no longer lossless. The producer — the simulation — never
  blocks on a consumer.
* **History replay.** The broadcaster keeps a capped tail of past events,
  so a client that connects mid-run (or after a short job already finished)
  still sees the most recent rounds before going live. The cap bounds
  daemon memory for long horizons.
"""

from __future__ import annotations

import collections
import json
import queue
import threading
from typing import Any, Iterator, Mapping

#: Sentinel queued to tell a subscriber the stream is complete.
_CLOSED = object()

#: Default cap on replayed history (rounds); bounds memory per job.
DEFAULT_HISTORY = 512

#: Default per-subscriber queue bound; a consumer this far behind drops.
DEFAULT_BUFFER = 256


def sse_format(event: str, data: Mapping[str, Any] | str, *, event_id: int | None = None) -> bytes:
    """One wire-format server-sent event (``id:``/``event:``/``data:`` lines)."""
    body = data if isinstance(data, str) else json.dumps(data, separators=(",", ":"))
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {event}")
    for chunk in body.splitlines() or [""]:
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


class _Subscriber:
    __slots__ = ("events", "dropped")

    def __init__(self, buffer: int) -> None:
        self.events: queue.Queue = queue.Queue(maxsize=buffer)
        self.dropped = 0


class RoundBroadcaster:
    """Fan one job's per-round records out to many bounded subscribers."""

    def __init__(self, *, history: int = DEFAULT_HISTORY, buffer: int = DEFAULT_BUFFER):
        if history < 0 or buffer < 1:
            raise ValueError("history must be >= 0 and buffer >= 1")
        self._history: collections.deque = collections.deque(maxlen=history)
        self._buffer = buffer
        self._lock = threading.Lock()
        self._subscribers: list[_Subscriber] = []
        self._sequence = 0
        self._closed = False
        self._final: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # Producer side (the job worker)
    # ------------------------------------------------------------------
    def publish(self, record: Mapping[str, Any]) -> None:
        """Queue one ``round`` event to every live subscriber (never blocks)."""
        self._emit("round", dict(record))

    def close(self, final: Mapping[str, Any] | None = None) -> None:
        """Mark the stream complete, optionally with a ``final`` event payload."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._final = dict(final) if final is not None else None
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            # Best-effort: a full queue is fine — the consumer's live loop
            # also exits on (queue empty AND closed), so the sentinel being
            # dropped cannot strand it, and it isn't a lost *event*.
            try:
                subscriber.events.put_nowait(_CLOSED)
            except queue.Full:
                pass

    def _emit(self, event: str, data: dict[str, Any]) -> None:
        with self._lock:
            if self._closed:
                return
            self._sequence += 1
            item = (self._sequence, event, data)
            self._history.append(item)
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            self._deliver(subscriber, item)

    @staticmethod
    def _deliver(subscriber: _Subscriber, item: Any) -> None:
        try:
            subscriber.events.put_nowait(item)
        except queue.Full:
            # The consumer is too far behind: count the loss rather than
            # stall the simulation. The subscriber learns via `dropped`.
            subscriber.dropped += 1

    # ------------------------------------------------------------------
    # Consumer side (one HTTP connection)
    # ------------------------------------------------------------------
    def subscribe(self, *, replay: bool = True, poll_seconds: float = 0.5) -> Iterator[bytes]:
        """Yield wire-format SSE frames until the stream closes.

        ``replay=True`` first yields the retained history tail. The iterator
        then blocks on the subscriber's queue (waking every ``poll_seconds``
        so a handler can notice a dead socket) and ends with one ``final``
        event — carrying the job's result payload when the producer supplied
        one — plus a ``dropped`` count if this consumer lost events.
        """
        subscriber = _Subscriber(self._buffer)
        with self._lock:
            backlog = list(self._history) if replay else []
            closed = self._closed
            if not closed:
                self._subscribers.append(subscriber)
        try:
            for sequence, event, data in backlog:
                yield sse_format(event, data, event_id=sequence)
            if not closed:
                while True:
                    try:
                        item = subscriber.events.get(timeout=poll_seconds)
                    except queue.Empty:
                        if self._closed:
                            break  # closed with a full queue: sentinel was dropped
                        # Comment frame: keeps proxies from timing the
                        # connection out and surfaces dead sockets to the
                        # handler as a write error.
                        yield b": keep-alive\n\n"
                        continue
                    if item is _CLOSED:
                        break
                    sequence, event, data = item
                    yield sse_format(event, data, event_id=sequence)
            if subscriber.dropped:
                yield sse_format("dropped", {"events": subscriber.dropped})
            yield sse_format("final", self._final if self._final is not None else {})
        finally:
            with self._lock:
                if subscriber in self._subscribers:
                    self._subscribers.remove(subscriber)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def subscribers(self) -> int:
        with self._lock:
            return len(self._subscribers)

    @property
    def events_published(self) -> int:
        return self._sequence


__all__ = ["DEFAULT_BUFFER", "DEFAULT_HISTORY", "RoundBroadcaster", "sse_format"]
