"""Quorum / threshold detection built on density estimation.

Section 6.2 of the paper points out that in many biological applications —
quorum sensing during Temnothorax house-hunting being the canonical example
[Pra05] — agents do not need the density itself, only whether it exceeds a
threshold ``θ``. A ``(1 ± ε)`` density estimate with
``ε < gap / (θ + true density)`` decides the question correctly, so the
detector below simply runs Algorithm 1 for a number of rounds sized for the
threshold (not the unknown true density) and compares.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core import bounds
from repro.core.estimator import RandomWalkDensityEstimator
from repro.topology.base import Topology
from repro.utils.rng import SeedLike
from repro.utils.validation import require_integer, require_positive, require_probability


class QuorumDecision(enum.Enum):
    """Outcome of a quorum test for one agent."""

    ABOVE = "above"
    BELOW = "below"


@dataclass
class QuorumDetector:
    """Decide whether the population density exceeds a threshold.

    Parameters
    ----------
    topology:
        Topology the agents walk on.
    num_agents:
        Total number of agents.
    threshold:
        Density threshold ``θ`` to test against.
    margin:
        Relative separation assumed between the true density and ``θ``: the
        detector is designed to answer correctly whenever
        ``d <= (1 - margin)·θ`` or ``d >= (1 + margin)·θ``.
    delta:
        Target failure probability per agent.
    rounds:
        Optional explicit round budget; by default it is derived from
        Theorem 1 using the threshold density and ``ε = margin / 2``.
    """

    topology: Topology
    num_agents: int
    threshold: float
    margin: float = 0.5
    delta: float = 0.05
    rounds: int | None = None

    def __post_init__(self) -> None:
        require_integer(self.num_agents, "num_agents", minimum=1)
        require_positive(self.threshold, "threshold")
        require_probability(self.delta, "delta", allow_zero=False, allow_one=False)
        if not 0 < self.margin < 1:
            raise ValueError(f"margin must lie in (0, 1), got {self.margin}")
        if self.rounds is None:
            epsilon = self.margin / 2.0
            self.rounds = bounds.theorem1_rounds(
                self.threshold, epsilon, self.delta, constant=1.0
            )
        require_integer(int(self.rounds), "rounds", minimum=1)

    def decide(self, seed: SeedLike = None) -> tuple[np.ndarray, np.ndarray]:
        """Run the detector for every agent.

        Returns
        -------
        decisions, estimates:
            ``decisions`` is an array of :class:`QuorumDecision` values (one
            per agent); ``estimates`` the underlying density estimates.
        """
        estimator = RandomWalkDensityEstimator(
            topology=self.topology,
            num_agents=self.num_agents,
            rounds=int(self.rounds),
        )
        run = estimator.run(seed)
        decisions = np.where(
            run.estimates >= self.threshold, QuorumDecision.ABOVE, QuorumDecision.BELOW
        )
        return decisions, run.estimates

    def fraction_above(self, seed: SeedLike = None) -> float:
        """Fraction of agents that report the density as above the threshold."""
        decisions, _ = self.decide(seed)
        return float(np.mean(decisions == QuorumDecision.ABOVE))


__all__ = ["QuorumDecision", "QuorumDetector"]
