"""Every closed-form bound stated by the paper, as plain functions.

The functions are organised by where they appear:

* Theorem 1 (2-D torus accuracy / round complexity),
* Lemma 4 and its analogues (re-collision probability bounds per topology),
* Lemma 19 (re-collision bound ⇒ accuracy, via the local mixing sum B(t)),
* Theorem 21 (ring, variance/Chebyshev analysis),
* Section 4.3–4.5 round bounds (k-D torus, expander, hypercube),
* Theorem 27 / Theorem 31 / Section 5.1.4 (network size estimation),
* Theorem 32 (independent-sampling baseline).

All bounds hide universal constants; each function takes an optional
``constant`` argument (default 1) so that experiments can fit the constant on
one data point and check the *shape* on the rest, which is how the
reproduction validates asymptotic statements.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import (
    require_in_range,
    require_integer,
    require_positive,
    require_probability,
)


# ----------------------------------------------------------------------
# Theorem 1 — random-walk density estimation on the two-dimensional torus
# ----------------------------------------------------------------------
def theorem1_epsilon(rounds: int | float, density: float, delta: float, *, constant: float = 1.0) -> float:
    """Accuracy of Algorithm 1 on the 2-D torus after ``rounds`` rounds.

    Theorem 1, first claim: with probability ``1 - δ``,
    ``ε <= c · sqrt(log(1/δ) / (t·d)) · log(2t)``.
    """
    require_positive(rounds, "rounds")
    require_positive(density, "density")
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    require_positive(constant, "constant")
    return constant * math.sqrt(math.log(1.0 / delta) / (rounds * density)) * math.log(2.0 * rounds)


def theorem1_rounds(density: float, epsilon: float, delta: float, *, constant: float = 1.0) -> int:
    """Rounds sufficient for a ``(1 ± ε)`` estimate on the 2-D torus.

    Theorem 1, second claim:
    ``t = c · log(1/δ) · [log log(1/δ) + log(1/(dε))]² / (dε²)``.
    The ``log log`` term is clamped at zero for very mild ``δ``.
    """
    require_positive(density, "density")
    require_probability(epsilon, "epsilon", allow_zero=False, allow_one=False)
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    require_positive(constant, "constant")
    log_inv_delta = math.log(1.0 / delta)
    loglog = math.log(log_inv_delta) if log_inv_delta > 1.0 else 0.0
    log_term = max(loglog, 0.0) + max(math.log(1.0 / (density * epsilon)), 0.0)
    rounds = constant * log_inv_delta * (log_term**2) / (density * epsilon**2)
    return max(1, int(math.ceil(rounds)))


# ----------------------------------------------------------------------
# Re-collision probability bounds (Lemma 4 and Section 4 analogues)
# ----------------------------------------------------------------------
def recollision_bound_torus2d(offset: int, num_nodes: int, *, constant: float = 1.0) -> float:
    """Lemma 4: ``P[re-collision after m steps] = O(1/(m+1) + 1/A)``."""
    require_integer(offset, "offset", minimum=0)
    require_integer(num_nodes, "num_nodes", minimum=1)
    return constant * (1.0 / (offset + 1.0) + 1.0 / num_nodes)


def recollision_bound_ring(offset: int, num_nodes: int, *, constant: float = 1.0) -> float:
    """Lemma 20: on the ring the bound is ``O(1/sqrt(m+1) + 1/A)``."""
    require_integer(offset, "offset", minimum=0)
    require_integer(num_nodes, "num_nodes", minimum=1)
    return constant * (1.0 / math.sqrt(offset + 1.0) + 1.0 / num_nodes)


def recollision_bound_torus_kd(offset: int, num_nodes: int, dims: int, *, constant: float = 1.0) -> float:
    """Lemma 22: on a k-D torus the bound is ``O(1/(m+1)^{k/2} + 1/A)``."""
    require_integer(offset, "offset", minimum=0)
    require_integer(num_nodes, "num_nodes", minimum=1)
    require_integer(dims, "dims", minimum=1)
    return constant * (1.0 / (offset + 1.0) ** (dims / 2.0) + 1.0 / num_nodes)


def recollision_bound_expander(offset: int, num_nodes: int, lambda_value: float) -> float:
    """Lemma 23: on a regular expander the bound is ``λ^m + 1/A`` (no hidden constant)."""
    require_integer(offset, "offset", minimum=0)
    require_integer(num_nodes, "num_nodes", minimum=1)
    require_in_range(lambda_value, "lambda_value", 0.0, 1.0)
    return lambda_value**offset + 1.0 / num_nodes


def recollision_bound_hypercube(offset: int, num_nodes: int) -> float:
    """Lemma 25: on the hypercube the bound is ``(9/10)^{m-1} + 1/sqrt(A)``."""
    require_integer(offset, "offset", minimum=0)
    require_integer(num_nodes, "num_nodes", minimum=1)
    exponent = max(offset - 1, 0)
    return (9.0 / 10.0) ** exponent + 1.0 / math.sqrt(num_nodes)


# ----------------------------------------------------------------------
# Lemma 19 — from a re-collision bound to estimation accuracy
# ----------------------------------------------------------------------
def local_mixing_sum_torus2d(rounds: int, *, constant: float = 1.0) -> float:
    """``B(t) = O(log 2t)`` on the 2-D torus (sum of Lemma 4's bound)."""
    require_integer(rounds, "rounds", minimum=1)
    return constant * math.log(2.0 * rounds)


def local_mixing_sum_ring(rounds: int, *, constant: float = 1.0) -> float:
    """``B(t) = Θ(sqrt(t))`` on the ring."""
    require_integer(rounds, "rounds", minimum=1)
    return constant * math.sqrt(rounds)


def local_mixing_sum_torus_kd(rounds: int, dims: int, *, constant: float = 1.0) -> float:
    """``B(t) = O_k(1)`` for k >= 3 (Section 4.3); log/ sqrt forms for k = 2, 1."""
    require_integer(rounds, "rounds", minimum=1)
    require_integer(dims, "dims", minimum=1)
    if dims == 1:
        return local_mixing_sum_ring(rounds, constant=constant)
    if dims == 2:
        return local_mixing_sum_torus2d(rounds, constant=constant)
    # For k >= 3 the series sum_m (m+1)^{-k/2} converges; use the zeta value.
    tail = sum((m + 1.0) ** (-dims / 2.0) for m in range(rounds + 1))
    return constant * tail


def local_mixing_sum_expander(rounds: int, lambda_value: float, num_nodes: int) -> float:
    """``B(t) <= 1/(1-λ) + t/A`` on a regular expander (Section 4.4)."""
    require_integer(rounds, "rounds", minimum=1)
    require_in_range(lambda_value, "lambda_value", 0.0, 1.0)
    require_integer(num_nodes, "num_nodes", minimum=1)
    if lambda_value >= 1.0:
        raise ValueError("lambda_value must be < 1 for an expander")
    return 1.0 / (1.0 - lambda_value) + rounds / num_nodes


def local_mixing_sum_hypercube(rounds: int, num_nodes: int) -> float:
    """``B(t) <= 10 + t/sqrt(A)`` on the hypercube (Section 4.5)."""
    require_integer(rounds, "rounds", minimum=1)
    require_integer(num_nodes, "num_nodes", minimum=1)
    return 10.0 + rounds / math.sqrt(num_nodes)


def lemma19_epsilon(
    rounds: int | float, density: float, delta: float, local_mixing: float, *, constant: float = 1.0
) -> float:
    """Lemma 19: ``ε = O( sqrt(log(1/δ) / (t·d)) · B(t) )``."""
    require_positive(rounds, "rounds")
    require_positive(density, "density")
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    require_positive(local_mixing, "local_mixing")
    return constant * math.sqrt(math.log(1.0 / delta) / (rounds * density)) * local_mixing


# ----------------------------------------------------------------------
# Section 4 round bounds per topology
# ----------------------------------------------------------------------
def ring_epsilon_theorem21(rounds: int | float, density: float, delta: float, *, constant: float = 1.0) -> float:
    """Theorem 21 (ring, Chebyshev analysis): ``ε = O(sqrt(1/(t^{1/2}·d·δ)))``."""
    require_positive(rounds, "rounds")
    require_positive(density, "density")
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    return constant * math.sqrt(1.0 / (math.sqrt(rounds) * density * delta))


def ring_rounds_theorem21(density: float, epsilon: float, delta: float, *, constant: float = 1.0) -> int:
    """Theorem 21: ``t = Ω(1/(d ε² δ)²)`` rounds on the ring."""
    require_positive(density, "density")
    require_probability(epsilon, "epsilon", allow_zero=False, allow_one=False)
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    rounds = constant * (1.0 / (density * epsilon**2 * delta)) ** 2
    return max(1, int(math.ceil(rounds)))


def torus_kd_rounds(density: float, epsilon: float, delta: float, dims: int, *, constant: float = 1.0) -> int:
    """Section 4.3: for ``k >= 3``, ``t = O_k(log(1/δ) / (dε²))`` matches independent sampling."""
    require_integer(dims, "dims", minimum=3)
    return independent_sampling_rounds(density, epsilon, delta, constant=constant)


def expander_rounds(
    density: float, epsilon: float, delta: float, lambda_value: float, *, constant: float = 1.0
) -> int:
    """Section 4.4: ``t = O(log(1/δ) / (dε²(1-λ)²))`` on a regular expander."""
    require_in_range(lambda_value, "lambda_value", 0.0, 1.0)
    if lambda_value >= 1.0:
        raise ValueError("lambda_value must be < 1")
    base = independent_sampling_rounds(density, epsilon, delta, constant=constant)
    return max(1, int(math.ceil(base / (1.0 - lambda_value) ** 2)))


def hypercube_rounds(density: float, epsilon: float, delta: float, *, constant: float = 1.0) -> int:
    """Section 4.5: ``t = O(log(1/δ) / (dε²))`` on the hypercube (matches independent sampling)."""
    return independent_sampling_rounds(density, epsilon, delta, constant=constant)


# ----------------------------------------------------------------------
# Theorem 32 / complete graph — independent sampling
# ----------------------------------------------------------------------
def independent_sampling_rounds(density: float, epsilon: float, delta: float, *, constant: float = 1.0) -> int:
    """Theorem 32 / Chernoff: ``t = Θ(log(1/δ) / (dε²))`` rounds."""
    require_positive(density, "density")
    require_probability(epsilon, "epsilon", allow_zero=False, allow_one=False)
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    require_positive(constant, "constant")
    rounds = constant * math.log(1.0 / delta) / (density * epsilon**2)
    return max(1, int(math.ceil(rounds)))


def independent_sampling_epsilon(rounds: int | float, density: float, delta: float, *, constant: float = 1.0) -> float:
    """Theorem 32: ``ε = O(sqrt(log(1/δ) / (t·d)))``."""
    require_positive(rounds, "rounds")
    require_positive(density, "density")
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    return constant * math.sqrt(math.log(1.0 / delta) / (rounds * density))


# ----------------------------------------------------------------------
# Union bound over all agents (Section 3.1 remark)
# ----------------------------------------------------------------------
def per_agent_delta(total_delta: float, num_agents: int) -> float:
    """δ to use per agent so all ``num_agents`` agents succeed w.p. ``1 - total_delta``."""
    require_probability(total_delta, "total_delta", allow_zero=False, allow_one=False)
    require_integer(num_agents, "num_agents", minimum=1)
    return total_delta / num_agents


# ----------------------------------------------------------------------
# Section 5.1 — network size estimation
# ----------------------------------------------------------------------
def theorem27_walks_required(
    num_nodes: int,
    num_edges: int,
    local_mixing: float,
    rounds: int,
    epsilon: float,
    delta: float,
    *,
    constant: float = 1.0,
) -> int:
    """Theorem 27: walks ``n`` with ``n²t = Θ((B(t)·deg + 1)·|V| / (ε²δ))``.

    Returns the smallest integer ``n`` satisfying the bound for the given
    number of rounds ``t`` (at least 2, since collisions need two walks).
    """
    require_integer(num_nodes, "num_nodes", minimum=1)
    require_integer(num_edges, "num_edges", minimum=1)
    require_positive(local_mixing, "local_mixing")
    require_integer(rounds, "rounds", minimum=1)
    require_probability(epsilon, "epsilon", allow_zero=False, allow_one=False)
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    average_degree = 2.0 * num_edges / num_nodes
    required_product = constant * (local_mixing * average_degree + 1.0) * num_nodes / (epsilon**2 * delta)
    walks = math.sqrt(required_product / rounds)
    return max(2, int(math.ceil(walks)))


def theorem31_samples_required(
    average_degree: float, min_degree: float, epsilon: float, delta: float, *, constant: float = 1.0
) -> int:
    """Theorem 31: ``n = Θ( deg / (deg_min · ε² · δ) )`` samples for the average degree."""
    require_positive(average_degree, "average_degree")
    require_positive(min_degree, "min_degree")
    require_probability(epsilon, "epsilon", allow_zero=False, allow_one=False)
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    samples = constant * average_degree / (min_degree * epsilon**2 * delta)
    return max(1, int(math.ceil(samples)))


def burn_in_steps(lambda_value: float, num_edges: int, delta: float, *, constant: float = 1.0) -> int:
    """Section 5.1.4: burn-in ``M = O(log(|E|/δ) / (1-λ))`` steps."""
    require_in_range(lambda_value, "lambda_value", 0.0, 1.0)
    if lambda_value >= 1.0:
        raise ValueError("lambda_value must be < 1")
    require_integer(num_edges, "num_edges", minimum=1)
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    steps = constant * math.log(num_edges / delta) / (1.0 - lambda_value)
    return max(1, int(math.ceil(steps)))


def katzir_walks_required(
    num_nodes: int, degrees: np.ndarray, epsilon: float, delta: float, *, constant: float = 1.0
) -> int:
    """[KLSC14] baseline: ``n = Θ( |V|·deg / (ε²δ·sqrt(Σ deg(v)²)) )`` walks.

    This is the "halt after burn-in and count collisions once" estimator
    that Section 5.1.5 compares against.
    """
    require_integer(num_nodes, "num_nodes", minimum=1)
    degrees = np.asarray(degrees, dtype=np.float64)
    require_probability(epsilon, "epsilon", allow_zero=False, allow_one=False)
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    average_degree = float(degrees.mean())
    denominator = epsilon**2 * delta * math.sqrt(float(np.sum(degrees**2)))
    walks = constant * num_nodes * average_degree / denominator
    return max(2, int(math.ceil(walks)))


# ----------------------------------------------------------------------
# Generic concentration inequalities used by the proofs
# ----------------------------------------------------------------------
def chernoff_failure_probability(samples: int | float, success_probability: float, epsilon: float) -> float:
    """Two-sided multiplicative Chernoff bound ``2·exp(-ε²·μ/3)`` with ``μ = samples·p``."""
    require_positive(samples, "samples")
    require_probability(success_probability, "success_probability", allow_zero=False)
    require_probability(epsilon, "epsilon", allow_zero=False, allow_one=False)
    mean = samples * success_probability
    return min(1.0, 2.0 * math.exp(-(epsilon**2) * mean / 3.0))


def chebyshev_failure_probability(variance: float, deviation: float) -> float:
    """Chebyshev: ``P[|X - EX| >= Δ] <= Var/Δ²`` (capped at 1)."""
    require_positive(deviation, "deviation")
    if variance < 0:
        raise ValueError(f"variance must be non-negative, got {variance}")
    return min(1.0, variance / deviation**2)


def subexponential_failure_probability(deviation: float, sigma_squared: float, scale: float) -> float:
    """Lemma 18 (Bernstein-type): ``P[|X - EX| >= Δ] <= 2·exp(-Δ²/(2(σ² + bΔ)))``."""
    require_positive(deviation, "deviation")
    require_positive(sigma_squared, "sigma_squared")
    require_positive(scale, "scale")
    return min(1.0, 2.0 * math.exp(-(deviation**2) / (2.0 * (sigma_squared + scale * deviation))))


__all__ = [
    "theorem1_epsilon",
    "theorem1_rounds",
    "recollision_bound_torus2d",
    "recollision_bound_ring",
    "recollision_bound_torus_kd",
    "recollision_bound_expander",
    "recollision_bound_hypercube",
    "local_mixing_sum_torus2d",
    "local_mixing_sum_ring",
    "local_mixing_sum_torus_kd",
    "local_mixing_sum_expander",
    "local_mixing_sum_hypercube",
    "lemma19_epsilon",
    "ring_epsilon_theorem21",
    "ring_rounds_theorem21",
    "torus_kd_rounds",
    "expander_rounds",
    "hypercube_rounds",
    "independent_sampling_rounds",
    "independent_sampling_epsilon",
    "per_agent_delta",
    "theorem27_walks_required",
    "theorem31_samples_required",
    "burn_in_steps",
    "katzir_walks_required",
    "chernoff_failure_probability",
    "chebyshev_failure_probability",
    "subexponential_failure_probability",
]
