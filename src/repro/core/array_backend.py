"""Array-API namespace registry: one seam, many array libraries.

The fused kernel's hot loop is a handful of array operations — gather,
scatter-count, elementwise arithmetic — none of which is NumPy-specific.
This module is the seam that lets the *same* loop body run on any library
implementing the `array API standard <https://data-apis.org/array-api/>`_:

* ``numpy`` — always available; NumPy ≥ 2.0's main namespace *is* an
  array-API namespace (``unique_all``, ``cumulative_sum``, ``astype``,
  ``concat``, ...), so the portable code path is exercised on every
  machine, not just ones with exotic accelerators installed.
* ``array-api-strict`` — the reference implementation of the standard with
  everything non-portable removed. CI runs the portable suite against it;
  code that passes there cannot be quietly leaning on NumPy extensions.
* ``cupy`` / ``jax`` — GPU namespaces, resolved only when importable.
  Setting ``REPRO_NO_CUDA=1`` refuses CuPy with a loud
  :class:`ArrayBackendUnavailableError` (the Parasitoids exemplar's
  ``NO_CUDA`` gate) so CPU-only environments fail fast instead of
  surfacing a driver error three stack frames deep.

Resolution is **loud by design**: an unknown name raises
:class:`ArrayBackendError` listing the registry; a known-but-missing
library raises :class:`ArrayBackendUnavailableError` naming what to
install (or which gate refused it). Nothing silently falls back to NumPy —
a caller that asked for a device namespace either gets it or gets told why
not.

Equivalence contract: integer pipelines (positions, collision counts) are
exact on every namespace, so ``array_namespace="numpy"`` is bit-identical
to the default fused path and cross-library integer results must match
exactly. Floating-point accumulations may legally differ by reduction
order on device backends — those comparisons are tolerance-based (see
TESTING.md, "cross-backend tolerance equivalence").
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

#: Registered namespace names, in resolution-preference order.
ARRAY_NAMESPACES = ("numpy", "array-api-strict", "cupy", "jax")

#: Environment gate refusing the CUDA-backed namespaces. Any value other
#: than empty/``0`` counts as set.
NO_CUDA_ENV = "REPRO_NO_CUDA"


class ArrayBackendError(RuntimeError):
    """A request the array-namespace seam cannot express.

    Raised for unknown namespace names and for kernel features with no
    portable implementation (the capability errors are loud, never a
    silent NumPy fallback).
    """


class ArrayBackendUnavailableError(ArrayBackendError):
    """A *known* namespace that cannot be resolved on this machine.

    The message always says why: the library is not installed, or an
    environment gate (``REPRO_NO_CUDA``) refused it.
    """


def cuda_disabled() -> bool:
    """Whether the ``REPRO_NO_CUDA`` gate refuses CUDA namespaces."""
    return os.environ.get(NO_CUDA_ENV, "").strip() not in ("", "0")


def get_namespace(name: str | None) -> Any:
    """Resolve a registered namespace name to its module.

    ``None`` and ``"numpy"`` resolve to :mod:`numpy` (NumPy ≥ 2.0 is
    array-API compatible). Other names import on demand and raise
    :class:`ArrayBackendUnavailableError` with an actionable message when
    the library is missing or gated off.
    """
    if name is None or name == "numpy":
        return np
    if name == "array-api-strict":
        try:
            import array_api_strict
        except ImportError as error:
            raise ArrayBackendUnavailableError(
                "array namespace 'array-api-strict' is not installed; "
                "`pip install array-api-strict` to run the portable kernel "
                "suite against the standard's reference implementation"
            ) from error
        return array_api_strict
    if name == "cupy":
        if cuda_disabled():
            raise ArrayBackendUnavailableError(
                f"array namespace 'cupy' refused: {NO_CUDA_ENV}="
                f"{os.environ.get(NO_CUDA_ENV)!r} disables CUDA namespaces "
                "on this host; unset it to use the GPU path"
            )
        try:
            import cupy
        except ImportError as error:
            raise ArrayBackendUnavailableError(
                "array namespace 'cupy' is not installed; `pip install cupy` "
                "(with a matching CUDA toolkit) enables the GPU kernel path"
            ) from error
        return cupy
    if name == "jax":
        try:
            import jax.numpy as jnp
        except ImportError as error:
            raise ArrayBackendUnavailableError(
                "array namespace 'jax' is not installed; `pip install jax` "
                "enables the jax.numpy kernel path"
            ) from error
        return jnp
    raise ArrayBackendError(
        f"unknown array namespace {name!r}; registered namespaces: {ARRAY_NAMESPACES}"
    )


def available_namespaces() -> tuple[str, ...]:
    """The registered namespaces that actually resolve on this machine."""
    found = []
    for name in ARRAY_NAMESPACES:
        try:
            get_namespace(name)
        except ArrayBackendUnavailableError:
            continue
        found.append(name)
    return tuple(found)


def array_namespace(*arrays: Any) -> Any:
    """The namespace the given arrays belong to (NumPy when unannotated).

    Uses the standard's ``__array_namespace__`` protocol; arrays that do
    not implement it (plain :class:`numpy.ndarray` on NumPy < 2.1, Python
    scalars) count as NumPy. Mixing namespaces raises
    :class:`ArrayBackendError` — implicit cross-device transfers are
    exactly the kind of silent fallback this seam forbids.
    """
    spaces = []
    for array in arrays:
        probe = getattr(array, "__array_namespace__", None)
        space = probe() if callable(probe) else np
        if isinstance(array, np.ndarray):
            space = np
        if all(space is not seen for seen in spaces):
            spaces.append(space)
    if not spaces:
        return np
    if len(spaces) > 1:
        names = sorted(getattr(space, "__name__", repr(space)) for space in spaces)
        raise ArrayBackendError(
            f"arrays from mixed namespaces {names}: move everything to one "
            "namespace explicitly before calling the portable primitives"
        )
    return spaces[0]


def is_numpy_namespace(xp: Any) -> bool:
    """Whether ``xp`` is (a wrapper over) the NumPy namespace."""
    return xp is np or getattr(xp, "__name__", "") == "numpy"


def to_numpy(array: Any) -> np.ndarray:
    """Materialise any namespace's array on the host as ``np.ndarray``.

    CuPy exposes explicit device-to-host copies via ``.get()``; everything
    else (NumPy, array-api-strict, JAX on CPU) round-trips through
    ``np.asarray``.
    """
    if isinstance(array, np.ndarray):
        return array
    getter = getattr(array, "get", None)
    if callable(getter):
        return np.asarray(getter())
    return np.asarray(array)


__all__ = [
    "ARRAY_NAMESPACES",
    "NO_CUDA_ENV",
    "ArrayBackendError",
    "ArrayBackendUnavailableError",
    "array_namespace",
    "available_namespaces",
    "cuda_disabled",
    "get_namespace",
    "is_numpy_namespace",
    "to_numpy",
]
