"""Relative property-frequency estimation (Section 5.2).

Let ``d`` be the overall density and ``d_P`` the density of agents carrying a
detectable property ``P`` (successful foragers, enemies, members of a task
group, ...). If marked agents are uniformly distributed in the population,
each agent can track collisions with marked agents separately, form
``d̃`` and ``d̃_P`` with Algorithm 1, and output ``f̃_P = d̃_P / d̃``, which is
a ``(1 ± O(ε))`` approximation of the true relative frequency
``f_P = d_P / d`` with probability ``1 - 2δ`` after the number of rounds
Theorem 1 prescribes for the *smaller* density ``d_P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.kernel import run_kernel
from repro.core.simulation import (
    CollisionObservationModel,
    PlacementFn,
    SimulationConfig,
    SimulationResult,
)
from repro.topology.base import Topology
from repro.utils.rng import SeedLike
from repro.utils.validation import require_integer, require_probability


@dataclass(frozen=True)
class PropertyFrequencyEstimate:
    """Per-agent density, marked-density, and relative-frequency estimates."""

    density_estimates: np.ndarray
    marked_density_estimates: np.ndarray
    frequency_estimates: np.ndarray
    true_density: float
    true_marked_density: float
    rounds: int
    num_agents: int
    num_marked: int
    num_nodes: int
    topology_name: str

    @property
    def true_frequency(self) -> float:
        """Ground-truth relative frequency ``f_P = d_P / d``."""
        if self.true_density == 0:
            return 0.0
        return self.true_marked_density / self.true_density

    def frequency_relative_errors(self) -> np.ndarray:
        """``|f̃_P - f_P| / f_P`` per agent (inf where the estimate is undefined)."""
        truth = self.true_frequency
        if truth == 0:
            raise ValueError("true frequency is zero; relative error undefined")
        return np.abs(self.frequency_estimates - truth) / truth

    def fraction_within(self, epsilon: float) -> float:
        """Fraction of agents whose frequency estimate is within ``ε`` of ``f_P``."""
        require_probability(epsilon, "epsilon", allow_zero=False)
        errors = self.frequency_relative_errors()
        return float(np.mean(errors <= epsilon))


def estimate_property_frequency(
    topology: Topology,
    num_agents: int,
    rounds: int,
    marked_fraction: float,
    seed: SeedLike = None,
    *,
    placement: Optional[PlacementFn] = None,
    collision_model: Optional[CollisionObservationModel] = None,
) -> PropertyFrequencyEstimate:
    """Estimate the relative frequency of a property via encounter rates.

    Parameters
    ----------
    topology:
        Topology the agents walk on.
    num_agents:
        Total number of agents.
    rounds:
        Number of rounds ``t``; should be sized for the *marked* density
        ``d_P`` (Theorem 1 applied with ``d_P``).
    marked_fraction:
        Probability with which each agent independently carries the property.
    """
    require_integer(num_agents, "num_agents", minimum=2)
    require_integer(rounds, "rounds", minimum=1)
    require_probability(marked_fraction, "marked_fraction", allow_zero=False)

    config = SimulationConfig(
        num_agents=num_agents,
        rounds=rounds,
        placement=placement,
        marked_fraction=marked_fraction,
        collision_model=collision_model,
    )
    outcome = run_kernel(topology, config, None, seed)
    return _estimate_from_outcome(outcome, topology.name)


def estimate_property_frequency_batch(
    topology: Topology,
    num_agents: int,
    rounds: int,
    marked_fraction: float,
    replicates: int,
    seed: SeedLike = None,
    *,
    collision_model: Optional[CollisionObservationModel] = None,
) -> list[PropertyFrequencyEstimate]:
    """Batched counterpart of :func:`estimate_property_frequency`.

    All ``replicates`` independent runs advance through the kernel's
    ``(R, n)`` round loop together (one offset-label collision pass per
    round for the whole batch); each replicate row is then converted into
    its own :class:`PropertyFrequencyEstimate`. The marked vectors are
    drawn per replicate, so ``true_frequency`` varies across the returned
    estimates exactly as it does across independent serial runs.
    """
    require_integer(num_agents, "num_agents", minimum=2)
    require_integer(rounds, "rounds", minimum=1)
    require_probability(marked_fraction, "marked_fraction", allow_zero=False)

    config = SimulationConfig(
        num_agents=num_agents,
        rounds=rounds,
        marked_fraction=marked_fraction,
        collision_model=collision_model,
    )
    batch = run_kernel(topology, config, replicates, seed)
    return [
        _estimate_from_outcome(batch.replicate(index), topology.name)
        for index in range(batch.replicates)
    ]


def _estimate_from_outcome(
    outcome: SimulationResult, topology_name: str
) -> PropertyFrequencyEstimate:
    """Form the per-agent frequency estimates from one simulation outcome."""
    density_estimates = outcome.estimates()
    marked_density_estimates = outcome.marked_estimates()
    with np.errstate(divide="ignore", invalid="ignore"):
        frequency = np.where(
            density_estimates > 0,
            marked_density_estimates / np.where(density_estimates > 0, density_estimates, 1.0),
            0.0,
        )

    return PropertyFrequencyEstimate(
        density_estimates=density_estimates,
        marked_density_estimates=marked_density_estimates,
        frequency_estimates=frequency,
        true_density=outcome.true_density,
        true_marked_density=outcome.true_marked_density,
        rounds=outcome.rounds,
        num_agents=outcome.num_agents,
        num_marked=int(np.count_nonzero(outcome.marked)),
        num_nodes=outcome.num_nodes,
        topology_name=topology_name,
    )


__all__ = [
    "PropertyFrequencyEstimate",
    "estimate_property_frequency",
    "estimate_property_frequency_batch",
]
