"""Intra-kernel sharding: one batched kernel call across many cores.

The scheduler parallelises at *plan-cell* granularity — whole experiments
fan out over processes — but a single batched :func:`~repro.core.kernel.run_kernel`
call still runs its entire ``(R, n)`` replicate matrix on one NumPy
thread. Every replicate row evolves independently, so the matrix splits
cleanly into contiguous row shards; this module runs the existing fused
loop per shard on a pool and merges the results.

**Determinism contract — bit-identical for every shard count.** The
repo's worker-count contract (``--workers N`` ≡ serial) extends one level
down: ``shard_workers=K`` produces byte-identical results for every ``K``,
including ``K=1``. The unsharded batched path cannot provide this anchor —
it draws all replicates from *one* shared stream, and rejection-based
samplers consume a data-dependent number of draws, so no partition of that
stream is layout-independent. Sharded runs therefore seed **each
replicate row from its own child** of the root seed
(:func:`~repro.utils.rng.spawn_seed_sequences` — the exact discipline the
scheduler uses for plan cells): every row's placement, marking, step
draws, and observation noise are a pure function of its row index, never
of which shard executed it. Shards then merge by writing disjoint row
slices — no reduction, no order sensitivity.

Consequences, stated loudly rather than discovered:

* ``shard_workers=K`` ≡ ``shard_workers=1`` for every ``K`` (pinned by the
  hypothesis invariance suite), but sharded results are **not** the
  unsharded single-stream results — the flag changes the RNG discipline,
  which is why the serve cache key folds it in when set.
* ``round_hook`` configs **fall back to the unsharded fused loop** for
  every ``K`` (telemetry counts the fallback): a hook observes and mutates
  the whole live matrix each round, which is inherently cross-shard.
  Falling back for all ``K`` keeps the K-invariance contract — hooked runs
  never silently diverge between shard counts.
* Serial mode (``replicates=None``) has one row and nothing to shard; it
  also falls back.

Executors: ``"thread"`` (default) — the hot path is NumPy ``bincount``/
gather/scatter which releases the GIL, so threads scale without pickling
or page-duplication costs; ``"process"`` — a ``ProcessPoolExecutor``
fallback for workloads whose Python-level per-round overhead (foreign
movement models, per-row noise) measurably serialises on the GIL. Select
per call or via ``REPRO_SHARD_EXECUTOR``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.simulation import SimulationConfig
from repro.obs.telemetry import get_telemetry
from repro.topology.base import Topology
from repro.utils.rng import SeedLike, spawn_seed_sequences
from repro.utils.validation import require_integer

#: Recognised shard executors; ``None``/unset resolves to ``"thread"``.
SHARD_EXECUTORS = ("thread", "process")

#: Environment override for the shard executor (same values).
SHARD_EXECUTOR_ENV = "REPRO_SHARD_EXECUTOR"


def _resolve_executor(executor: Optional[str]) -> str:
    resolved = executor if executor is not None else os.environ.get(SHARD_EXECUTOR_ENV)
    resolved = resolved or "thread"
    if resolved not in SHARD_EXECUTORS:
        source = "shard executor" if executor is not None else SHARD_EXECUTOR_ENV
        raise ValueError(
            f"unknown {source} {resolved!r}; expected one of {SHARD_EXECUTORS}"
        )
    return resolved


def shard_bounds(replicates: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-even ``[lo, hi)`` row ranges covering ``replicates``.

    The first ``replicates % shards`` shards take one extra row. Purely a
    work partition — per-row seeding makes results independent of it.
    """
    require_integer(replicates, "replicates", minimum=1)
    require_integer(shards, "shards", minimum=1)
    shards = min(shards, replicates)
    base, extra = divmod(replicates, shards)
    bounds = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


@dataclass
class _ShardResult:
    """One shard's slice of the batch state (plus its wall-clock)."""

    initial_positions: np.ndarray
    final_positions: np.ndarray
    marked: np.ndarray
    totals: np.ndarray
    marked_totals: np.ndarray
    trajectory: Optional[np.ndarray]
    marked_trajectory: Optional[np.ndarray]
    seconds: float


def _simulate_shard(
    topology: Topology,
    config: SimulationConfig,
    row_seeds: list[np.random.SeedSequence],
) -> _ShardResult:
    """Run the fused round loop for one contiguous block of replicate rows.

    Every row draws placement, marking, movement, and observation noise
    from its **own** generator (``default_rng(row_seeds[i])``), so the
    result depends only on which rows are here — not on how the batch was
    partitioned. Counting and stepping reuse the fused loop's armed
    invariants (:class:`~repro.core.fastpath._ArmedLoop`) on the shard's
    ``(rows, n)`` sub-matrix. Module-level so the process executor can
    pickle it.
    """
    # Deferred: fastpath imports kernel which is imported by this module's
    # callers; keeping the import local avoids a cycle at import time.
    from repro.core.fastpath import _ArmedLoop

    start = time.perf_counter()
    rows = len(row_seeds)
    n = config.num_agents
    rngs = [np.random.default_rng(seed) for seed in row_seeds]

    if config.placement is None:
        positions = np.stack(
            [np.asarray(topology.uniform_nodes(n, rng), dtype=np.int64) for rng in rngs]
        )
    else:
        placed = []
        for rng in rngs:
            row = np.asarray(config.placement(topology, n, rng), dtype=np.int64)
            if row.shape != (n,):
                raise ValueError(f"placement must return shape ({n},), got {row.shape}")
            placed.append(row)
        positions = np.stack(placed)
    topology.validate_nodes(positions)
    initial_positions = positions.copy()

    if config.marked_fraction > 0.0:
        marked = np.stack([rng.random(n) < config.marked_fraction for rng in rngs])
    else:
        marked = np.zeros((rows, n), dtype=bool)
    track_marked = bool(marked.any())

    totals = np.zeros((rows, n), dtype=np.float64)
    marked_totals = np.zeros((rows, n), dtype=np.float64)
    rounds = config.rounds
    trajectory = (
        np.zeros((rounds, rows, n), dtype=np.float64) if config.record_trajectory else None
    )
    marked_trajectory = (
        np.zeros((rounds, rows, n), dtype=np.float64)
        if (config.record_trajectory and track_marked)
        else None
    )

    movement = config.movement
    noise = config.collision_model
    armed = _ArmedLoop(topology, positions.shape, config, rounds)
    draws_buf = (
        np.empty((rows, n), dtype=np.int64) if armed.steps_precomputable else None
    )

    for round_index in range(rounds):
        # ---- movement: one draw per row, from that row's stream --------
        if armed.steps_precomputable:
            for i, rng in enumerate(rngs):
                draws_buf[i] = topology.draw_steps((n,), rng)
            positions = armed.step_precomputed(positions, draws_buf, in_place=True)
        elif movement is not None:
            for i, rng in enumerate(rngs):
                positions[i] = np.asarray(
                    movement.step(topology, positions[i], rng), dtype=np.int64
                )
            if armed.validate_each_round:
                topology.validate_nodes(positions)
        else:
            for i, rng in enumerate(rngs):
                positions[i] = topology.step_many(positions[i], rng)

        # ---- counting: the shard sub-matrix in one fused pass ----------
        if track_marked:
            counts, marked_counts = armed.count_profiles(
                positions, marked, fresh=noise is not None
            )
            np.add(marked_totals, marked_counts, out=marked_totals)
            if marked_trajectory is not None:
                marked_trajectory[round_index] = marked_totals
        else:
            counts = armed.count(positions, fresh=noise is not None)

        # ---- observation: per-row noise from per-row streams -----------
        if noise is not None:
            for i, rng in enumerate(rngs):
                observed = np.asarray(noise.observe(counts[i], rng), dtype=np.float64)
                if observed.shape != counts[i].shape:
                    raise ValueError(
                        "collision_model.observe must preserve the shape of its input"
                    )
                totals[i] += observed
        else:
            np.add(totals, counts, out=totals)
        if trajectory is not None:
            trajectory[round_index] = totals

    return _ShardResult(
        initial_positions=initial_positions,
        final_positions=positions,
        marked=marked,
        totals=totals,
        marked_totals=marked_totals,
        trajectory=trajectory,
        marked_trajectory=marked_trajectory,
        seconds=time.perf_counter() - start,
    )


def run_sharded(
    topology: Topology,
    config: SimulationConfig,
    replicates: Optional[int],
    seed: SeedLike,
    shard_workers: int,
    executor: Optional[str] = None,
):
    """Run a batched kernel call as ``min(shard_workers, R)`` row shards.

    Entry point behind ``run_kernel(..., shard_workers=K)``; see the
    module docstring for the determinism contract. Serial mode and
    ``round_hook`` configs fall back to the unsharded fused loop for
    every ``K`` (counted in telemetry), so the K-invariance contract
    holds unconditionally.
    """
    from repro.core.fastpath import run_fused
    from repro.core.kernel import _build_result

    require_integer(shard_workers, "shard_workers", minimum=1)
    tel = get_telemetry()
    if replicates is None or config.round_hook is not None:
        reason = "serial" if replicates is None else "round_hook"
        if tel.enabled:
            tel.counter("shardpath.fallbacks", reason=reason)
            tel.event("shardpath.fallback", reason=reason, shard_workers=shard_workers)
        return run_fused(topology, config, replicates, seed)

    require_integer(replicates, "replicates", minimum=1)
    mode = _resolve_executor(executor)
    bounds = shard_bounds(replicates, shard_workers)
    children = spawn_seed_sequences(seed, replicates)

    with tel.span(
        "shardpath", shards=len(bounds), executor=mode, replicates=replicates
    ):
        if len(bounds) == 1:
            results = [_simulate_shard(topology, config, list(children))]
        elif mode == "thread":
            with ThreadPoolExecutor(max_workers=len(bounds)) as pool:
                futures = [
                    pool.submit(_simulate_shard, topology, config, list(children[lo:hi]))
                    for lo, hi in bounds
                ]
                results = [future.result() for future in futures]
        else:
            with ProcessPoolExecutor(max_workers=len(bounds)) as pool:
                futures = [
                    pool.submit(_simulate_shard, topology, config, list(children[lo:hi]))
                    for lo, hi in bounds
                ]
                results = [future.result() for future in futures]

    n = config.num_agents
    shape = (replicates, n)
    rounds = config.rounds
    totals = np.empty(shape, dtype=np.float64)
    marked_totals = np.empty(shape, dtype=np.float64)
    marked = np.empty(shape, dtype=bool)
    initial_positions = np.empty(shape, dtype=np.int64)
    final_positions = np.empty(shape, dtype=np.int64)
    trajectory = (
        np.zeros((rounds, *shape), dtype=np.float64) if config.record_trajectory else None
    )
    track_marked = any(bool(result.marked.any()) for result in results)
    marked_trajectory = (
        np.zeros((rounds, *shape), dtype=np.float64)
        if (config.record_trajectory and track_marked)
        else None
    )

    # Merge = disjoint row-slice assignment, in plan order. A shard that
    # tracked no marked rows contributes exact zeros, matching what its
    # rows would have produced in any other partition.
    for (lo, hi), result in zip(bounds, results):
        totals[lo:hi] = result.totals
        marked_totals[lo:hi] = result.marked_totals
        marked[lo:hi] = result.marked
        initial_positions[lo:hi] = result.initial_positions
        final_positions[lo:hi] = result.final_positions
        if trajectory is not None:
            trajectory[:, lo:hi, :] = result.trajectory
        if marked_trajectory is not None and result.marked_trajectory is not None:
            marked_trajectory[:, lo:hi, :] = result.marked_trajectory

    if tel.enabled:
        tel.counter("shardpath.runs")
        tel.counter("shardpath.shards", len(bounds))
        tel.counter("shardpath.merged_rows", replicates)
        for result in results:
            tel.timer("shardpath.shard_seconds", result.seconds)
        tel.event(
            "shardpath.merged",
            shards=len(bounds),
            executor=mode,
            replicates=replicates,
            agents=n,
            shard_seconds=[round(result.seconds, 6) for result in results],
        )

    return _build_result(
        False,
        replicates,
        topology,
        config,
        totals,
        marked_totals,
        marked,
        initial_positions,
        final_positions,
        trajectory,
        marked_trajectory,
    )


__all__ = [
    "SHARD_EXECUTORS",
    "SHARD_EXECUTOR_ENV",
    "run_sharded",
    "shard_bounds",
]
