"""Configuration and result containers of the encounter-rate simulation.

The simulation executes Algorithm 1 for *all* agents simultaneously: in
each round every agent takes one random-walk step and then observes
``count(position)`` — the number of other agents on its node. The round
loop itself lives in :mod:`repro.core.kernel` (one vectorized
implementation serving both the serial and the batched ``(R, n)`` path);
this module defines its contract — the config, the result containers, the
per-round hook protocol — plus :func:`simulate_density_estimation`, the
deprecated serial wrapper kept for one release. Callers customise the
simulation through three hooks:

* ``placement`` — how agents are initially positioned (default: independent
  uniform placement, the assumption of Section 2);
* ``marked`` — an optional boolean property vector, so collisions with
  marked agents are tracked separately (Section 5.2);
* ``collision_model`` — an optional observation model that perturbs the true
  collision counts (missed or spurious detections, Section 6.1).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

import numpy as np

from repro.topology.base import Topology
from repro.utils.rng import SeedLike
from repro.utils.validation import require_integer

PlacementFn = Callable[[Topology, int, np.random.Generator], np.ndarray]


class MovementModelLike(Protocol):
    """Anything with a ``step(topology, positions, rng)`` method.

    The concrete implementations live in :mod:`repro.walks.movement`; the
    default behaviour (no model) is the paper's uniform random walk via
    ``topology.step_many``.
    """

    def step(
        self, topology: Topology, positions: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance every agent by one round."""
        ...


class CollisionObservationModel(Protocol):
    """Observation model applied to the true per-round collision counts.

    Implementations live in :mod:`repro.swarm.noise`; the default behaviour
    (no model) reports the true counts.
    """

    def observe(self, true_counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the counts the agents actually record this round."""
        ...


@dataclass
class RoundState:
    """Mutable view of the live simulation handed to a per-round hook.

    A hook may *read* everything (e.g. to stream this round's observations
    into an anytime estimator) and may *replace* ``topology``,
    ``positions``, ``totals``, ``marked``, and ``marked_totals`` — this is
    how the dynamics driver (:mod:`repro.dynamics`) applies agent churn,
    density shocks, and topology changes between rounds. After the hook
    returns, the simulation loop re-reads those fields, so a replaced array
    (even one of a different agent count) becomes the live state of the next
    round. The loop validates that the per-agent arrays stay mutually
    consistent and that positions remain valid nodes of ``topology``.

    In the single-run engine the per-agent arrays have shape ``(n,)``; in
    the batched engine (:mod:`repro.engine.batch`) they have shape
    ``(R, n)`` with a leading replicate axis. ``observed`` is this round's
    observed collision counts (already accumulated into ``totals``).
    """

    topology: Topology
    positions: np.ndarray
    totals: np.ndarray
    marked: np.ndarray
    marked_totals: np.ndarray
    observed: np.ndarray
    round_index: int
    rng: np.random.Generator

    @property
    def num_agents(self) -> int:
        """Live agents per replicate (the trailing axis of the state arrays)."""
        return int(self.positions.shape[-1])


#: Per-round hook contract; see :class:`RoundState`.
RoundHook = Callable[[RoundState], None]


def apply_round_hook(
    hook: RoundHook,
    state: RoundState,
) -> RoundState:
    """Invoke ``hook`` and validate the (possibly replaced) state arrays.

    Shared by the single-run and batched engines so both enforce the same
    contract: the per-agent arrays must keep one common shape and positions
    must be valid nodes of the (possibly replaced) topology.
    """
    hook(state)
    state.positions = np.asarray(state.positions, dtype=np.int64)
    state.totals = np.asarray(state.totals, dtype=np.float64)
    state.marked = np.asarray(state.marked, dtype=bool)
    state.marked_totals = np.asarray(state.marked_totals, dtype=np.float64)
    shape = state.positions.shape
    if state.num_agents < 1:
        raise ValueError("round_hook must leave at least one live agent")
    for name in ("totals", "marked", "marked_totals"):
        if getattr(state, name).shape != shape:
            raise ValueError(
                f"round_hook left inconsistent state: positions have shape {shape} "
                f"but {name} has shape {getattr(state, name).shape}"
            )
    state.topology.validate_nodes(state.positions)
    return state


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of a multi-agent encounter-rate simulation.

    Attributes
    ----------
    num_agents:
        Total number of agents placed on the topology (the paper's ``n + 1``).
    rounds:
        Number of rounds ``t`` each agent runs Algorithm 1 for.
    placement:
        Optional custom placement function ``(topology, count, rng) -> nodes``;
        defaults to independent uniform placement.
    marked_fraction:
        If positive, this fraction of agents is marked with the property
        tracked by the frequency estimator (each agent independently with
        this probability, matching the "uniformly distributed in population"
        assumption of Section 5.2).
    collision_model:
        Optional observation model for noisy collision detection.
    movement:
        Optional movement model replacing the uniform random walk (see
        :mod:`repro.walks.movement`); used by the E19 ablation.
    record_trajectory:
        When ``True``, cumulative collision counts are recorded after every
        round (memory ``O(num_agents * rounds)``), allowing convergence plots.
    round_hook:
        Optional per-round callback receiving a :class:`RoundState` after
        each round's observation has been accumulated. The hook may replace
        the state arrays and the topology, which is how the dynamics layer
        (:mod:`repro.dynamics`) injects agent churn, density shocks, and
        environment changes mid-run. Incompatible with
        ``record_trajectory`` (the trajectory matrix assumes a fixed
        population).
    """

    num_agents: int
    rounds: int
    placement: Optional[PlacementFn] = None
    marked_fraction: float = 0.0
    collision_model: Optional[CollisionObservationModel] = None
    movement: Optional[MovementModelLike] = None
    record_trajectory: bool = False
    round_hook: Optional[RoundHook] = None

    def __post_init__(self) -> None:
        require_integer(self.num_agents, "num_agents", minimum=1)
        require_integer(self.rounds, "rounds", minimum=1)
        if not 0.0 <= self.marked_fraction <= 1.0:
            raise ValueError(
                f"marked_fraction must lie in [0, 1], got {self.marked_fraction}"
            )
        if self.round_hook is not None and self.record_trajectory:
            raise ValueError(
                "round_hook may change the population mid-run; trajectory "
                "recording requires a fixed population, so the two cannot "
                "be combined"
            )


@dataclass
class SimulationResult:
    """Raw outcome of :func:`simulate_density_estimation`.

    Attributes
    ----------
    collision_totals:
        Per-agent total observed collisions over all rounds, shape ``(n+1,)``.
    marked_collision_totals:
        Per-agent totals of collisions with marked agents (all zeros when no
        agents are marked).
    marked:
        Boolean property vector actually assigned.
    initial_positions / final_positions:
        Agent node labels before the first and after the last round.
    trajectory:
        If requested, array of shape ``(rounds, n+1)`` of cumulative
        collision counts after each round; otherwise ``None``.
    """

    collision_totals: np.ndarray
    marked_collision_totals: np.ndarray
    marked: np.ndarray
    initial_positions: np.ndarray
    final_positions: np.ndarray
    rounds: int
    num_nodes: int
    trajectory: np.ndarray | None = None
    marked_trajectory: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def num_agents(self) -> int:
        return int(self.collision_totals.shape[0])

    @property
    def true_density(self) -> float:
        """The paper's density ``d = n / A`` (other agents per node)."""
        return (self.num_agents - 1) / self.num_nodes

    @property
    def true_marked_density(self) -> float:
        """Density of marked agents, ``d_P`` of Section 5.2.

        Follows the same "other agents" convention used for ``d``: from the
        perspective of a typical (unmarked) agent there are
        ``sum(marked)`` marked agents it can encounter.
        """
        return float(np.count_nonzero(self.marked)) / self.num_nodes

    def estimates(self) -> np.ndarray:
        """Per-agent density estimates ``d̃ = c / t`` (Algorithm 1's output)."""
        return self.collision_totals / self.rounds

    def marked_estimates(self) -> np.ndarray:
        """Per-agent marked-density estimates ``d̃_P = c_P / t``."""
        return self.marked_collision_totals / self.rounds


def uniform_placement(topology: Topology, count: int, rng: np.random.Generator) -> np.ndarray:
    """Default placement: each agent at an independent uniform random node."""
    return topology.uniform_nodes(count, rng)


def simulate_density_estimation(
    topology: Topology,
    config: SimulationConfig,
    seed: SeedLike = None,
) -> SimulationResult:
    """Run the encounter-rate simulation (Algorithm 1 for every agent).

    .. deprecated:: 1.4.0
        The serial round loop that used to live here has been unified with
        the batched loop into :func:`repro.core.kernel.run_kernel`; this
        function is now a thin serial-mode wrapper (``replicates=None``)
        kept for one release. It is **bit-identical** to the historical
        implementation — same random stream, same results, same
        :class:`RoundState` hook contract — as pinned by the golden
        fixtures in ``tests/baselines/kernel_golden.json``. Call
        ``run_kernel(topology, config, None, seed)`` directly instead.

    Parameters
    ----------
    topology:
        Topology to walk on; any :class:`~repro.topology.Topology`.
    config:
        Simulation parameters; see :class:`SimulationConfig`.
    seed:
        Seed or generator controlling all randomness (placement, walks,
        property assignment, and observation noise).

    Returns
    -------
    SimulationResult
        Per-agent collision totals and bookkeeping needed to form estimates.
    """
    warnings.warn(
        "simulate_density_estimation is deprecated and will be removed in a "
        "future release; call repro.core.kernel.run_kernel(topology, config, "
        "None, seed) for the same (bit-identical) serial simulation",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.kernel import run_kernel  # deferred: kernel imports this module

    return run_kernel(topology, config, None, seed)


__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "CollisionObservationModel",
    "MovementModelLike",
    "RoundState",
    "RoundHook",
    "apply_round_hook",
    "simulate_density_estimation",
    "uniform_placement",
]
