"""Multi-agent simulation engine for encounter-rate density estimation.

This module executes Algorithm 1 for *all* agents simultaneously: in each
round every agent takes one random-walk step and then observes
``count(position)`` — the number of other agents on its node. The engine is
shared by the random-walk estimator, the property-frequency estimator, the
robot-swarm application, and the noise/placement ablations; those callers
customise it through three hooks:

* ``placement`` — how agents are initially positioned (default: independent
  uniform placement, the assumption of Section 2);
* ``marked`` — an optional boolean property vector, so collisions with
  marked agents are tracked separately (Section 5.2);
* ``collision_model`` — an optional observation model that perturbs the true
  collision counts (missed or spurious detections, Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

import numpy as np

from repro.core.encounter import collision_counts, marked_collision_counts
from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer

PlacementFn = Callable[[Topology, int, np.random.Generator], np.ndarray]


class MovementModelLike(Protocol):
    """Anything with a ``step(topology, positions, rng)`` method.

    The concrete implementations live in :mod:`repro.walks.movement`; the
    default behaviour (no model) is the paper's uniform random walk via
    ``topology.step_many``.
    """

    def step(
        self, topology: Topology, positions: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance every agent by one round."""
        ...


class CollisionObservationModel(Protocol):
    """Observation model applied to the true per-round collision counts.

    Implementations live in :mod:`repro.swarm.noise`; the default behaviour
    (no model) reports the true counts.
    """

    def observe(self, true_counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the counts the agents actually record this round."""
        ...


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of a multi-agent encounter-rate simulation.

    Attributes
    ----------
    num_agents:
        Total number of agents placed on the topology (the paper's ``n + 1``).
    rounds:
        Number of rounds ``t`` each agent runs Algorithm 1 for.
    placement:
        Optional custom placement function ``(topology, count, rng) -> nodes``;
        defaults to independent uniform placement.
    marked_fraction:
        If positive, this fraction of agents is marked with the property
        tracked by the frequency estimator (each agent independently with
        this probability, matching the "uniformly distributed in population"
        assumption of Section 5.2).
    collision_model:
        Optional observation model for noisy collision detection.
    movement:
        Optional movement model replacing the uniform random walk (see
        :mod:`repro.walks.movement`); used by the E19 ablation.
    record_trajectory:
        When ``True``, cumulative collision counts are recorded after every
        round (memory ``O(num_agents * rounds)``), allowing convergence plots.
    """

    num_agents: int
    rounds: int
    placement: Optional[PlacementFn] = None
    marked_fraction: float = 0.0
    collision_model: Optional[CollisionObservationModel] = None
    movement: Optional[MovementModelLike] = None
    record_trajectory: bool = False

    def __post_init__(self) -> None:
        require_integer(self.num_agents, "num_agents", minimum=1)
        require_integer(self.rounds, "rounds", minimum=1)
        if not 0.0 <= self.marked_fraction <= 1.0:
            raise ValueError(
                f"marked_fraction must lie in [0, 1], got {self.marked_fraction}"
            )


@dataclass
class SimulationResult:
    """Raw outcome of :func:`simulate_density_estimation`.

    Attributes
    ----------
    collision_totals:
        Per-agent total observed collisions over all rounds, shape ``(n+1,)``.
    marked_collision_totals:
        Per-agent totals of collisions with marked agents (all zeros when no
        agents are marked).
    marked:
        Boolean property vector actually assigned.
    initial_positions / final_positions:
        Agent node labels before the first and after the last round.
    trajectory:
        If requested, array of shape ``(rounds, n+1)`` of cumulative
        collision counts after each round; otherwise ``None``.
    """

    collision_totals: np.ndarray
    marked_collision_totals: np.ndarray
    marked: np.ndarray
    initial_positions: np.ndarray
    final_positions: np.ndarray
    rounds: int
    num_nodes: int
    trajectory: np.ndarray | None = None
    marked_trajectory: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def num_agents(self) -> int:
        return int(self.collision_totals.shape[0])

    @property
    def true_density(self) -> float:
        """The paper's density ``d = n / A`` (other agents per node)."""
        return (self.num_agents - 1) / self.num_nodes

    @property
    def true_marked_density(self) -> float:
        """Density of marked agents, ``d_P`` of Section 5.2.

        Follows the same "other agents" convention used for ``d``: from the
        perspective of a typical (unmarked) agent there are
        ``sum(marked)`` marked agents it can encounter.
        """
        return float(np.count_nonzero(self.marked)) / self.num_nodes

    def estimates(self) -> np.ndarray:
        """Per-agent density estimates ``d̃ = c / t`` (Algorithm 1's output)."""
        return self.collision_totals / self.rounds

    def marked_estimates(self) -> np.ndarray:
        """Per-agent marked-density estimates ``d̃_P = c_P / t``."""
        return self.marked_collision_totals / self.rounds


def uniform_placement(topology: Topology, count: int, rng: np.random.Generator) -> np.ndarray:
    """Default placement: each agent at an independent uniform random node."""
    return topology.uniform_nodes(count, rng)


def simulate_density_estimation(
    topology: Topology,
    config: SimulationConfig,
    seed: SeedLike = None,
) -> SimulationResult:
    """Run the encounter-rate simulation (Algorithm 1 for every agent).

    Parameters
    ----------
    topology:
        Topology to walk on; any :class:`~repro.topology.Topology`.
    config:
        Simulation parameters; see :class:`SimulationConfig`.
    seed:
        Seed or generator controlling all randomness (placement, walks,
        property assignment, and observation noise).

    Returns
    -------
    SimulationResult
        Per-agent collision totals and bookkeeping needed to form estimates.
    """
    rng = as_generator(seed)
    n_agents = config.num_agents
    placement = config.placement or uniform_placement

    positions = np.asarray(placement(topology, n_agents, rng), dtype=np.int64)
    if positions.shape != (n_agents,):
        raise ValueError(
            f"placement must return shape ({n_agents},), got {positions.shape}"
        )
    topology.validate_nodes(positions)
    initial_positions = positions.copy()

    if config.marked_fraction > 0.0:
        marked = rng.random(n_agents) < config.marked_fraction
    else:
        marked = np.zeros(n_agents, dtype=bool)

    totals = np.zeros(n_agents, dtype=np.float64)
    marked_totals = np.zeros(n_agents, dtype=np.float64)
    track_marked = bool(marked.any())

    trajectory = (
        np.zeros((config.rounds, n_agents), dtype=np.float64)
        if config.record_trajectory
        else None
    )
    marked_trajectory = (
        np.zeros((config.rounds, n_agents), dtype=np.float64)
        if (config.record_trajectory and track_marked)
        else None
    )

    for round_index in range(config.rounds):
        if config.movement is not None:
            positions = np.asarray(config.movement.step(topology, positions, rng), dtype=np.int64)
        else:
            positions = topology.step_many(positions, rng)
        true_counts = collision_counts(positions)
        if config.collision_model is not None:
            observed = np.asarray(
                config.collision_model.observe(true_counts, rng), dtype=np.float64
            )
            if observed.shape != true_counts.shape:
                raise ValueError(
                    "collision_model.observe must preserve the shape of its input"
                )
        else:
            observed = true_counts.astype(np.float64)
        totals += observed

        if track_marked:
            marked_counts = marked_collision_counts(positions, marked).astype(np.float64)
            marked_totals += marked_counts
            if marked_trajectory is not None:
                marked_trajectory[round_index] = marked_totals

        if trajectory is not None:
            trajectory[round_index] = totals

    return SimulationResult(
        collision_totals=totals,
        marked_collision_totals=marked_totals,
        marked=marked,
        initial_positions=initial_positions,
        final_positions=positions,
        rounds=config.rounds,
        num_nodes=topology.num_nodes,
        trajectory=trajectory,
        marked_trajectory=marked_trajectory,
        metadata={"topology": topology.name},
    )


__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "CollisionObservationModel",
    "MovementModelLike",
    "simulate_density_estimation",
    "uniform_placement",
]
