"""The paper's core contribution: encounter-rate density estimation.

Contents
--------

* :mod:`repro.core.encounter` — vectorised collision counting (the
  ``count(position)`` primitive of the model, Section 2).
* :mod:`repro.core.simulation` — the multi-agent simulation engine that
  executes Algorithm 1 for all agents simultaneously.
* :mod:`repro.core.estimator` — :class:`RandomWalkDensityEstimator`
  (Algorithm 1) and the convenience function :func:`estimate_density`.
* :mod:`repro.core.independent` — the independent-sampling baseline of
  Appendix A (Algorithm 4, Theorem 32).
* :mod:`repro.core.frequency` — relative property-frequency estimation
  (Section 5.2).
* :mod:`repro.core.thresholds` — quorum / threshold detection built on top
  of density estimates (Section 6.2 discussion).
* :mod:`repro.core.bounds` — every closed-form bound stated by the paper, as
  plain functions shared by tests, experiments, and documentation.
* :mod:`repro.core.results` — result dataclasses with accuracy summaries.
"""

from repro.core.adaptive import (
    AdaptiveDensityEstimator,
    AdaptiveEstimate,
    rounds_for_threshold,
)
from repro.core.analytic import (
    AnalyticSolution,
    AnalyticUnsupportedError,
    run_analytic,
)
from repro.core.analytic import solve as solve_analytic
from repro.core.encounter import collision_counts, marked_collision_counts
from repro.core.estimator import RandomWalkDensityEstimator, estimate_density
from repro.core.independent import IndependentSamplingEstimator, estimate_density_independent
from repro.core.frequency import (
    PropertyFrequencyEstimate,
    estimate_property_frequency,
    estimate_property_frequency_batch,
)
from repro.core.kernel import BatchSimulationResult, require_batch_safe, run_kernel
from repro.core.thresholds import QuorumDecision, QuorumDetector
from repro.core.results import DensityEstimationRun, AccuracySummary
from repro.core.simulation import SimulationConfig, simulate_density_estimation
from repro.core import bounds

__all__ = [
    "AdaptiveDensityEstimator",
    "AdaptiveEstimate",
    "rounds_for_threshold",
    "AnalyticSolution",
    "AnalyticUnsupportedError",
    "run_analytic",
    "solve_analytic",
    "collision_counts",
    "marked_collision_counts",
    "RandomWalkDensityEstimator",
    "estimate_density",
    "IndependentSamplingEstimator",
    "estimate_density_independent",
    "PropertyFrequencyEstimate",
    "estimate_property_frequency",
    "estimate_property_frequency_batch",
    "BatchSimulationResult",
    "require_batch_safe",
    "run_kernel",
    "QuorumDetector",
    "QuorumDecision",
    "DensityEstimationRun",
    "AccuracySummary",
    "SimulationConfig",
    "simulate_density_estimation",
    "bounds",
]
