"""Closed-form expectations of Algorithm 1 — the ``analytic`` kernel backend.

Where the reference and fused backends *simulate* the encounter process,
this module *solves* it. For the vertex-transitive catalog topologies the
collision process of Algorithm 1 is exactly tractable:

* every agent's position is uniform on the nodes in every round (uniform
  placement is stationary for the uniform random walk), so two distinct
  agents collide in any given round with probability ``1/A`` and the
  per-agent estimate is **exactly unbiased**: ``E[d̃] = d = (n_a - 1)/A``;
* the only dependence between rounds is the single-pair *re-collision*
  chain: two walkers who share a node share one again ``m`` rounds later
  with probability ``p_m = Σ_x P^m(v, x)²`` — a quantity this module
  computes by per-round sparse transition-matrix convolution
  (:func:`meeting_probabilities`), or in closed form where one exists
  (complete graph, hypercube);
* covariances that involve three distinct walks vanish *exactly* (the
  walks are independent and their round marginals uniform), so the
  variance of every estimate is a finite sum over the ``p_m`` series —
  not a bound, the exact value (:class:`AnalyticSolution`).

Replicates therefore drop out of the cost model entirely: a batched
``run_kernel(..., replicates=R, backend="analytic")`` call costs the same
single ``O(A · degree · t)`` matrix recursion for ``R = 1`` and
``R = 10**6``; the replicate axis of the returned arrays is a read-only
``np.broadcast_to`` view.

Results flow through the ordinary result containers so every downstream
consumer (experiments, sweeps, serve, the statistical suite) works
untouched. The collision totals are **deterministic expectation combs**,
not samples: agent ``i`` receives ``E[C] + sd(C) · Φ⁻¹((i + ½)/n)``
(normalised to exact mean/variance), so the cross-agent mean of the
estimates is exactly ``d``, their variance exactly ``Var(d̃)``, and
quantile statistics such as :func:`repro.analysis.accuracy.empirical_epsilon`
reproduce the CLT prediction ``z_{1-δ/2} · σ/d``. This is why the backend
is **not** bit-identical to reference/fused — it returns the law of the
process, not a draw from it — and why cross-backend checks against it are
tolerance-based (see TESTING.md, "the analytic oracle contract").

Everything outside the solvable regime raises
:class:`AnalyticUnsupportedError` naming the offending component, so a
mis-targeted ``--backend analytic`` fails loudly instead of silently
returning wrong expectations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Optional

import numpy as np
import scipy.sparse

from repro.core.kernel import BatchSimulationResult
from repro.core.simulation import SimulationConfig, SimulationResult
from repro.topology.base import Topology
from repro.topology.complete import CompleteGraph
from repro.topology.hypercube import Hypercube
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D
from repro.topology.torus_kd import TorusKD
from repro.utils.rng import SeedLike
from repro.utils.validation import require_integer

try:  # SciPy >= 1.6 exposes the exact inverse normal CDF here.
    from scipy.special import ndtri
except ImportError:  # pragma: no cover - scipy always ships ndtri
    from scipy.stats import norm

    ndtri = norm.ppf

#: Topologies whose single-pair chain the engine can solve. All are
#: vertex-transitive with a symmetric uniform-step walk, which is what makes
#: ``p_m`` start-node independent and the round marginals uniform.
SUPPORTED_TOPOLOGIES = (CompleteGraph, Ring, Torus2D, TorusKD, Hypercube)

#: Budget for the explicit sparse transition matrix (``A · num_step_choices``
#: stored entries). The closed-form topologies (complete graph, hypercube)
#: are exempt — their series cost ``O(1)`` per lag regardless of ``A``.
MAX_TRANSITION_NNZ = 1 << 24


class AnalyticUnsupportedError(ValueError):
    """The requested combo has no exact analytic solution.

    Raised by :func:`ensure_analytic_supported` (and everything built on
    it) with a message naming the offending topology, movement model,
    observation model, hook, or size. Subclasses :class:`ValueError` so the
    CLI's error guard reports it as a clean ``error:`` line (exit 2).
    """


# ----------------------------------------------------------------------
# Capability checking
# ----------------------------------------------------------------------


def ensure_analytic_supported(topology: Topology, config: SimulationConfig) -> None:
    """Raise :class:`AnalyticUnsupportedError` unless the combo is solvable.

    The solvable regime is exactly: a supported vertex-transitive topology,
    uniform placement, the uniform random walk (``movement=None`` or a
    ``precomputed_steps`` model), noiseless observation, no per-round hook,
    no marked subpopulation, and no trajectory recording. Each check names
    its offender so callers can tell *which* ingredient broke the math.
    """
    if not isinstance(topology, SUPPORTED_TOPOLOGIES):
        supported = ", ".join(cls.__name__ for cls in SUPPORTED_TOPOLOGIES)
        raise AnalyticUnsupportedError(
            f"backend='analytic' does not support topology {topology.name!r} "
            f"({type(topology).__name__}): no exact single-pair re-collision "
            f"chain is implemented for it. Supported topologies: {supported}."
        )
    movement = config.movement
    if movement is not None and not getattr(movement, "precomputed_steps", False):
        name = getattr(movement, "name", None) or type(movement).__name__
        raise AnalyticUnsupportedError(
            f"backend='analytic' does not support movement model {name!r}: "
            "only the uniform random walk (movement=None, or a model "
            "declaring precomputed_steps=True such as UniformRandomWalk) "
            "keeps the round marginals uniform, which the exact mean and "
            "variance derivations require."
        )
    model = config.collision_model
    if model is not None and not getattr(model, "is_noiseless", False):
        name = getattr(model, "name", None) or type(model).__name__
        raise AnalyticUnsupportedError(
            f"backend='analytic' does not support collision model {name!r}: "
            "it perturbs the observed counts, and the analytic engine "
            "computes exact noiseless expectations. Drop the model or run a "
            "simulating backend (reference/fused)."
        )
    if config.round_hook is not None:
        name = getattr(config.round_hook, "__name__", None) or type(config.round_hook).__name__
        raise AnalyticUnsupportedError(
            f"backend='analytic' does not support round_hook {name!r}: hooks "
            "may mutate the population or topology mid-run, which has no "
            "closed-form law. Dynamic scenarios require a simulating backend."
        )
    if config.placement is not None:
        name = getattr(config.placement, "__name__", None) or type(config.placement).__name__
        raise AnalyticUnsupportedError(
            f"backend='analytic' does not support custom placement {name!r}: "
            "the derivation assumes independent uniform placement (the "
            "stationary distribution); a custom placement breaks the "
            "uniform round marginals."
        )
    if config.marked_fraction > 0.0:
        raise AnalyticUnsupportedError(
            f"backend='analytic' does not support marked_fraction="
            f"{config.marked_fraction}: marked-subpopulation collision "
            "totals are random in the property assignment, which the "
            "deterministic expectation containers cannot represent."
        )
    if config.record_trajectory:
        raise AnalyticUnsupportedError(
            "backend='analytic' does not support record_trajectory=True: "
            "per-round cumulative trajectories are sample paths, and the "
            "analytic engine returns laws, not paths."
        )


# ----------------------------------------------------------------------
# The single-pair re-collision chain
# ----------------------------------------------------------------------


def transition_matrix(topology: Topology) -> scipy.sparse.csr_matrix:
    """The one-step walk transition matrix ``P`` as a sparse CSR matrix.

    Built from the topology's own ``precomputed_steps`` capability: entry
    ``P[x, y]`` is the fraction of the ``num_step_choices`` uniform step
    draws that move ``x`` to ``y`` (duplicate destinations — e.g. the two
    directions of a side-2 torus — accumulate). Row-stochastic by
    construction, and symmetric for every supported topology (each step has
    an equally likely inverse step), which the property suite pins.
    """
    if not isinstance(topology, SUPPORTED_TOPOLOGIES):
        supported = ", ".join(cls.__name__ for cls in SUPPORTED_TOPOLOGIES)
        raise AnalyticUnsupportedError(
            f"no analytic transition structure for topology {topology.name!r} "
            f"({type(topology).__name__}); supported topologies: {supported}."
        )
    num_nodes = topology.num_nodes
    choices = int(topology.num_step_choices)
    if num_nodes * choices > MAX_TRANSITION_NNZ:
        raise AnalyticUnsupportedError(
            f"topology {topology.name!r} needs {num_nodes * choices} sparse "
            f"transition entries ({num_nodes} nodes x {choices} steps), over "
            f"the analytic budget of {MAX_TRANSITION_NNZ}; reduce the "
            "topology size or use a simulating backend."
        )
    nodes = np.arange(num_nodes, dtype=np.int64)
    rows = np.tile(nodes, choices)
    cols = np.concatenate(
        [
            np.asarray(
                topology.apply_steps(nodes, np.full(num_nodes, choice, dtype=np.int64)),
                dtype=np.int64,
            )
            for choice in range(choices)
        ]
    )
    data = np.full(num_nodes * choices, 1.0 / choices)
    return scipy.sparse.coo_matrix(
        (data, (rows, cols)), shape=(num_nodes, num_nodes)
    ).tocsr()


def meeting_probabilities(topology: Topology, max_lag: int) -> np.ndarray:
    """``p_m`` for ``m = 0..max_lag``: the single-pair re-collision series.

    ``p_m`` is the probability that two independent walkers currently on a
    common node share a node again exactly ``m`` rounds later; by vertex
    transitivity it does not depend on which node, so ``p_m = ||P^m δ_v||²``
    for any anchor ``v``. ``p_0 = 1`` by definition.

    The complete graph and the hypercube use exact closed forms (``O(1)``
    and ``O(dims)`` per lag); the torus/ring families run the sparse
    per-round convolution ``ρ_{m+1} = Pᵀ ρ_m`` — the same move the
    dispersal-model exemplar makes with its per-step scipy.sparse solution.
    """
    require_integer(max_lag, "max_lag", minimum=0)
    lags = np.arange(max_lag + 1)
    if isinstance(topology, CompleteGraph):
        # Return probability of one walker: a_m = 1/A + (1-1/A)(-1/(A-1))^m.
        # Conditioned on that, the second walker is at the shared node with
        # the same a_m and at each of the other A-1 nodes equally otherwise.
        size = topology.num_nodes
        a = 1.0 / size + (1.0 - 1.0 / size) * (-1.0 / (size - 1)) ** lags
        return a * a + (1.0 - a) ** 2 / (size - 1)
    if isinstance(topology, Hypercube):
        # The XOR of two independent m-step flip walks is a 2m-step flip
        # walk, so p_m is its return probability — a character sum over the
        # cube's eigenvalues (k-2j)/k with binomial weights.
        dims = topology.dims
        j = np.arange(dims + 1)
        weights = np.array([math.comb(dims, int(v)) for v in j], dtype=np.float64)
        weights *= 2.0**-dims
        eigenvalues = (dims - 2 * j) / dims
        return (weights[None, :] * eigenvalues[None, :] ** (2 * lags[:, None])).sum(axis=1)
    matrix = transition_matrix(topology).T.tocsr()
    rho = np.zeros(topology.num_nodes)
    rho[0] = 1.0
    series = np.empty(max_lag + 1)
    series[0] = 1.0
    for lag in range(1, max_lag + 1):
        rho = matrix @ rho
        series[lag] = float(rho @ rho)
    return series


# ----------------------------------------------------------------------
# The solution object
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class AnalyticSolution:
    """Exact law of Algorithm 1's estimates for one (topology, config) pair.

    All quantities are *exact* (finite-``A``, finite-``t``), not asymptotic
    bounds: the mean from uniform stationarity, the variances from the
    ``p_m`` re-collision series (three-walk covariances vanish exactly).
    The only approximate methods are the confidence widths —
    :meth:`clt_epsilon` (a CLT quantile) and :meth:`chernoff_epsilon`
    (a Chernoff tail bound, conservative by construction).
    """

    topology_name: str
    num_nodes: int
    num_agents: int
    rounds: int
    #: ``p_m`` indexed by lag, length ``rounds`` (``recollision[0] == 1``).
    recollision: np.ndarray
    #: Exact variance of one pair's collision-indicator sum over ``rounds``.
    pair_variance: float

    # -- first moments --------------------------------------------------
    @property
    def density(self) -> float:
        """The paper's ``d = (n_a - 1)/A`` — also exactly ``E[d̃]``."""
        return (self.num_agents - 1) / self.num_nodes

    @property
    def collisions_per_round(self) -> float:
        """Expected collisions one agent observes per round (``= d``)."""
        return self.density

    @property
    def expected_collision_total(self) -> float:
        """Expected total collisions one agent accumulates, ``t · d``."""
        return self.rounds * self.density

    def expected_collision_curve(self) -> np.ndarray:
        """Expected cumulative collisions after rounds ``1..t`` (linear in t)."""
        return self.density * np.arange(1, self.rounds + 1, dtype=np.float64)

    # -- second moments -------------------------------------------------
    @property
    def estimate_variance(self) -> float:
        """Exact ``Var(d̃_u)`` of one agent's estimate.

        ``Var(C_u) = n · V_pair`` exactly: the ``n = n_a - 1`` pair sums are
        uncorrelated because every covariance through a third walk vanishes.
        """
        n_others = self.num_agents - 1
        return n_others * self.pair_variance / self.rounds**2

    @property
    def estimate_std(self) -> float:
        """Exact standard deviation of one agent's estimate."""
        return math.sqrt(self.estimate_variance)

    @property
    def independent_variance(self) -> float:
        """``Var(d̃_u)`` if rounds were independent Bernoulli samples."""
        occupancy = 1.0 / self.num_nodes
        return (self.num_agents - 1) * occupancy * (1.0 - occupancy) / self.rounds

    @property
    def variance_inflation(self) -> float:
        """Exact variance over the independent-sampling variance (>= 1 on
        the slow-mixing topologies; exactly the paper's re-collision
        overhead, Lemma 19's quantity without the big-O)."""
        if self.num_agents == 1:
            return 1.0
        return self.estimate_variance / self.independent_variance

    @cached_property
    def _pair_covariance(self) -> float:
        """``Cov(d̃_u, d̃_v)`` for two distinct agents (shared-pair term)."""
        return self.pair_variance / self.rounds**2

    def grand_mean_variance(self, replicates: int = 1) -> float:
        """Exact variance of the across-agent (and replicate) mean estimate.

        One replicate's grand mean has ``Var = 2 n V_pair / (n_a t²)`` —
        each pair sum appears in two agents' counts — and independent
        replicates divide it by ``R``.
        """
        require_integer(replicates, "replicates", minimum=1)
        n_others = self.num_agents - 1
        single = 2.0 * n_others * self.pair_variance / (self.num_agents * self.rounds**2)
        return single / replicates

    def expected_sample_variance(self, replicates: int = 1) -> float:
        """Exact expectation of the pooled sample variance (``ddof=1``) of
        all ``R · n_a`` per-agent estimates.

        ``E[S²] = Var(d̃) − mean pairwise covariance``; only same-replicate
        pairs covary (through their shared pair sum).
        """
        require_integer(replicates, "replicates", minimum=1)
        total = replicates * self.num_agents
        if total < 2:
            return 0.0
        shared = (self.num_agents - 1) / (total - 1)
        return self.estimate_variance - shared * self._pair_covariance

    # -- confidence widths ----------------------------------------------
    def clt_epsilon(self, delta: float = 0.05) -> float:
        """CLT prediction of the ``(1-δ)`` relative-error quantile.

        Matches :func:`repro.analysis.accuracy.empirical_epsilon`: the
        ``(1-δ)`` quantile of ``|d̃ - d|/d`` under a normal approximation is
        ``z_{1-δ/2} · σ/d``.
        """
        _require_delta(delta)
        if self.density == 0.0:
            return math.inf
        return float(ndtri(1.0 - delta / 2.0)) * self.estimate_std / self.density

    def chernoff_epsilon(self, delta: float = 0.05) -> float:
        """Chernoff-style relative-error width at confidence ``1-δ``.

        Inverts the paper's tail bound ``P(fail) <= 2 exp(-ε² t d / 3)`` and
        inflates by ``sqrt(variance_inflation)`` to account for re-collision
        correlation (the Lemma 19 move). Conservative: always at least the
        independent-sampling width.
        """
        _require_delta(delta)
        mean_total = self.rounds * self.density
        if mean_total == 0.0:
            return math.inf
        epsilon = math.sqrt(3.0 * math.log(2.0 / delta) / mean_total)
        return epsilon * math.sqrt(max(1.0, self.variance_inflation))


def _require_delta(delta: float) -> None:
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")


def solve(topology: Topology, config: SimulationConfig) -> AnalyticSolution:
    """Solve the encounter process exactly for one (topology, config) pair.

    ``V_pair = t·q(1-q) + 2·Σ_{m=1}^{t-1} (t-m)·q·(p_m - q)`` with
    ``q = 1/A``: the variance of one pair's collision-indicator sum, the
    only nontrivial ingredient of every estimate moment.
    """
    ensure_analytic_supported(topology, config)
    rounds = config.rounds
    occupancy = 1.0 / topology.num_nodes
    recollision = meeting_probabilities(topology, rounds - 1)
    lags = np.arange(1, rounds)
    lag_covariances = occupancy * (recollision[1:] - occupancy)
    pair_variance = rounds * occupancy * (1.0 - occupancy) + 2.0 * float(
        ((rounds - lags) * lag_covariances).sum()
    )
    return AnalyticSolution(
        topology_name=topology.name,
        num_nodes=topology.num_nodes,
        num_agents=config.num_agents,
        rounds=rounds,
        recollision=recollision,
        pair_variance=max(0.0, pair_variance),
    )


# ----------------------------------------------------------------------
# Result containers (the existing record schema, carrying the law)
# ----------------------------------------------------------------------


@dataclass
class AnalyticSimulationResult(SimulationResult):
    """Serial-mode analytic result: a :class:`SimulationResult` whose
    collision totals are the deterministic expectation comb, plus the
    :class:`AnalyticSolution` it was built from."""

    solution: Optional[AnalyticSolution] = None


@dataclass
class AnalyticBatchResult(BatchSimulationResult):
    """Batched analytic result. Every per-agent array is a **read-only**
    ``np.broadcast_to`` view over one ``(n,)`` row — identical for every
    replicate — which is what makes the backend ``O(1)`` in ``R``."""

    solution: Optional[AnalyticSolution] = None


def _expectation_comb(solution: AnalyticSolution) -> np.ndarray:
    """Deterministic per-agent collision totals encoding the exact law.

    A Gaussian quantile comb ``Φ⁻¹((i+½)/n)``, renormalised to exact zero
    mean and unit variance, scaled by ``sd(C_u)`` and shifted by ``E[C_u]``:
    the cross-agent mean and variance of the resulting estimates equal the
    analytic mean and variance *exactly*, and empirical quantile statistics
    reproduce the CLT widths.
    """
    count = solution.num_agents
    mean_total = solution.expected_collision_total
    std_total = solution.rounds * solution.estimate_std
    comb = np.asarray(ndtri((np.arange(count) + 0.5) / count), dtype=np.float64)
    comb -= comb.mean()
    spread = comb.std()
    if spread > 0.0 and std_total > 0.0:
        comb *= std_total / spread
    else:
        comb = np.zeros(count)
    return mean_total + comb


def run_analytic(
    topology: Topology,
    config: SimulationConfig,
    replicates: Optional[int] = None,
    seed: SeedLike = None,
) -> AnalyticSimulationResult | AnalyticBatchResult:
    """The ``backend="analytic"`` entry point behind :func:`run_kernel`.

    Validates the combo (:func:`ensure_analytic_supported`), solves the
    process (:func:`solve`), and wraps the law in the ordinary result
    containers. ``seed`` is accepted for signature compatibility with the
    simulating backends and ignored — the output is deterministic.
    Positions and the marked vector are schema-filling zeros (the law has
    no sample path); ``metadata["backend"] == "analytic"`` marks them.
    """
    del seed  # deterministic: the law of the process has no randomness
    if replicates is not None:
        require_integer(replicates, "replicates", minimum=1)
    solution = solve(topology, config)
    totals_row = _expectation_comb(solution)
    count = config.num_agents
    metadata = {"topology": topology.name, "backend": "analytic"}
    if replicates is None:
        return AnalyticSimulationResult(
            collision_totals=totals_row,
            marked_collision_totals=np.zeros(count),
            marked=np.zeros(count, dtype=bool),
            initial_positions=np.zeros(count, dtype=np.int64),
            final_positions=np.zeros(count, dtype=np.int64),
            rounds=config.rounds,
            num_nodes=topology.num_nodes,
            metadata=metadata,
            solution=solution,
        )
    shape = (replicates, count)
    return AnalyticBatchResult(
        collision_totals=np.broadcast_to(totals_row, shape),
        marked_collision_totals=np.broadcast_to(np.zeros(count), shape),
        marked=np.broadcast_to(np.zeros(count, dtype=bool), shape),
        initial_positions=np.broadcast_to(np.zeros(count, dtype=np.int64), shape),
        final_positions=np.broadcast_to(np.zeros(count, dtype=np.int64), shape),
        rounds=config.rounds,
        num_nodes=topology.num_nodes,
        metadata=dict(metadata, replicates=replicates),
        solution=solution,
    )


__all__ = [
    "AnalyticBatchResult",
    "AnalyticSimulationResult",
    "AnalyticSolution",
    "AnalyticUnsupportedError",
    "MAX_TRANSITION_NNZ",
    "SUPPORTED_TOPOLOGIES",
    "ensure_analytic_supported",
    "meeting_probabilities",
    "run_analytic",
    "solve",
    "transition_matrix",
]
