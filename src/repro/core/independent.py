"""Algorithm 4 — the independent-sampling baseline (Appendix A).

Agents flip a fair coin to become either *stationary* or *walking*. Walking
agents move one step in a fixed direction each round (so distinct walking
agents never collide with each other after the modulo correction), and every
agent adds ``count(position)`` to its counter. After ``t`` rounds each agent
reduces its count modulo ``t`` (which removes the ``w·t`` lock-step
"spurious" collisions of co-starting walking agents) and returns
``d̃ = 2c / t``. Theorem 32 shows this is a ``(1 ± ε)`` estimate of ``d``
after ``t = Θ(log(1/δ)/(dε²))`` rounds — the performance of fully
independent sampling, which Algorithm 1 nearly matches.

The deterministic motion pattern requires a geometric notion of "step in a
fixed direction"; we support the two-dimensional torus (the paper's setting)
and, for convenience, any k-dimensional torus and the ring (where "walk one
step clockwise" plays the same role).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encounter import collision_counts
from repro.core.results import DensityEstimationRun
from repro.topology.base import Topology
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D
from repro.topology.torus_kd import TorusKD
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


def _deterministic_step(topology: Topology, positions: np.ndarray) -> np.ndarray:
    """Move every position one step along the fixed pattern of Algorithm 4."""
    if isinstance(topology, Torus2D):
        x, y = topology.decode(positions)
        return np.asarray(topology.encode(x, y + 1), dtype=np.int64)
    if isinstance(topology, Ring):
        return (positions + 1) % topology.size
    if isinstance(topology, TorusKD):
        coords = topology.decode(positions)
        coords[..., 0] = (coords[..., 0] + 1) % topology.side
        return topology.encode(coords)
    raise TypeError(
        "IndependentSamplingEstimator requires a torus-like topology "
        f"(Torus2D, TorusKD, or Ring); got {type(topology).__name__}"
    )


@dataclass
class IndependentSamplingEstimator:
    """Run Algorithm 4 for a population of agents on a torus-like topology.

    Parameters
    ----------
    topology:
        A :class:`Torus2D`, :class:`TorusKD`, or :class:`Ring`.
    num_agents:
        Total number of agents (the paper's ``n + 1``).
    rounds:
        Number of rounds ``t``. The analysis of Theorem 32 assumes
        ``t < sqrt(A)`` so a walking agent visits ``t`` distinct nodes.
    """

    topology: Topology
    num_agents: int
    rounds: int

    def __post_init__(self) -> None:
        require_integer(self.num_agents, "num_agents", minimum=1)
        require_integer(self.rounds, "rounds", minimum=1)
        _deterministic_step(self.topology, np.zeros(1, dtype=np.int64))  # type check

    @property
    def true_density(self) -> float:
        """Ground-truth density ``d = n / A``."""
        return (self.num_agents - 1) / self.topology.num_nodes

    def run(self, seed: SeedLike = None) -> DensityEstimationRun:
        """Execute Algorithm 4 and return per-agent estimates."""
        rng = as_generator(seed)
        topology = self.topology
        n_agents = self.num_agents
        rounds = self.rounds

        positions = topology.uniform_nodes(n_agents, rng)
        walking = rng.random(n_agents) < 0.5
        counters = np.zeros(n_agents, dtype=np.int64)

        for _ in range(rounds):
            stepped = _deterministic_step(topology, positions)
            positions = np.where(walking, stepped, positions)
            counters += collision_counts(positions)

        corrected = np.mod(counters, rounds)
        estimates = 2.0 * corrected / rounds
        return DensityEstimationRun(
            estimates=estimates,
            collision_totals=corrected.astype(np.float64),
            true_density=self.true_density,
            rounds=rounds,
            num_agents=n_agents,
            num_nodes=topology.num_nodes,
            topology_name=topology.name,
            algorithm="independent_sampling",
            metadata={"walking_fraction": float(walking.mean())},
        )


def estimate_density_independent(
    topology: Topology,
    num_agents: int,
    rounds: int,
    seed: SeedLike = None,
) -> DensityEstimationRun:
    """Convenience wrapper around :class:`IndependentSamplingEstimator`."""
    return IndependentSamplingEstimator(topology, num_agents, rounds).run(seed)


__all__ = ["IndependentSamplingEstimator", "estimate_density_independent"]
