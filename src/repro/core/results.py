"""Result containers and accuracy summaries for density-estimation runs.

The paper's accuracy statements are of the form "with probability 1 - δ the
estimate lies in [(1-ε)d, (1+ε)d]". :class:`DensityEstimationRun` therefore
exposes, besides the raw per-agent estimates, the empirical counterparts of
ε and δ: the fraction of agents within a given ε, and the ε achieved by a
given fraction 1 - δ of agents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.utils.validation import require_probability


@dataclass(frozen=True)
class AccuracySummary:
    """Summary statistics of a set of per-agent density estimates."""

    true_density: float
    mean_estimate: float
    std_estimate: float
    mean_relative_error: float
    median_relative_error: float
    max_relative_error: float

    @classmethod
    def from_estimates(cls, estimates: np.ndarray, true_density: float) -> "AccuracySummary":
        estimates = np.asarray(estimates, dtype=np.float64)
        if estimates.size == 0:
            raise ValueError("estimates must be non-empty")
        if true_density <= 0:
            raise ValueError(f"true_density must be positive, got {true_density}")
        relative = np.abs(estimates - true_density) / true_density
        return cls(
            true_density=float(true_density),
            mean_estimate=float(estimates.mean()),
            std_estimate=float(estimates.std()),
            mean_relative_error=float(relative.mean()),
            median_relative_error=float(np.median(relative)),
            max_relative_error=float(relative.max()),
        )


@dataclass(frozen=True)
class DensityEstimationRun:
    """Outcome of running a density-estimation algorithm for all agents.

    Attributes
    ----------
    estimates:
        Per-agent density estimates ``d̃`` (shape ``(n + 1,)`` — every agent
        estimates).
    collision_totals:
        Per-agent total collision counts ``c`` over the run.
    true_density:
        The ground-truth density ``d = n / A`` (paper's convention: the
        number of *other* agents divided by the number of nodes).
    rounds:
        Number of rounds ``t`` executed.
    num_agents:
        Total number of agents ``n + 1``.
    num_nodes:
        Number of nodes ``A`` of the topology.
    topology_name:
        Label of the topology walked on.
    algorithm:
        Name of the estimation algorithm ("random_walk", "independent_sampling", ...).
    metadata:
        Free-form extras recorded by callers (e.g. noise parameters).
    """

    estimates: np.ndarray
    collision_totals: np.ndarray
    true_density: float
    rounds: int
    num_agents: int
    num_nodes: int
    topology_name: str
    algorithm: str = "random_walk"
    metadata: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Accuracy queries matching the paper's (ε, δ) statements
    # ------------------------------------------------------------------
    def relative_errors(self) -> np.ndarray:
        """``|d̃ - d| / d`` for every agent."""
        return np.abs(self.estimates - self.true_density) / self.true_density

    def fraction_within(self, epsilon: float) -> float:
        """Fraction of agents whose estimate lies in ``[(1-ε)d, (1+ε)d]``.

        The empirical counterpart of ``1 - δ`` for a fixed ``ε``.
        """
        require_probability(epsilon, "epsilon", allow_zero=False)
        return float(np.mean(self.relative_errors() <= epsilon))

    def empirical_epsilon(self, delta: float = 0.1) -> float:
        """Smallest ``ε`` achieved by a ``1 - δ`` fraction of the agents.

        The empirical counterpart of Theorem 1's ``ε`` for a target failure
        probability ``δ`` (computed as the ``(1 - δ)``-quantile of the
        per-agent relative errors).
        """
        require_probability(delta, "delta", allow_zero=False, allow_one=False)
        return float(np.quantile(self.relative_errors(), 1.0 - delta))

    def summary(self) -> AccuracySummary:
        """Aggregate accuracy statistics for the run."""
        return AccuracySummary.from_estimates(self.estimates, self.true_density)

    def mean_estimate(self) -> float:
        """Average estimate across agents (should be ≈ d by Corollary 3)."""
        return float(self.estimates.mean())

    def all_within(self, epsilon: float) -> bool:
        """Whether *every* agent is within ``ε`` (the union-bound guarantee)."""
        require_probability(epsilon, "epsilon", allow_zero=False)
        return bool(np.all(self.relative_errors() <= epsilon))


__all__ = ["AccuracySummary", "DensityEstimationRun"]
