"""Adaptive (sequential) density estimation.

Theorem 1's round budget depends on the *unknown* density ``d``, which is
awkward to apply in practice: an agent cannot know how long to walk without
knowing the answer. Section 6.2 of the paper raises the related point that
for threshold detection the budget should depend on the threshold, not on
``d``. This module implements the standard doubling / sequential-estimation
answer to both observations:

* :class:`AdaptiveDensityEstimator` runs Algorithm 1 in phases of doubling
  length and stops once the (empirical-Bernstein style) confidence interval
  around the running estimate is within the requested relative width. The
  number of rounds it ends up using automatically scales as ``~ 1/d`` — the
  agent walks longer in sparse environments without being told ``d``.
* :func:`rounds_for_threshold` gives the fixed budget sufficient to decide a
  threshold question (the Section 6.2 observation): it depends only on the
  threshold ``θ`` and the separation margin, never on ``d``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core import bounds
from repro.core.encounter import collision_counts
from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer, require_probability


@dataclass(frozen=True)
class AdaptiveEstimate:
    """Outcome of one adaptive estimation run (population-wide view)."""

    estimates: np.ndarray
    rounds_used: int
    phases: int
    true_density: float
    target_epsilon: float
    converged_fraction: float

    def mean_estimate(self) -> float:
        return float(self.estimates.mean())


@dataclass
class AdaptiveDensityEstimator:
    """Sequential version of Algorithm 1 with a doubling phase schedule.

    All agents walk together (one shared simulation); after each phase the
    estimator checks, per agent, whether the agent's confidence interval is
    narrower than ``target_epsilon`` times its running estimate, and stops
    once a ``stop_quantile`` fraction of agents have converged or the round
    cap is hit.

    Parameters
    ----------
    topology:
        Topology the agents walk on.
    num_agents:
        Number of agents.
    target_epsilon:
        Desired relative half-width of the per-agent confidence interval.
    delta:
        Per-agent confidence parameter used in the interval.
    initial_rounds:
        Length of the first phase (doubled every phase).
    max_rounds:
        Hard cap on the total number of rounds.
    stop_quantile:
        Fraction of agents that must have converged before stopping.
    """

    topology: Topology
    num_agents: int
    target_epsilon: float = 0.2
    delta: float = 0.1
    initial_rounds: int = 16
    max_rounds: int = 100_000
    stop_quantile: float = 0.9

    def __post_init__(self) -> None:
        require_integer(self.num_agents, "num_agents", minimum=1)
        require_probability(self.target_epsilon, "target_epsilon", allow_zero=False, allow_one=False)
        require_probability(self.delta, "delta", allow_zero=False, allow_one=False)
        require_integer(self.initial_rounds, "initial_rounds", minimum=1)
        require_integer(self.max_rounds, "max_rounds", minimum=self.initial_rounds)
        require_probability(self.stop_quantile, "stop_quantile", allow_zero=False)

    # ------------------------------------------------------------------
    def _interval_half_width(self, counts: np.ndarray, rounds: int) -> np.ndarray:
        """Bernstein-style half-width of the per-agent rate estimate.

        The collision count behaves like a sum of near-Poisson contributions
        whose variance is inflated by the local mixing sum ``B(t) ≈ log(2t)``
        on the torus (Lemma 11 with k = 2); the additive term is the usual
        Bernstein correction with scale ``b ≈ log(2t)`` (Corollary 17).
        """
        log_term = math.log(4.0 / self.delta)
        local_mixing = math.log(2.0 * rounds)
        variance_proxy = np.maximum(counts, 1.0) * local_mixing
        half_width = np.sqrt(2.0 * variance_proxy * log_term) + local_mixing * log_term
        return half_width / rounds

    def run(self, seed: SeedLike = None) -> AdaptiveEstimate:
        """Run the sequential procedure and return the stopping state."""
        rng = as_generator(seed)
        positions = self.topology.uniform_nodes(self.num_agents, rng)
        counts = np.zeros(self.num_agents, dtype=np.float64)
        rounds_done = 0
        phase_length = self.initial_rounds
        phases = 0

        while rounds_done < self.max_rounds:
            phase_length = min(phase_length, self.max_rounds - rounds_done)
            for _ in range(phase_length):
                positions = self.topology.step_many(positions, rng)
                counts += collision_counts(positions)
            rounds_done += phase_length
            phases += 1

            estimates = counts / rounds_done
            half_widths = self._interval_half_width(counts, rounds_done)
            converged = half_widths <= self.target_epsilon * np.maximum(estimates, 1e-12)
            if float(np.mean(converged)) >= self.stop_quantile:
                break
            phase_length *= 2

        estimates = counts / rounds_done
        half_widths = self._interval_half_width(counts, rounds_done)
        converged = half_widths <= self.target_epsilon * np.maximum(estimates, 1e-12)
        true_density = (self.num_agents - 1) / self.topology.num_nodes
        return AdaptiveEstimate(
            estimates=estimates,
            rounds_used=rounds_done,
            phases=phases,
            true_density=true_density,
            target_epsilon=self.target_epsilon,
            converged_fraction=float(np.mean(converged)),
        )


def rounds_for_threshold(
    threshold: float, margin: float, delta: float, *, constant: float = 1.0
) -> int:
    """Budget sufficient to decide "is d above θ?" for densities outside (1 ± margin)·θ.

    The Section 6.2 observation: the budget is Theorem 1's bound evaluated at
    the *threshold* density with ``ε = margin/2`` — it never references the
    unknown true density.
    """
    require_probability(margin, "margin", allow_zero=False, allow_one=False)
    return bounds.theorem1_rounds(threshold, margin / 2.0, delta, constant=constant)


__all__ = ["AdaptiveEstimate", "AdaptiveDensityEstimator", "rounds_for_threshold"]
