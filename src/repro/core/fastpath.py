"""The fused kernel fast path: linear-time counting, chunked RNG, reused buffers.

:func:`repro.core.kernel.run_kernel` is the one round loop behind every
experiment, sweep cell, and dynamics scenario, so a constant-factor win here
multiplies across the whole repository. This module is the
``backend="fused"`` implementation of that loop (and what ``backend="auto"``,
the default, currently selects). It stacks three optimisations on the
reference loop, all **bit-identical** to it — same random stream, same
results, pinned by the golden fixtures and the equivalence suite:

1. **Linear-time collision counting.** The reference loop counts collisions
   with an ``np.unique`` sort over all ``R·n`` offset labels —
   O(R·n log(R·n)) per round. The paper's ``count(position)`` primitive
   only needs O(R·n + R·A): scatter-add the labels into the flat ``R·A``
   label space with ``np.bincount`` and gather each agent's node count
   back. :func:`repro.core.encounter.linear_counting_is_faster` is the
   measured crossover heuristic (dense grids → bincount, huge sparse
   grids → sort; the crossover grid in
   ``benchmarks/bench_core_primitives.py`` pins it).

2. **Chunked RNG + fused stepping.** Topologies declaring the
   ``precomputed_steps`` capability (:class:`~repro.topology.Torus2D`,
   :class:`~repro.topology.TorusKD`, :class:`~repro.topology.Ring`,
   :class:`~repro.topology.Hypercube`,
   :class:`~repro.topology.BoundedGrid`,
   :class:`~repro.topology.CompleteGraph`) factor their walk step into
   ``draw_steps`` (randomness) + ``apply_steps`` (pure displacement). When
   nothing else consumes the per-round stream (no observation noise, no
   round hook; the movement model, if any, must itself declare
   ``precomputed_steps``), the fast path draws K rounds of step choices at
   a time as one ``(K, R, n)`` array — NumPy's bounded-integer samplers
   fill elements sequentially in C order, so the chunked draw consumes the
   stream bit-identically to K per-round draws. Steps are applied through a
   precomputed ``(A, C)`` displacement table (one fancy-gather per round)
   when the table fits the budget *and* its build cost amortises over the
   run. Topologies whose per-round draw interleaves several generator
   calls (``TorusKD``) keep a per-round chunk fill — bit-identity is
   non-negotiable, not distributional.

3. **Zero-allocation rounds.** The label / per-agent-count / step-index
   scratch buffers are preallocated once and reused across rounds;
   accumulation happens with ``np.add(..., out=...)``; the
   ``topology.num_nodes`` lookup, offset-label construction, and
   label-range validation are hoisted out of the loop (validation runs
   once after placement and after every ``round_hook`` mutation — and per
   round only for foreign movement models that do not declare
   ``emits_valid_nodes``). A ``round_hook`` that swaps the topology or
   reshapes the state re-arms all of this invariant state.

Contracts preserved exactly:

* a ``collision_model`` receives a **fresh** counts array each round (a
  model may retain its input; reference semantics);
* a ``round_hook`` receives a **fresh** ``observed`` array each round and
  fresh ``positions`` (never an in-place-reused step buffer), so hooks may
  retain state snapshots exactly as they could under the reference loop;
* chunked RNG switches off whenever a hook or observation model interleaves
  its own draws with the movement draws.

Backend selection order: ``run_kernel`` dispatches ``backend="analytic"``
to :mod:`repro.core.analytic` *before* reaching this module — the analytic
engine replaces the round loop wholesale (no simulation), so none of the
per-feature heuristics here apply to it. Every simulating resolution
(``auto``/``fused``) lands here and makes its choices per feature as
described above.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core import encounter
from repro.core.encounter import (
    batched_collision_counts,
    batched_collision_profiles,
    linear_counting_block_rows,
)
from repro.core.simulation import (
    RoundState,
    SimulationConfig,
    apply_round_hook,
)
from repro.obs.telemetry import Telemetry, get_telemetry
from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator

#: Hard cap on the elements of one precomputed displacement table (A·C
#: int64 entries). Tables beyond it would not fit hot cache levels anyway.
TABLE_BUDGET_ELEMENTS = 1 << 22

#: A displacement table costs ~A·C element writes to build; it saves work
#: proportional to rounds·R·n. Build only when the saving clearly covers
#: the build (small serial runs on huge topologies must not pay for a
#: table they barely use).
TABLE_AMORTISATION_FACTOR = 4

#: Upper bound on the elements of one chunked draw buffer (K·R·n int64).
CHUNK_BUDGET_ELEMENTS = 1 << 21


def build_step_table(topology: Topology) -> Optional[np.ndarray]:
    """Flat displacement table ``t[a * C + c] = apply_steps(a, c)``, or ``None``.

    Tabulates the topology's pure displacement function over every
    ``(node, choice)`` pair — by calling :meth:`~repro.topology.base.Topology.apply_steps`
    itself, so the table cannot drift from the walk it replaces. Returns
    ``None`` when the topology lacks the ``precomputed_steps`` capability
    or the table would blow :data:`TABLE_BUDGET_ELEMENTS`.
    """
    choices = topology.num_step_choices
    if choices is None:
        return None
    num_nodes = topology.num_nodes
    if num_nodes * choices > TABLE_BUDGET_ELEMENTS:
        return None
    nodes = np.arange(num_nodes, dtype=np.int64)
    table = np.empty((num_nodes, choices), dtype=np.int64)
    for choice in range(choices):
        table[:, choice] = topology.apply_steps(
            nodes, np.full(num_nodes, choice, dtype=np.int64)
        )
    return np.ascontiguousarray(table.reshape(-1))


class _ArmedLoop:
    """Loop-invariant state of the fused round loop.

    Everything here is computed once per arming — the ``topology.num_nodes``
    lookup, the replicate offset labels, the counting-path choice, the
    displacement table, and every scratch buffer — and re-armed only when a
    ``round_hook`` swaps the topology or reshapes the live state arrays.
    """

    def __init__(
        self,
        topology: Topology,
        shape: tuple[int, ...],
        config: SimulationConfig,
        rounds_left: int,
    ):
        self.topology = topology
        self.shape = shape
        self.num_nodes = topology.num_nodes
        rows = shape[0] if len(shape) == 2 else 1
        agents = shape[-1]
        movement = config.movement
        hooked = config.round_hook is not None

        #: Catalog movement models declare ``emits_valid_nodes``; for them
        #: (and for the plain topology walk) label-range validation is
        #: hoisted out of the loop entirely. Foreign models keep a
        #: per-round ``validate_nodes`` — out-of-range labels would
        #: otherwise alias across replicate blocks in the linear counter.
        self.validate_each_round = movement is not None and not getattr(
            movement, "emits_valid_nodes", False
        )

        #: Whether the movement randomness is exactly the topology's own
        #: step draw, so the draw/apply decomposition applies.
        self.steps_precomputable = bool(
            getattr(topology, "precomputed_steps", False)
            and (movement is None or getattr(movement, "precomputed_steps", False))
        )

        self.choices = topology.num_step_choices if self.steps_precomputable else None
        self.table: Optional[np.ndarray] = None
        if self.steps_precomputable and self.choices is not None:
            build_cost = self.num_nodes * self.choices
            saving = rounds_left * max(rows * agents, 1)
            if build_cost * TABLE_AMORTISATION_FACTOR <= saving:
                self.table = build_step_table(topology)
        self.index_buf = np.empty(shape, dtype=np.int64) if self.table is not None else None

        # Counting path: the measured unique-vs-bincount crossover, with
        # the memory cap expressed as a *block plan* — when the full R·A
        # scatter buffer would blow the budget but the asymptotics still
        # favour the linear path, the scatter chunks over contiguous row
        # blocks instead of reverting to the O(R·n log R·n) sort. The
        # budget is read through the module attribute so tests can shrink
        # it and exercise the chunked branch on small workloads.
        block = linear_counting_block_rows(
            rows,
            agents,
            self.num_nodes,
            memory_budget_bytes=encounter.LINEAR_COUNTING_MEMORY_BUDGET_BYTES,
        )
        self.linear = block >= rows and block > 0
        self.block_rows = block if (0 < block < rows and len(shape) == 2) else None
        if self.linear and len(shape) == 2:
            self.offsets = (
                np.arange(rows, dtype=np.int64) * np.int64(self.num_nodes)
            )[:, None]
            self.label_buf = np.empty(shape, dtype=np.int64)
        else:
            self.offsets = None
            self.label_buf = None
        if self.block_rows is not None:
            self.block_offsets = (
                np.arange(self.block_rows, dtype=np.int64) * np.int64(self.num_nodes)
            )[:, None]
            self.block_label_buf = np.empty((self.block_rows, agents), dtype=np.int64)
        else:
            self.block_offsets = None
            self.block_label_buf = None
        self.count_buf = (
            np.empty(shape, dtype=np.int64)
            if (self.linear or self.block_rows is not None)
            else None
        )
        self.space = rows * self.num_nodes
        #: Hooks may replace or mutate ``marked`` between rounds, so the
        #: float view used by the weighted scatter-add is cached only for
        #: hook-free runs.
        self.cache_marked_float = not hooked
        self.marked_float: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step_precomputed(
        self, positions: np.ndarray, draws: np.ndarray, in_place: bool
    ) -> np.ndarray:
        """Apply one round of drawn step choices (table gather when armed)."""
        if self.table is None:
            return self.topology.apply_steps(positions, draws)
        if in_place:
            np.multiply(positions, self.choices, out=self.index_buf)
            np.add(self.index_buf, draws, out=self.index_buf)
            np.take(self.table, self.index_buf, out=positions)
            return positions
        np.multiply(positions, self.choices, out=self.index_buf)
        np.add(self.index_buf, draws, out=self.index_buf)
        return self.table[self.index_buf]

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def _labels(self, positions: np.ndarray) -> np.ndarray:
        """Offset labels for the linear counter (serial mode: positions as-is)."""
        if self.offsets is None:
            return positions
        np.add(positions, self.offsets, out=self.label_buf)
        return self.label_buf

    def count(self, positions: np.ndarray, fresh: bool) -> np.ndarray:
        """This round's per-agent collision counts.

        ``fresh=True`` returns a newly allocated array (required when a
        collision model will observe it — models may retain their input);
        otherwise the reused scratch buffer is returned.

        The linear branch here (and in :meth:`count_profiles`) is the
        buffer-reusing form of
        :func:`repro.core.encounter.batched_collision_counts_linear` — that
        primitive is the tested specification (property-based equivalence
        in tests/test_fastpath.py), and the backend bit-identity battery
        pins this in-loop form against the reference backend, so the two
        cannot drift apart silently.
        """
        if self.block_rows is not None:
            out = np.empty(positions.shape, dtype=np.int64) if fresh else self.count_buf
            return self._count_blocks(positions, out)
        if not self.linear:
            matrix = positions.reshape(-1, positions.shape[-1])
            return batched_collision_counts(
                matrix, self.num_nodes, assume_validated=True
            ).reshape(positions.shape)
        labels = self._labels(positions)
        per_node = np.bincount(labels.reshape(-1), minlength=self.space)
        if fresh or self.count_buf is None:
            return per_node[labels] - 1
        np.take(per_node, labels, out=self.count_buf)
        np.subtract(self.count_buf, 1, out=self.count_buf)
        return self.count_buf

    def _count_blocks(self, positions: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Cap-respecting linear counting: one scatter pass per row block.

        Bit-identical to the single-pass bincount (labels never cross
        blocks, so each block's ``rows·A`` scatter space sees exactly the
        elements the full ``R·A`` space would), but the per-node buffer
        peaks at ``block_rows·A`` slots — the memory cap — instead of
        ``R·A``.
        """
        block = self.block_rows
        for lo in range(0, positions.shape[0], block):
            hi = min(lo + block, positions.shape[0])
            labels = self.block_label_buf[: hi - lo]
            np.add(positions[lo:hi], self.block_offsets[: hi - lo], out=labels)
            per_node = np.bincount(
                labels.reshape(-1), minlength=(hi - lo) * self.num_nodes
            )
            np.take(per_node, labels, out=out[lo:hi])
        np.subtract(out, 1, out=out)
        return out

    def count_profiles(
        self, positions: np.ndarray, marked: np.ndarray, fresh: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Plain and marked per-agent counts sharing one label pass."""
        if self.block_rows is not None:
            out = np.empty(positions.shape, dtype=np.int64) if fresh else self.count_buf
            return self._profile_blocks(positions, marked, out)
        if not self.linear:
            matrix = positions.reshape(-1, positions.shape[-1])
            counts, marked_counts = batched_collision_profiles(
                matrix,
                marked.reshape(matrix.shape),
                self.num_nodes,
                assume_validated=True,
            )
            return counts.reshape(positions.shape), marked_counts.reshape(positions.shape)
        labels = self._labels(positions)
        flat = labels.reshape(-1)
        per_node = np.bincount(flat, minlength=self.space)
        if self.cache_marked_float:
            if self.marked_float is None:
                self.marked_float = marked.astype(np.float64)
            marked_float = self.marked_float
        else:
            marked_float = marked.astype(np.float64)
        marked_per_node = np.bincount(
            flat, weights=marked_float.reshape(-1), minlength=self.space
        )
        marked_counts = (marked_per_node[labels] - marked_float).astype(np.int64)
        if fresh or self.count_buf is None:
            return per_node[labels] - 1, marked_counts
        np.take(per_node, labels, out=self.count_buf)
        np.subtract(self.count_buf, 1, out=self.count_buf)
        return self.count_buf, marked_counts

    def _profile_blocks(
        self, positions: np.ndarray, marked: np.ndarray, out: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Block-chunked form of :meth:`count_profiles` (see :meth:`_count_blocks`)."""
        block = self.block_rows
        marked_counts = np.empty(positions.shape, dtype=np.int64)
        for lo in range(0, positions.shape[0], block):
            hi = min(lo + block, positions.shape[0])
            labels = self.block_label_buf[: hi - lo]
            np.add(positions[lo:hi], self.block_offsets[: hi - lo], out=labels)
            flat = labels.reshape(-1)
            space = (hi - lo) * self.num_nodes
            per_node = np.bincount(flat, minlength=space)
            marked_float = marked[lo:hi].astype(np.float64)
            marked_per_node = np.bincount(
                flat, weights=marked_float.reshape(-1), minlength=space
            )
            marked_counts[lo:hi] = (marked_per_node[labels] - marked_float).astype(np.int64)
            np.take(per_node, labels, out=out[lo:hi])
        np.subtract(out, 1, out=out)
        return out, marked_counts


def _report_armed(tel: Telemetry, armed: _ArmedLoop, reason: str, chunkable: bool) -> None:
    """Telemetry snapshot of one arming: counting path, crossover inputs, features.

    Observation only — called only when a recorder is installed, and reads
    nothing but already-computed invariants.
    """
    rows = armed.shape[0] if len(armed.shape) == 2 else 1
    if armed.linear:
        path = "bincount"
    elif armed.block_rows is not None:
        path = "bincount-blocked"
    else:
        path = "unique"
    tel.counter("fastpath.counting_path", path=path)
    tel.event(
        "fastpath.armed",
        reason=reason,
        counting_path=path,
        rows=rows,
        agents=int(armed.shape[-1]),
        num_nodes=int(armed.num_nodes),
        counting_block_rows=armed.block_rows,
        steps_precomputable=armed.steps_precomputable,
        displacement_table=armed.table is not None,
        chunked_rng=chunkable,
    )


def _run_portable(
    topology: Topology,
    config: SimulationConfig,
    replicates: Optional[int],
    seed: SeedLike,
    namespace: str,
):
    """The fused loop body in pure array-API operations on ``namespace``.

    Randomness stays on the host: placement, marking, and per-round step
    draws come from the same NumPy generator in the same order as the
    unchunked fused loop, then transfer into the namespace (the
    Parasitoids pattern — host RNG, device arithmetic). Stepping goes
    through the precomputed displacement table (one flat gather per
    round); counting through the portable encounter primitives. Integer
    state is therefore **bit-identical** to the default fused path on any
    namespace with exact int64 — ``array_namespace="numpy"`` is pinned
    against the default path by the equivalence suite, and
    ``array-api-strict`` re-runs that battery in CI.

    Loud capability errors, never silent fallbacks: movement models,
    observation noise, and round hooks interleave host randomness with
    namespace state in ways the portable loop cannot reproduce, and
    topologies without a budget-sized displacement table have no portable
    step. Both raise :class:`~repro.core.array_backend.ArrayBackendError`.
    """
    from repro.core.array_backend import ArrayBackendError, get_namespace, to_numpy
    from repro.core.encounter import (
        batched_collision_counts_portable,
        batched_collision_profiles_portable,
    )
    from repro.core.kernel import _build_result, _place_agents

    unsupported = [
        label
        for label, present in (
            ("movement models", config.movement is not None),
            ("observation-noise models", config.collision_model is not None),
            ("round hooks", config.round_hook is not None),
        )
        if present
    ]
    if unsupported:
        raise ArrayBackendError(
            f"array namespace {namespace!r} runs do not support "
            f"{', '.join(unsupported)}: the portable loop covers the plain "
            "topology walk (host RNG, namespace arithmetic); run this "
            "workload on the default NumPy path instead"
        )
    xp = get_namespace(namespace)
    table_np = build_step_table(topology)
    if table_np is None:
        raise ArrayBackendError(
            f"array namespace {namespace!r} runs require a precomputed "
            f"displacement table, but topology {topology.name!r} either "
            "does not declare precomputed_steps or its table exceeds "
            f"TABLE_BUDGET_ELEMENTS ({TABLE_BUDGET_ELEMENTS})"
        )

    serial = replicates is None
    rng = as_generator(seed)
    positions_np = _place_agents(topology, config, replicates, rng)
    shape = positions_np.shape
    initial_positions = positions_np.copy()
    if config.marked_fraction > 0.0:
        marked_np = rng.random(shape) < config.marked_fraction
    else:
        marked_np = np.zeros(shape, dtype=bool)
    track_marked = bool(marked_np.any())

    matrix_shape = shape if len(shape) == 2 else (1, *shape)
    rounds = config.rounds
    choices = topology.num_step_choices
    num_nodes = topology.num_nodes

    table = xp.asarray(table_np)
    positions = xp.asarray(positions_np.reshape(matrix_shape))
    marked = xp.asarray(marked_np.reshape(matrix_shape))
    totals = xp.zeros(matrix_shape, dtype=xp.float64)
    marked_totals = xp.zeros(matrix_shape, dtype=xp.float64)
    # Trajectories accumulate as per-round snapshots and stack at the end:
    # in-place row assignment is not portable (JAX arrays are immutable).
    trajectory_frames = [] if config.record_trajectory else None
    marked_trajectory_frames = (
        [] if (config.record_trajectory and track_marked) else None
    )

    tel = get_telemetry()
    timing = tel.enabled
    start = time.perf_counter() if timing else 0.0

    for round_index in range(rounds):
        draws_np = topology.draw_steps(shape, rng)
        draws = xp.asarray(draws_np.reshape(matrix_shape))
        flat_index = xp.reshape(positions * choices + draws, (-1,))
        positions = xp.reshape(xp.take(table, flat_index), matrix_shape)
        if track_marked:
            counts, marked_counts = batched_collision_profiles_portable(
                positions, marked, num_nodes, xp=xp
            )
            marked_totals += xp.astype(marked_counts, xp.float64)
            if marked_trajectory_frames is not None:
                marked_trajectory_frames.append(xp.asarray(marked_totals, copy=True))
        else:
            counts = batched_collision_counts_portable(positions, num_nodes, xp=xp)
        totals += xp.astype(counts, xp.float64)
        if trajectory_frames is not None:
            trajectory_frames.append(xp.asarray(totals, copy=True))

    if timing:
        tel.counter("fastpath.portable_runs", namespace=namespace)
        tel.timer("fastpath.portable_seconds", time.perf_counter() - start)
        tel.event(
            "fastpath.portable_run",
            namespace=namespace,
            rows=int(matrix_shape[0]),
            agents=int(matrix_shape[-1]),
            rounds=rounds,
        )

    return _build_result(
        serial,
        replicates,
        topology,
        config,
        to_numpy(totals).reshape(shape).astype(np.float64),
        to_numpy(marked_totals).reshape(shape).astype(np.float64),
        marked_np,
        initial_positions,
        to_numpy(positions).reshape(shape).astype(np.int64),
        (
            None
            if trajectory_frames is None
            else to_numpy(xp.stack(trajectory_frames)).reshape(rounds, *shape)
        ),
        (
            None
            if marked_trajectory_frames is None
            else to_numpy(xp.stack(marked_trajectory_frames)).reshape(rounds, *shape)
        ),
    )


def run_fused(
    topology: Topology,
    config: SimulationConfig,
    replicates: Optional[int],
    seed: SeedLike,
    array_namespace: Optional[str] = None,
):
    """The fused round loop — bit-identical to the reference loop, faster.

    Called through :func:`repro.core.kernel.run_kernel` with
    ``backend="fused"`` (or ``"auto"``, the default); capability checks and
    argument validation happen there. Returns the same
    :class:`~repro.core.simulation.SimulationResult` /
    :class:`~repro.core.kernel.BatchSimulationResult` containers.

    ``array_namespace`` routes the run through the portable array-API loop
    (:func:`_run_portable`) on the named namespace instead of the
    NumPy-specialised body below; ``None`` (the default) keeps the
    existing path byte-for-byte.
    """
    if array_namespace is not None:
        return _run_portable(topology, config, replicates, seed, array_namespace)
    # Deferred: kernel imports this module lazily from inside run_kernel.
    from repro.core.kernel import _build_result, _place_agents

    serial = replicates is None
    rng = as_generator(seed)
    positions = _place_agents(topology, config, replicates, rng)
    shape = positions.shape
    initial_positions = positions.copy()

    if config.marked_fraction > 0.0:
        marked = rng.random(shape) < config.marked_fraction
    else:
        marked = np.zeros(shape, dtype=bool)
    track_marked = bool(marked.any())

    totals = np.zeros(shape, dtype=np.float64)
    marked_totals = np.zeros(shape, dtype=np.float64)
    rounds = config.rounds
    trajectory = (
        np.zeros((rounds, *shape), dtype=np.float64) if config.record_trajectory else None
    )
    marked_trajectory = (
        np.zeros((rounds, *shape), dtype=np.float64)
        if (config.record_trajectory and track_marked)
        else None
    )

    movement = config.movement
    noise = config.collision_model
    hook = config.round_hook
    armed = _ArmedLoop(topology, shape, config, rounds)

    # Chunked RNG: legal only when the movement draw is the *only* consumer
    # of per-round randomness — noise models and hooks interleave their own
    # draws with the movement draws, and reordering those would break the
    # bit-identity stream contract.
    chunkable = hook is None and noise is None and armed.steps_precomputable
    chunk: Optional[np.ndarray] = None
    chunk_start = 0

    # Telemetry is observation-only: probes never draw from `rng`, never
    # touch simulation state, and all timing is gated on one local bool so
    # the no-op default costs a predicted branch per phase.
    tel = get_telemetry()
    timing = tel.enabled
    if timing:
        _report_armed(tel, armed, "initial", chunkable)
    clock = time.perf_counter
    draw_seconds = step_seconds = count_seconds = observe_seconds = 0.0
    phase_start = 0.0

    for round_index in range(rounds):
        # ---- movement -------------------------------------------------
        if chunkable:
            if chunk is None or round_index - chunk_start >= chunk.shape[0]:
                chunk_start = round_index
                capacity = max(1, CHUNK_BUDGET_ELEMENTS // max(1, positions.size))
                if timing:
                    phase_start = clock()
                chunk = armed.topology.draw_steps_chunk(
                    min(rounds - round_index, capacity), shape, rng
                )
                if timing:
                    draw_seconds += clock() - phase_start
                    tel.counter("fastpath.chunk_refills")
                    tel.event(
                        "fastpath.chunk_refill",
                        start_round=round_index,
                        rounds=int(chunk.shape[0]),
                        elements=int(chunk.size),
                    )
            if timing:
                phase_start = clock()
            positions = armed.step_precomputed(
                positions, chunk[round_index - chunk_start], in_place=True
            )
            if timing:
                step_seconds += clock() - phase_start
        elif armed.steps_precomputable:
            if timing:
                phase_start = clock()
            # positions.shape, not the placement shape: a hook may have
            # reshaped the live state (agent churn) since the loop started.
            draws = armed.topology.draw_steps(positions.shape, rng)
            if timing:
                now = clock()
                draw_seconds += now - phase_start
                phase_start = now
            # With a hook in play the hook may retain this round's
            # positions, so never reuse the array in place.
            positions = armed.step_precomputed(positions, draws, in_place=hook is None)
            if timing:
                step_seconds += clock() - phase_start
        elif movement is not None:
            if timing:
                phase_start = clock()
            positions = np.asarray(
                movement.step(armed.topology, positions, rng), dtype=np.int64
            )
            if armed.validate_each_round:
                armed.topology.validate_nodes(positions)
            if timing:
                step_seconds += clock() - phase_start
        else:
            if timing:
                phase_start = clock()
            positions = armed.topology.step_many(positions, rng)
            if timing:
                step_seconds += clock() - phase_start

        # ---- counting -------------------------------------------------
        if timing:
            phase_start = clock()
        if track_marked:
            counts, marked_counts = armed.count_profiles(
                positions, marked, fresh=noise is not None
            )
            np.add(marked_totals, marked_counts, out=marked_totals)
            if marked_trajectory is not None:
                marked_trajectory[round_index] = marked_totals
        else:
            counts = armed.count(positions, fresh=noise is not None)
        if timing:
            count_seconds += clock() - phase_start

        # ---- observation + accumulation -------------------------------
        if timing:
            phase_start = clock()
        if noise is not None:
            observed = np.asarray(noise.observe(counts, rng), dtype=np.float64)
            if observed.shape != counts.shape:
                raise ValueError(
                    "collision_model.observe must preserve the shape of its input"
                )
            np.add(totals, observed, out=totals)
        elif hook is not None:
            # The hook contract hands over a fresh float observed array.
            observed = counts.astype(np.float64)
            np.add(totals, observed, out=totals)
        else:
            observed = None
            np.add(totals, counts, out=totals)
        if timing:
            observe_seconds += clock() - phase_start

        if trajectory is not None:
            trajectory[round_index] = totals

        # ---- per-round hook + re-arming -------------------------------
        if hook is not None:
            state = apply_round_hook(
                hook,
                RoundState(
                    topology=armed.topology,
                    positions=positions,
                    totals=totals,
                    marked=marked,
                    marked_totals=marked_totals,
                    observed=observed,
                    round_index=round_index,
                    rng=rng,
                ),
            )
            if not serial and (
                state.positions.ndim != 2 or state.positions.shape[0] != replicates
            ):
                raise ValueError(
                    "round_hook must preserve the replicate axis: expected "
                    f"({replicates}, n) arrays, got shape {state.positions.shape}"
                )
            positions = state.positions
            totals = state.totals
            marked = state.marked
            marked_totals = state.marked_totals
            if (
                state.topology is not armed.topology
                or state.topology.num_nodes != armed.num_nodes
                or positions.shape != armed.shape
            ):
                # The hook swapped the world: every hoisted invariant —
                # num_nodes, offsets, buffers, table, counting path — is
                # re-derived. apply_round_hook has already validated the
                # new positions against the new topology.
                armed = _ArmedLoop(
                    state.topology, positions.shape, config, rounds - round_index - 1
                )
                if timing:
                    tel.counter("fastpath.rearms")
                    _report_armed(tel, armed, "round_hook", chunkable)

    if timing:
        tel.timer("fastpath.draw_seconds", draw_seconds)
        tel.timer("fastpath.step_seconds", step_seconds)
        tel.timer("fastpath.count_seconds", count_seconds)
        tel.timer("fastpath.observe_seconds", observe_seconds)

    return _build_result(
        serial,
        replicates,
        armed.topology,
        config,
        totals,
        marked_totals,
        marked,
        initial_positions,
        positions,
        trajectory,
        marked_trajectory,
    )


__all__ = [
    "CHUNK_BUDGET_ELEMENTS",
    "TABLE_AMORTISATION_FACTOR",
    "TABLE_BUDGET_ELEMENTS",
    "build_step_table",
    "run_fused",
]
