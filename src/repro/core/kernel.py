"""The one vectorized simulation kernel behind every execution path.

Historically the repository carried **two** round loops for Algorithm 1:
the serial ``core/simulation.py`` loop (one agent-set at a time) and the
batched ``engine/batch.py`` loop (``(R, n)`` replicate matrices), gated by
``batch_safe`` checks scattered over the call sites. This module collapses
them into a single implementation, :func:`run_kernel`:

* ``replicates=None`` — **serial mode**. The state arrays keep the legacy
  shape ``(n,)``, placement/marking/movement/noise draw from the generator
  in exactly the order the old serial loop did (bit-identical streams,
  pinned by the golden fixtures in ``tests/baselines/kernel_golden.json``),
  and per-round hooks observe ``(n,)`` arrays — the historical
  :class:`~repro.core.simulation.RoundState` contract.
* ``replicates=R`` — **batched mode**. All replicates advance through the
  round loop together as an ``(R, n)`` position matrix; one offset-label
  ``np.unique`` pass counts collisions for every replicate at once
  (:func:`repro.core.encounter.batched_collision_counts`). The streams are
  identical to the pre-unification ``simulate_density_estimation_batch``.

Both modes share every line of the loop body: collision counting always
runs through the batched primitives (serial mode views its ``(n,)`` vector
as one ``(1, n)`` replicate), so there is exactly one place where a round
happens.

Capability checking lives here too: batched mode requires movement and
observation models to declare ``batch_safe = True`` (their array operations
must be elementwise over the replicate axis so that no information leaks
*between* replicates — mixing across agents of one replicate is fine, which
is how :class:`~repro.walks.movement.CollisionAvoidingWalk` batches).
:func:`require_batch_safe` is the single guard; the per-call-site
``getattr(model, "batch_safe", False)`` checks it replaced are gone.
Serial mode accepts any model — with one replicate there is nothing to
leak into.

The loop body itself exists in two interchangeable **backends**:

* ``backend="reference"`` — the loop in this module: the historical
  implementation, deliberately simple, counting through the sort-based
  ``np.unique`` primitives. It is the semantic baseline every optimisation
  is checked against.
* ``backend="fused"`` — the fast path in :mod:`repro.core.fastpath`:
  linear-time ``np.bincount`` collision counting, chunked multi-round RNG
  draws for ``precomputed_steps`` topologies, precomputed displacement
  tables, and reused scratch buffers. **Bit-identical** to the reference
  backend — same random stream, same results — which the equivalence suite
  and the golden fixtures pin.
* ``backend="auto"`` (the default) — currently always selects the fused
  path; its internal heuristics (the unique-vs-bincount crossover, the
  table amortisation test, chunk eligibility) degrade gracefully to
  reference-equivalent behaviour feature by feature, so there is no
  workload where choosing it loses.
* ``backend="analytic"`` — no simulation at all: :mod:`repro.core.analytic`
  *solves* the encounter process (sparse transition-matrix convolution /
  closed forms) and returns deterministic expectation containers, ``O(1)``
  in the replicate count. Exact but **not bit-identical** to the simulating
  backends — it returns the law of the process, not a draw — and only
  valid on the solvable combos; everything else raises
  :class:`~repro.core.analytic.AnalyticUnsupportedError`.

``backend=None`` resolves to the process-wide default
(:func:`get_default_backend`, settable via :func:`set_default_backend` or
the CLI's ``--backend`` flag).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.encounter import batched_collision_counts, batched_collision_profiles
from repro.core.simulation import (
    RoundState,
    SimulationConfig,
    SimulationResult,
    apply_round_hook,
)
from repro.obs.telemetry import get_telemetry
from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer

#: The selectable kernel backends; see the module docstring.
KERNEL_BACKENDS = ("auto", "reference", "fused", "analytic")

_default_backend = "auto"


def set_default_backend(backend: str) -> None:
    """Set the process-wide kernel backend used when ``backend=None``.

    Accepts one of :data:`KERNEL_BACKENDS`. The simulating backends
    (``auto``/``reference``/``fused``) are bit-identical, so for them the
    setting only changes wall-clock and the run cache ignores it. The
    ``analytic`` backend *does* change records (it returns expectations,
    not samples), so the serve/CLI cache key folds it in when it is the
    process default, and the scheduler forwards the default into its
    worker processes so ``--workers N`` stays consistent with serial.
    """
    global _default_backend
    _default_backend = _validated_backend(backend)


def get_default_backend() -> str:
    """The process-wide kernel backend used when ``backend=None``."""
    return _default_backend


def _validated_backend(backend: str) -> str:
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {KERNEL_BACKENDS}"
        )
    return backend


_default_shard_workers: Optional[int] = None


def set_default_shard_workers(shard_workers: Optional[int]) -> None:
    """Set the process-wide ``shard_workers`` used when the argument is ``None``.

    ``None`` (the initial default) disables intra-kernel sharding.
    Sharding changes the RNG discipline from one shared stream to
    per-replicate SeedSequence children (see :mod:`repro.core.shardpath`),
    so results are invariant to the *count* but differ from unsharded
    runs — the serve/CLI cache key folds the sharded discipline in when
    this default is set, and the scheduler forwards it into worker
    processes so ``--workers N`` stays consistent with serial.
    """
    global _default_shard_workers
    if shard_workers is not None:
        require_integer(shard_workers, "shard_workers", minimum=1)
    _default_shard_workers = shard_workers


def get_default_shard_workers() -> Optional[int]:
    """The process-wide ``shard_workers`` used when the argument is ``None``."""
    return _default_shard_workers


def require_batch_safe(model: Any, role: str = "model") -> None:
    """Raise unless ``model`` declares itself safe for ``(R, n)`` batching.

    The single capability check of the kernel (and of anything else that
    wants to fan a model across a replicate axis). A model is batch-safe
    when its array operations never mix information *between* replicates —
    elementwise operations trivially qualify, and so do cross-agent
    operations that treat each leading-axis row independently.

    Parameters
    ----------
    model:
        The movement or observation model about to be batched.
    role:
        Human-readable role used in the error message (``"movement
        model"``, ``"collision model"``, ...).

    Raises
    ------
    ValueError
        Naming the offending model, when ``batch_safe`` is absent or falsy.
    """
    if not getattr(model, "batch_safe", False):
        name = getattr(model, "name", None) or type(model).__name__
        raise ValueError(
            f"{role} {name!r} does not declare batch_safe=True: its array "
            "operations may mix information across the replicate axis, which "
            "would leak between the independent replicates of a batched "
            "simulation. Mark the model batch_safe once its operations treat "
            "each replicate row independently, or run the workload through "
            "the engine scheduler (one process per replicate) instead."
        )


@dataclass
class BatchSimulationResult:
    """Raw outcome of a batched :func:`run_kernel` call.

    All per-agent arrays carry a leading replicate axis: shape ``(R, n)``
    where :class:`~repro.core.simulation.SimulationResult` has ``(n,)``.
    Use :meth:`replicate` to view one replicate in the legacy single-run
    format.
    """

    collision_totals: np.ndarray
    marked_collision_totals: np.ndarray
    marked: np.ndarray
    initial_positions: np.ndarray
    final_positions: np.ndarray
    rounds: int
    num_nodes: int
    trajectory: np.ndarray | None = None
    marked_trajectory: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def replicates(self) -> int:
        return int(self.collision_totals.shape[0])

    @property
    def num_agents(self) -> int:
        return int(self.collision_totals.shape[1])

    @property
    def true_density(self) -> float:
        """The paper's density ``d = n / A`` (identical across replicates)."""
        return (self.num_agents - 1) / self.num_nodes

    def estimates(self) -> np.ndarray:
        """Per-agent density estimates ``d̃ = c / t``, shape ``(R, n)``."""
        return self.collision_totals / self.rounds

    def marked_estimates(self) -> np.ndarray:
        """Per-agent marked-density estimates ``d̃_P = c_P / t``, shape ``(R, n)``."""
        return self.marked_collision_totals / self.rounds

    def replicate(self, index: int) -> SimulationResult:
        """The ``index``-th replicate as a single-run :class:`SimulationResult`."""
        r = range(self.replicates)[index]  # normalises negative indices, bounds-checks
        return SimulationResult(
            collision_totals=self.collision_totals[r],
            marked_collision_totals=self.marked_collision_totals[r],
            marked=self.marked[r],
            initial_positions=self.initial_positions[r],
            final_positions=self.final_positions[r],
            rounds=self.rounds,
            num_nodes=self.num_nodes,
            trajectory=None if self.trajectory is None else self.trajectory[:, r, :],
            marked_trajectory=(
                None if self.marked_trajectory is None else self.marked_trajectory[:, r, :]
            ),
            metadata=dict(self.metadata, replicate=r),
        )


def _place_agents(
    topology: Topology,
    config: SimulationConfig,
    replicates: Optional[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Initial positions with the mode's shape: ``(n,)`` serial, ``(R, n)`` batched."""
    n_agents = config.num_agents
    if config.placement is None:
        if replicates is None:
            positions = topology.uniform_nodes(n_agents, rng)
        else:
            positions = topology.uniform_nodes((replicates, n_agents), rng)
    else:
        rows = [
            np.asarray(config.placement(topology, n_agents, rng), dtype=np.int64)
            for _ in range(1 if replicates is None else replicates)
        ]
        for row in rows:
            if row.shape != (n_agents,):
                raise ValueError(
                    f"placement must return shape ({n_agents},), got {row.shape}"
                )
        # Serial mode must own its positions array: a placement callable may
        # return (and retain) its own buffer, and the fused backend steps
        # positions in place — without the copy it would corrupt the
        # caller's array. Batched mode already copies via np.stack.
        positions = rows[0].copy() if replicates is None else np.stack(rows)
    positions = np.asarray(positions, dtype=np.int64)
    topology.validate_nodes(positions)
    return positions


def _build_result(
    serial: bool,
    replicates: Optional[int],
    topology: Topology,
    config: SimulationConfig,
    totals: np.ndarray,
    marked_totals: np.ndarray,
    marked: np.ndarray,
    initial_positions: np.ndarray,
    final_positions: np.ndarray,
    trajectory: np.ndarray | None,
    marked_trajectory: np.ndarray | None,
) -> SimulationResult | BatchSimulationResult:
    """Assemble the mode's result container (shared by both backends)."""
    if serial:
        return SimulationResult(
            collision_totals=totals,
            marked_collision_totals=marked_totals,
            marked=marked,
            initial_positions=initial_positions,
            final_positions=final_positions,
            rounds=config.rounds,
            num_nodes=topology.num_nodes,
            trajectory=trajectory,
            marked_trajectory=marked_trajectory,
            metadata={"topology": topology.name},
        )
    return BatchSimulationResult(
        collision_totals=totals,
        marked_collision_totals=marked_totals,
        marked=marked,
        initial_positions=initial_positions,
        final_positions=final_positions,
        rounds=config.rounds,
        num_nodes=topology.num_nodes,
        trajectory=trajectory,
        marked_trajectory=marked_trajectory,
        metadata={"topology": topology.name, "replicates": replicates},
    )


def run_kernel(
    topology: Topology,
    config: SimulationConfig,
    replicates: Optional[int] = None,
    seed: SeedLike = None,
    backend: Optional[str] = None,
    shard_workers: Optional[int] = None,
    array_namespace: Optional[str] = None,
) -> SimulationResult | BatchSimulationResult:
    """Run Algorithm 1 for every agent — serially or for ``R`` replicates at once.

    Parameters
    ----------
    topology:
        Topology to walk on; any :class:`~repro.topology.Topology` (their
        ``step_many`` implementations are shape-polymorphic).
    config:
        Simulation parameters; see :class:`~repro.core.simulation.SimulationConfig`.
    replicates:
        ``None`` (serial mode) runs one simulation with legacy ``(n,)``
        state arrays and the legacy random stream. An integer ``R >= 1``
        (batched mode) carries all replicates through the round loop as one
        ``(R, n)`` matrix; ``movement`` and ``collision_model`` hooks must
        then pass :func:`require_batch_safe`. The replicates draw from one
        shared stream, so they are deterministic given the seed and
        mutually independent.
    seed:
        Seed or generator controlling all randomness (placement, walks,
        property assignment, and observation noise).
    backend:
        ``"reference"``, ``"fused"``, ``"auto"``, or ``"analytic"``;
        ``None`` (the default) resolves to the process-wide default
        (normally ``"auto"``). The simulating backends are bit-identical —
        the choice only affects wall-clock. ``"analytic"`` instead *solves*
        the process (:mod:`repro.core.analytic`): deterministic expectation
        containers, ``O(1)`` in ``replicates``, equivalent to the
        simulating backends only in distribution (tolerance-based checks,
        never ``cmp``).
    shard_workers:
        ``None`` (default; falls back to the process-wide default, see
        :func:`set_default_shard_workers`) keeps the single-threaded
        kernel. An integer ``K >= 1`` runs batched fused calls as
        ``min(K, R)`` contiguous replicate-row shards on a pool
        (:mod:`repro.core.shardpath`): results are **bit-identical for
        every K** — each replicate row is seeded from its own
        SeedSequence child, so they differ from the unsharded
        shared-stream results. Requires a simulating, non-reference
        backend; serial mode and ``round_hook`` configs fall back to the
        unsharded fused loop for every ``K``.
    array_namespace:
        ``None`` (default) runs NumPy. A registered namespace name
        (``"numpy"``/``"array-api-strict"``/``"cupy"``/``"jax"``, see
        :mod:`repro.core.array_backend`) routes the fused loop's array
        ops through that namespace — identical portable code on every
        library, host RNG, loud capability errors for features with no
        portable form. Only the fused/auto backends support it, and it
        cannot combine with ``shard_workers``.

    Returns
    -------
    SimulationResult | BatchSimulationResult
        Serial mode returns the single-run container; batched mode the
        ``(R, n)`` container.
    """
    serial = replicates is None
    resolved = _validated_backend(backend if backend is not None else _default_backend)
    shards = shard_workers if shard_workers is not None else _default_shard_workers
    if shards is not None:
        require_integer(shards, "shard_workers", minimum=1)
        if resolved == "reference":
            raise ValueError(
                "shard_workers requires a fused backend: the reference loop "
                "is the deliberately simple semantic baseline and stays "
                "single-threaded. Use backend='fused' (or 'auto') for "
                "sharded runs."
            )
        if array_namespace not in (None, "numpy"):
            raise ValueError(
                "shard_workers cannot combine with a non-NumPy "
                f"array_namespace ({array_namespace!r}): device namespaces "
                "manage their own intra-kernel parallelism"
            )
    if array_namespace is not None and resolved in ("reference", "analytic"):
        raise ValueError(
            f"array_namespace={array_namespace!r} requires a fused backend "
            f"(got backend={resolved!r}): the portable loop is the fused "
            "body routed through the namespace seam"
        )
    if not serial:
        require_integer(replicates, "replicates", minimum=1)
        if resolved != "analytic":
            if config.movement is not None:
                require_batch_safe(config.movement, "movement model")
            if config.collision_model is not None:
                require_batch_safe(config.collision_model, "collision model")

    tel = get_telemetry()
    if tel.enabled:
        tel.counter(
            "kernel.runs", backend=resolved, mode="serial" if serial else "batched"
        )
    if resolved == "analytic":
        # No simulation: solve the process exactly. The analytic module
        # validates the combo and raises AnalyticUnsupportedError (naming
        # the offender) outside its solvable regime, so batch-safety checks
        # are moot here — nothing is batched. shard_workers is ignored:
        # the solver is O(1) in replicates, there is nothing to shard.
        from repro.core.analytic import run_analytic  # deferred: analytic imports us

        return run_analytic(topology, config, replicates, seed)
    if resolved != "reference":
        # "auto" and "fused" both run the fast path; its internal
        # heuristics make the per-feature choices (see fastpath docstring).
        if shards is not None:
            from repro.core.shardpath import run_sharded  # deferred: shardpath imports us

            return run_sharded(topology, config, replicates, seed, shards)
        from repro.core.fastpath import run_fused  # deferred: fastpath imports us

        return run_fused(topology, config, replicates, seed, array_namespace=array_namespace)

    if tel.enabled:
        # The reference loop has no counting crossover: it is always the
        # sort-based np.unique path.
        tel.counter("kernel.counting_path", backend="reference", path="unique")

    rng = as_generator(seed)
    positions = _place_agents(topology, config, replicates, rng)
    shape = positions.shape
    initial_positions = positions.copy()

    if config.marked_fraction > 0.0:
        marked = rng.random(shape) < config.marked_fraction
    else:
        marked = np.zeros(shape, dtype=bool)
    track_marked = bool(marked.any())

    totals = np.zeros(shape, dtype=np.float64)
    marked_totals = np.zeros(shape, dtype=np.float64)

    trajectory = (
        np.zeros((config.rounds, *shape), dtype=np.float64)
        if config.record_trajectory
        else None
    )
    marked_trajectory = (
        np.zeros((config.rounds, *shape), dtype=np.float64)
        if (config.record_trajectory and track_marked)
        else None
    )

    # Loop-invariant work hoisted out of the steady-state rounds: the
    # num_nodes lookup and the decision whether positions need a per-round
    # label-range check. Placement was validated above; topology steps and
    # catalog movement models (``emits_valid_nodes``) produce in-range
    # labels by construction; apply_round_hook re-validates after every
    # hook mutation. Only foreign movement models keep the per-round scan.
    num_nodes = topology.num_nodes
    hoisted_validation = config.movement is None or getattr(
        config.movement, "emits_valid_nodes", False
    )

    for round_index in range(config.rounds):
        if config.movement is not None:
            positions = np.asarray(config.movement.step(topology, positions, rng), dtype=np.int64)
        else:
            positions = topology.step_many(positions, rng)
        # Counting is shared between the modes: serial mode views its (n,)
        # vector as a single replicate row. No randomness is involved, so
        # the round's stream is untouched either way.
        matrix = positions.reshape(-1, positions.shape[-1])
        if track_marked:
            counts, marked_counts = batched_collision_profiles(
                matrix, marked.reshape(matrix.shape), num_nodes,
                assume_validated=hoisted_validation,
            )
            marked_totals += marked_counts.reshape(shape)
            if marked_trajectory is not None:
                marked_trajectory[round_index] = marked_totals
        else:
            counts = batched_collision_counts(
                matrix, num_nodes, assume_validated=hoisted_validation
            )
        counts = counts.reshape(positions.shape)
        if config.collision_model is not None:
            observed = np.asarray(config.collision_model.observe(counts, rng), dtype=np.float64)
            if observed.shape != counts.shape:
                raise ValueError(
                    "collision_model.observe must preserve the shape of its input"
                )
            totals += observed
        elif config.round_hook is not None:
            # The hook contract hands over a fresh float observed array
            # every round (hooks may retain it), so the conversion cannot
            # be elided here the way it is below.
            observed = counts.astype(np.float64)
            totals += observed
        else:
            # No model and no hook observes this round's float view, so
            # accumulate the integer counts directly — np.add applies the
            # same exact int64→float64 conversion the astype produced,
            # without materialising a per-round temporary.
            observed = None
            np.add(totals, counts, out=totals)

        if trajectory is not None:
            trajectory[round_index] = totals

        if config.round_hook is not None:
            state = apply_round_hook(
                config.round_hook,
                RoundState(
                    topology=topology,
                    positions=positions,
                    totals=totals,
                    marked=marked,
                    marked_totals=marked_totals,
                    observed=observed,
                    round_index=round_index,
                    rng=rng,
                ),
            )
            if not serial and (
                state.positions.ndim != 2 or state.positions.shape[0] != replicates
            ):
                raise ValueError(
                    "round_hook must preserve the replicate axis: expected "
                    f"({replicates}, n) arrays, got shape {state.positions.shape}"
                )
            topology = state.topology
            positions = state.positions
            totals = state.totals
            marked = state.marked
            marked_totals = state.marked_totals
            shape = positions.shape
            # Re-arm the hoisted invariants: the hook may have swapped the
            # topology (apply_round_hook already validated positions on it).
            num_nodes = topology.num_nodes

    return _build_result(
        serial,
        replicates,
        topology,
        config,
        totals,
        marked_totals,
        marked,
        initial_positions,
        positions,
        trajectory,
        marked_trajectory,
    )


__all__ = [
    "BatchSimulationResult",
    "KERNEL_BACKENDS",
    "get_default_backend",
    "get_default_shard_workers",
    "require_batch_safe",
    "run_kernel",
    "set_default_backend",
    "set_default_shard_workers",
]
