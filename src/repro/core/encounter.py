"""Collision counting primitives.

The model of Section 2 gives every agent a single sensing primitive:
``count(position)`` — the number of *other* agents currently at its node.
These functions evaluate that primitive for all agents at once from the
vector of current positions, in O(n log n) per round (independent of the
grid size A, which can be much larger than n).
"""

from __future__ import annotations

import numpy as np


def collision_counts(positions: np.ndarray) -> np.ndarray:
    """Number of other agents co-located with each agent.

    Parameters
    ----------
    positions:
        Integer array of shape ``(n,)`` with each agent's current node.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(n,)``; entry ``i`` is
        ``|{j != i : positions[j] == positions[i]}|`` — exactly the paper's
        ``count(position)`` as observed by agent ``i``.
    """
    positions = np.asarray(positions)
    if positions.ndim != 1:
        raise ValueError(f"positions must be 1-D, got shape {positions.shape}")
    if positions.size == 0:
        return np.zeros(0, dtype=np.int64)
    _, inverse, counts = np.unique(positions, return_inverse=True, return_counts=True)
    return counts[inverse].astype(np.int64) - 1


def marked_collision_counts(positions: np.ndarray, marked: np.ndarray) -> np.ndarray:
    """Number of *marked* other agents co-located with each agent.

    Used by the property-frequency estimator of Section 5.2: agents track
    encounters with agents possessing a detectable property (successful
    foragers, enemies, task-group members, ...).

    Parameters
    ----------
    positions:
        Integer array of shape ``(n,)`` with each agent's current node.
    marked:
        Boolean array of shape ``(n,)``; ``True`` where the agent has the
        property.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(n,)``; entry ``i`` counts marked agents
        ``j != i`` with ``positions[j] == positions[i]``.
    """
    positions = np.asarray(positions)
    marked = np.asarray(marked, dtype=bool)
    if positions.shape != marked.shape:
        raise ValueError(
            f"positions and marked must have the same shape, "
            f"got {positions.shape} and {marked.shape}"
        )
    if positions.size == 0:
        return np.zeros(0, dtype=np.int64)
    _, inverse = np.unique(positions, return_inverse=True)
    marked_per_node = np.bincount(inverse, weights=marked.astype(np.float64))
    counts = marked_per_node[inverse] - marked.astype(np.float64)
    return counts.astype(np.int64)


def collision_matrix(positions: np.ndarray) -> np.ndarray:
    """Boolean matrix ``M[i, j] = True`` iff agents i and j share a node (i != j).

    Quadratic in the number of agents; intended for tests and small examples
    that need pairwise information, not for the simulation hot path.
    """
    positions = np.asarray(positions)
    same = positions[:, None] == positions[None, :]
    np.fill_diagonal(same, False)
    return same


__all__ = ["collision_counts", "marked_collision_counts", "collision_matrix"]
