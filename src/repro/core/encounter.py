"""Collision counting primitives.

The model of Section 2 gives every agent a single sensing primitive:
``count(position)`` — the number of *other* agents currently at its node.
These functions evaluate that primitive for all agents at once from the
vector of current positions. Two families coexist:

* the **sort-based** primitives (``np.unique`` over the offset labels),
  O(R·n log(R·n)) per round and independent of the grid size ``A`` — the
  right tool when the grid is huge and sparsely occupied;
* the **linear** primitives (a ``np.bincount`` scatter-add over the
  ``R·A`` label space), O(R·n + R·A) per round — the paper's
  ``count(position)`` at its true complexity, and 4–6× faster than the
  sort in the dense regimes the experiment suite runs in.

:func:`linear_counting_is_faster` is the measured crossover heuristic the
fused kernel's ``auto`` path uses to pick between them (pinned by the
crossover grid in ``benchmarks/bench_core_primitives.py``).
"""

from __future__ import annotations

import math

import numpy as np

#: The linear (bincount) path beats the sort path roughly while
#: ``R·A <= FACTOR · R·n · log2(R·n)``; measured crossover on the reference
#: hardware is ≈ 3.7, so 3.0 keeps a safety margin (never materially worse
#: than the sort at the boundary). Pinned by the crossover benchmark grid.
LINEAR_COUNTING_CROSSOVER_FACTOR = 3.0

#: Hard cap on the per-node scatter buffer (``R·A`` int64 slots) the linear
#: path may allocate per round, whatever the heuristic says.
LINEAR_COUNTING_MEMORY_BUDGET_BYTES = 128 * 2**20


def linear_counting_is_faster(
    replicates: int,
    num_agents: int,
    num_nodes: int,
    *,
    memory_budget_bytes: int = LINEAR_COUNTING_MEMORY_BUDGET_BYTES,
) -> bool:
    """Whether the O(R·n + R·A) bincount path should beat the sort path.

    The sort costs ~γ·R·n·log2(R·n); the scatter-add costs ~β·R·A (plus an
    O(R·n) gather both paths share). The measured β/γ crossover sits near
    ``R·A ≈ 3.7 · R·n·log2(R·n)``; this predicate uses a conservative
    factor of 3 and additionally refuses label spaces whose per-round
    count buffer would exceed ``memory_budget_bytes`` — huge sparse grids
    stay on the sort path no matter how the asymptotics look.
    """
    labels = replicates * num_agents
    label_space = replicates * num_nodes
    if labels <= 0:
        return False
    if label_space * 8 > memory_budget_bytes:
        return False
    return label_space <= LINEAR_COUNTING_CROSSOVER_FACTOR * labels * max(
        1.0, math.log2(max(labels, 2))
    )


def linear_counting_block_rows(
    replicates: int,
    num_agents: int,
    num_nodes: int,
    *,
    memory_budget_bytes: int = LINEAR_COUNTING_MEMORY_BUDGET_BYTES,
) -> int:
    """Replicate rows per bincount block, or ``0`` for the sort path.

    The memory cap in :func:`linear_counting_is_faster` rejects label
    spaces whose *single-pass* ``R·A`` scatter buffer would not fit — but
    the scatter is separable across replicate rows, so a workload that
    fails the cap while still winning the asymptotic crossover should
    **chunk** the scatter over contiguous row blocks (each block counts in
    its own ``rows·A`` space) instead of reverting to the
    O(R·n log(R·n)) sort. This function is that plan:

    * ``replicates`` — the whole batch fits; one scatter pass (the fast
      path unchanged);
    * ``1 <= block < replicates`` — chunk the scatter into blocks of this
      many rows (bit-identical to the single pass; integers only);
    * ``0`` — the sort path wins (asymptotically, or because even one
      row's ``A`` buffer blows the budget).
    """
    if replicates <= 0 or num_agents <= 0:
        return 0
    # The asymptotic crossover is per-row (A vs. factor·n·log2(R·n)), so
    # evaluate it with the memory cap lifted: blocks handle memory.
    uncapped = max(memory_budget_bytes, replicates * num_nodes * 8)
    if not linear_counting_is_faster(
        replicates, num_agents, num_nodes, memory_budget_bytes=uncapped
    ):
        return 0
    rows = min(replicates, memory_budget_bytes // max(num_nodes * 8, 1))
    return max(int(rows), 0)


def collision_counts(positions: np.ndarray) -> np.ndarray:
    """Number of other agents co-located with each agent.

    Parameters
    ----------
    positions:
        Integer array of shape ``(n,)`` with each agent's current node.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(n,)``; entry ``i`` is
        ``|{j != i : positions[j] == positions[i]}|`` — exactly the paper's
        ``count(position)`` as observed by agent ``i``.
    """
    positions = np.asarray(positions)
    if positions.ndim != 1:
        raise ValueError(f"positions must be 1-D, got shape {positions.shape}")
    if positions.size == 0:
        return np.zeros(0, dtype=np.int64)
    _, inverse, counts = np.unique(positions, return_inverse=True, return_counts=True)
    return counts[inverse].astype(np.int64) - 1


def marked_collision_counts(positions: np.ndarray, marked: np.ndarray) -> np.ndarray:
    """Number of *marked* other agents co-located with each agent.

    Used by the property-frequency estimator of Section 5.2: agents track
    encounters with agents possessing a detectable property (successful
    foragers, enemies, task-group members, ...).

    Parameters
    ----------
    positions:
        Integer array of shape ``(n,)`` with each agent's current node.
    marked:
        Boolean array of shape ``(n,)``; ``True`` where the agent has the
        property.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(n,)``; entry ``i`` counts marked agents
        ``j != i`` with ``positions[j] == positions[i]``.
    """
    positions = np.asarray(positions)
    marked = np.asarray(marked, dtype=bool)
    if positions.shape != marked.shape:
        raise ValueError(
            f"positions and marked must have the same shape, "
            f"got {positions.shape} and {marked.shape}"
        )
    if positions.size == 0:
        return np.zeros(0, dtype=np.int64)
    _, inverse = np.unique(positions, return_inverse=True)
    marked_per_node = np.bincount(inverse, weights=marked.astype(np.float64))
    counts = marked_per_node[inverse] - marked.astype(np.float64)
    return counts.astype(np.int64)


def _offset_labels(
    positions: np.ndarray, num_nodes: int, *, assume_validated: bool = False
) -> np.ndarray:
    """Shift replicate ``r``'s node labels into the block ``[r*A, (r+1)*A)``.

    Agents in different replicates then occupy disjoint label ranges, so one
    flat ``np.unique`` pass counts collisions for every replicate at once.

    ``assume_validated=True`` skips the O(R·n) label-range scan: the caller
    asserts the labels already lie in ``[0, num_nodes)``. The kernel uses
    this to hoist validation out of its steady-state round loop — positions
    are validated once after placement and after every ``round_hook``
    mutation, and in between they come from topology steps that produce
    in-range labels by construction.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.ndim != 2:
        raise ValueError(f"positions must be 2-D (replicates, agents), got shape {positions.shape}")
    replicates = positions.shape[0]
    if positions.size and not assume_validated:
        low, high = positions.min(), positions.max()
        if low < 0 or high >= num_nodes:
            # An out-of-range label would alias into a neighbouring
            # replicate's block and silently corrupt both counts.
            raise ValueError(
                f"position labels must lie in [0, {num_nodes}), got range [{low}, {high}]"
            )
    if replicates > 0 and num_nodes > (2**63 - 1) // max(replicates, 1):
        raise ValueError(
            f"cannot offset {replicates} replicates of {num_nodes} nodes without int64 overflow"
        )
    offsets = np.arange(replicates, dtype=np.int64) * np.int64(num_nodes)
    return positions + offsets[:, None]


def batched_collision_counts(
    positions: np.ndarray, num_nodes: int, *, assume_validated: bool = False
) -> np.ndarray:
    """Per-agent collision counts for a batch of independent replicates.

    Parameters
    ----------
    positions:
        Integer array of shape ``(R, n)``: row ``r`` holds the current node
        of every agent in replicate ``r``. Labels lie in ``[0, num_nodes)``.
    num_nodes:
        Number of nodes ``A`` of the topology the replicates walk on.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(R, n)``; entry ``(r, i)`` equals
        ``collision_counts(positions[r])[i]``, computed with a single
        ``np.unique`` pass over all replicates.
    """
    shifted = _offset_labels(positions, num_nodes, assume_validated=assume_validated)
    if shifted.size == 0:
        return np.zeros(shifted.shape, dtype=np.int64)
    _, inverse, counts = np.unique(shifted.reshape(-1), return_inverse=True, return_counts=True)
    return (counts[inverse] - 1).reshape(shifted.shape).astype(np.int64)


def batched_collision_counts_linear(
    positions: np.ndarray, num_nodes: int, *, assume_validated: bool = False
) -> np.ndarray:
    """O(R·n + R·A) batched collision counts via a bincount scatter-add.

    Bit-identical results to :func:`batched_collision_counts` (pinned by
    property-based tests), but counts by scattering the offset labels into
    the flat ``R·A`` label space instead of sorting them — the paper's
    ``count(position)`` primitive at its true linear complexity. Wins when
    the occupied fraction is non-negligible; on huge sparse grids the
    ``R·A`` scatter pass loses to the sort
    (:func:`linear_counting_is_faster` is the measured crossover).
    """
    shifted = _offset_labels(positions, num_nodes, assume_validated=assume_validated)
    if shifted.size == 0:
        return np.zeros(shifted.shape, dtype=np.int64)
    per_node = np.bincount(shifted.reshape(-1), minlength=shifted.shape[0] * num_nodes)
    return per_node[shifted] - 1


def batched_collision_profiles_linear(
    positions: np.ndarray, marked: np.ndarray, num_nodes: int, *, assume_validated: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Linear-time plain *and* marked batched counts from two scatter-adds.

    Bit-identical to :func:`batched_collision_profiles`; shares the offset
    labels between the plain count and the marked (weighted) count.
    """
    marked = np.asarray(marked, dtype=bool)
    shifted = _offset_labels(positions, num_nodes, assume_validated=assume_validated)
    if shifted.shape != marked.shape:
        raise ValueError(
            f"positions and marked must have the same shape, "
            f"got {shifted.shape} and {marked.shape}"
        )
    if shifted.size == 0:
        return np.zeros(shifted.shape, dtype=np.int64), np.zeros(shifted.shape, dtype=np.int64)
    flat = shifted.reshape(-1)
    space = shifted.shape[0] * num_nodes
    per_node = np.bincount(flat, minlength=space)
    plain = per_node[shifted] - 1
    marked_float = marked.astype(np.float64)
    marked_per_node = np.bincount(flat, weights=marked_float.reshape(-1), minlength=space)
    marked_counts = marked_per_node[shifted] - marked_float
    return plain, marked_counts.astype(np.int64)


def batched_collision_profiles(
    positions: np.ndarray, marked: np.ndarray, num_nodes: int, *, assume_validated: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Plain *and* marked batched collision counts from one ``np.unique`` pass.

    Equivalent to ``(batched_collision_counts(...),
    batched_marked_collision_counts(...))`` but shares the offset-label
    array and its sort, halving the per-round cost when a simulation tracks
    marked agents.
    """
    marked = np.asarray(marked, dtype=bool)
    shifted = _offset_labels(positions, num_nodes, assume_validated=assume_validated)
    if shifted.shape != marked.shape:
        raise ValueError(
            f"positions and marked must have the same shape, "
            f"got {shifted.shape} and {marked.shape}"
        )
    if shifted.size == 0:
        return np.zeros(shifted.shape, dtype=np.int64), np.zeros(shifted.shape, dtype=np.int64)
    flat_marked = marked.reshape(-1)
    _, inverse, counts = np.unique(shifted.reshape(-1), return_inverse=True, return_counts=True)
    plain = (counts[inverse] - 1).reshape(shifted.shape).astype(np.int64)
    marked_per_node = np.bincount(inverse, weights=flat_marked.astype(np.float64))
    marked_counts = marked_per_node[inverse] - flat_marked.astype(np.float64)
    return plain, marked_counts.astype(np.int64).reshape(shifted.shape)


def batched_marked_collision_counts(
    positions: np.ndarray, marked: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Per-agent *marked* collision counts for a batch of replicates.

    The batched counterpart of :func:`marked_collision_counts`:
    ``positions`` and ``marked`` both have shape ``(R, n)`` and the result
    row ``r`` equals ``marked_collision_counts(positions[r], marked[r])``.
    """
    return batched_collision_profiles(positions, marked, num_nodes)[1]


def batched_collision_counts_portable(positions, num_nodes: int, *, xp=None):
    """Batched collision counts in pure array-API operations.

    The portable twin of :func:`batched_collision_counts`: same offset-label
    construction, but counted with ``unique_all`` + ``take`` instead of
    NumPy-specific ``bincount``/fancy indexing, so the identical code runs
    on any namespace from :mod:`repro.core.array_backend` (NumPy,
    array-api-strict, CuPy, JAX). Integer-exact — results are bit-identical
    to the NumPy primitives on every namespace (pinned by the portable
    equivalence suite).

    ``xp`` selects the namespace explicitly; ``None`` resolves it from
    ``positions`` via the ``__array_namespace__`` protocol.
    """
    from repro.core.array_backend import array_namespace

    xp = array_namespace(positions) if xp is None else xp
    replicates, agents = positions.shape
    if replicates * agents == 0:
        return xp.zeros(positions.shape, dtype=xp.int64)
    if replicates > 0 and num_nodes > (2**63 - 1) // max(replicates, 1):
        raise ValueError(
            f"cannot offset {replicates} replicates of {num_nodes} nodes without int64 overflow"
        )
    offsets = xp.reshape(xp.arange(replicates, dtype=xp.int64) * num_nodes, (replicates, 1))
    flat = xp.reshape(positions + offsets, (-1,))
    groups = xp.unique_all(flat)
    counts = xp.take(groups.counts, xp.reshape(groups.inverse_indices, (-1,)))
    return xp.reshape(xp.astype(counts, xp.int64) - 1, positions.shape)


def batched_collision_profiles_portable(positions, marked, num_nodes: int, *, xp=None):
    """Plain *and* marked batched counts in pure array-API operations.

    The portable twin of :func:`batched_collision_profiles`. The marked
    count has no portable ``bincount(weights=...)``, so it is computed as
    segment sums over the sorted labels: a stable argsort groups each
    label's marked flags contiguously, one ``cumulative_sum`` turns the
    per-group totals into two gathers. Integer-exact on every namespace.
    """
    from repro.core.array_backend import array_namespace

    xp = array_namespace(positions) if xp is None else xp
    replicates, agents = positions.shape
    if replicates * agents == 0:
        zeros = xp.zeros(positions.shape, dtype=xp.int64)
        return zeros, zeros
    if replicates > 0 and num_nodes > (2**63 - 1) // max(replicates, 1):
        raise ValueError(
            f"cannot offset {replicates} replicates of {num_nodes} nodes without int64 overflow"
        )
    offsets = xp.reshape(xp.arange(replicates, dtype=xp.int64) * num_nodes, (replicates, 1))
    flat = xp.reshape(positions + offsets, (-1,))
    groups = xp.unique_all(flat)
    inverse = xp.reshape(groups.inverse_indices, (-1,))
    group_counts = xp.astype(groups.counts, xp.int64)
    plain = xp.reshape(xp.take(group_counts, inverse) - 1, positions.shape)

    marked_flat = xp.astype(xp.reshape(marked, (-1,)), xp.int64)
    order = xp.argsort(flat, stable=True)
    running = xp.cumulative_sum(xp.take(marked_flat, order))
    padded = xp.concat([xp.zeros(1, dtype=xp.int64), running])
    ends = xp.cumulative_sum(group_counts)
    per_group_marked = xp.take(padded, ends) - xp.take(padded, ends - group_counts)
    marked_counts = xp.take(per_group_marked, inverse) - marked_flat
    return plain, xp.reshape(marked_counts, positions.shape)


def collision_matrix(positions: np.ndarray) -> np.ndarray:
    """Boolean matrix ``M[i, j] = True`` iff agents i and j share a node (i != j).

    Quadratic in the number of agents; intended for tests and small examples
    that need pairwise information, not for the simulation hot path.
    """
    positions = np.asarray(positions)
    same = positions[:, None] == positions[None, :]
    np.fill_diagonal(same, False)
    return same


__all__ = [
    "collision_counts",
    "marked_collision_counts",
    "batched_collision_counts",
    "batched_collision_counts_linear",
    "batched_collision_counts_portable",
    "batched_collision_profiles",
    "batched_collision_profiles_linear",
    "batched_collision_profiles_portable",
    "batched_marked_collision_counts",
    "collision_matrix",
    "linear_counting_block_rows",
    "linear_counting_is_faster",
    "LINEAR_COUNTING_CROSSOVER_FACTOR",
    "LINEAR_COUNTING_MEMORY_BUDGET_BYTES",
]
