"""Algorithm 1 — random-walk encounter-rate density estimation.

Each agent independently executes, for ``t`` rounds:

1. take one uniformly random step,
2. add ``count(position)`` (the number of other agents on its node) to its
   collision counter ``c``,

and finally returns ``d̃ = c / t``. Theorem 1 shows that on the
two-dimensional torus this is a ``(1 ± ε)`` approximation of the density
``d = n / A`` with probability ``1 - δ`` once
``t = Ω(log(1/δ) [log log(1/δ) + log(1/dε)]² / (dε²))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.kernel import run_kernel
from repro.core.results import DensityEstimationRun
from repro.core.simulation import (
    CollisionObservationModel,
    MovementModelLike,
    PlacementFn,
    SimulationConfig,
)
from repro.topology.base import Topology
from repro.utils.rng import SeedLike
from repro.utils.validation import require_integer


@dataclass
class RandomWalkDensityEstimator:
    """Run Algorithm 1 for a population of agents on a topology.

    Parameters
    ----------
    topology:
        The graph the agents walk on (any regular topology reproduces the
        paper's setting; non-regular graphs are supported but the estimator
        is then only unbiased with respect to the stationary density).
    num_agents:
        Total number of agents (the paper's ``n + 1``).
    rounds:
        Number of rounds ``t`` each agent runs.
    placement / collision_model / movement:
        Optional hooks forwarded to the simulation engine; see
        :class:`repro.core.simulation.SimulationConfig`.
    """

    topology: Topology
    num_agents: int
    rounds: int
    placement: Optional[PlacementFn] = None
    collision_model: Optional[CollisionObservationModel] = None
    movement: Optional[MovementModelLike] = None

    def __post_init__(self) -> None:
        require_integer(self.num_agents, "num_agents", minimum=1)
        require_integer(self.rounds, "rounds", minimum=1)

    @property
    def true_density(self) -> float:
        """Ground-truth density ``d = n / A`` under the paper's convention."""
        return (self.num_agents - 1) / self.topology.num_nodes

    def run(self, seed: SeedLike = None, *, record_trajectory: bool = False) -> DensityEstimationRun:
        """Execute the algorithm and return per-agent estimates.

        Parameters
        ----------
        seed:
            Seed or generator; the run is deterministic given a seed.
        record_trajectory:
            Record cumulative collision counts after every round in
            ``metadata["trajectory"]`` (used for convergence plots).
        """
        config = SimulationConfig(
            num_agents=self.num_agents,
            rounds=self.rounds,
            placement=self.placement,
            collision_model=self.collision_model,
            movement=self.movement,
            record_trajectory=record_trajectory,
        )
        outcome = run_kernel(self.topology, config, None, seed)
        metadata: dict = {}
        if record_trajectory and outcome.trajectory is not None:
            # Convert cumulative collision counts to running density estimates.
            round_numbers = np.arange(1, self.rounds + 1, dtype=np.float64)[:, None]
            metadata["trajectory"] = outcome.trajectory / round_numbers
        return DensityEstimationRun(
            estimates=outcome.estimates(),
            collision_totals=outcome.collision_totals,
            true_density=outcome.true_density,
            rounds=self.rounds,
            num_agents=self.num_agents,
            num_nodes=self.topology.num_nodes,
            topology_name=self.topology.name,
            algorithm="random_walk",
            metadata=metadata,
        )


def estimate_density(
    topology: Topology,
    num_agents: int,
    rounds: int,
    seed: SeedLike = None,
    *,
    placement: Optional[PlacementFn] = None,
    collision_model: Optional[CollisionObservationModel] = None,
) -> DensityEstimationRun:
    """Convenience wrapper: build a :class:`RandomWalkDensityEstimator` and run it."""
    estimator = RandomWalkDensityEstimator(
        topology=topology,
        num_agents=num_agents,
        rounds=rounds,
        placement=placement,
        collision_model=collision_model,
    )
    return estimator.run(seed)


__all__ = ["RandomWalkDensityEstimator", "estimate_density"]
