"""repro — Ant-Inspired Density Estimation via Random Walks.

A complete, executable reproduction of Musco, Su, and Lynch,
"Ant-Inspired Density Estimation via Random Walks" (PODC 2016 / PNAS 2017):

* the encounter-rate density-estimation algorithm (Algorithm 1) and its
  independent-sampling baseline (Algorithm 4),
* every topology the paper analyses (2-D torus, ring, k-D tori, hypercubes,
  regular expanders, complete graphs, arbitrary graphs),
* the random-walk analysis machinery (re-collision profiles, equalization
  statistics, collision moments, local mixing sums),
* the applications: social-network size estimation (Algorithms 2–3 and the
  [KLSC14] baseline), robot-swarm density / property-frequency estimation,
  and sensor-network token sampling,
* an experiment suite that regenerates the paper's quantitative claims,
* an execution engine (:mod:`repro.engine`) that runs replicate workloads
  fast: :class:`ExecutionEngine` batches independent Algorithm 1 replicates
  into one matrix simulation (``ExecutionEngine.run_replicates`` /
  :func:`repro.engine.simulate_density_estimation_batch`), schedules
  non-batchable tasks over worker processes with bit-identical results for
  any worker count (``ExecutionEngine.map``), and
  :class:`repro.engine.RunCache` skips settings already computed,
* a dynamics layer (:mod:`repro.dynamics`) for time-varying worlds: seeded
  event schedules (agent churn, density shocks, topology rewiring, sensor
  degradation), a catalog of named :class:`Scenario` specs, and online
  anytime density tracking with per-round confidence bands and change
  detection (:func:`run_scenario`),
* resumable sweep orchestration (:mod:`repro.sweeps`): declarative
  :class:`SweepSpec`\\ s (grid / zip / random-search axes over experiment
  configs and dynamics scenarios) compiled into one flat plan, with every
  completed cell checkpointed so an interrupted sweep resumes with zero
  recomputation (:func:`run_sweep_spec`),
* a persistent columnar result store (:mod:`repro.store`):
  :class:`ResultStore` appends rows atomically and idempotently (Parquet
  when pyarrow is present, NDJSON otherwise), records run provenance, and
  serves queries and report regeneration without re-running simulations.

Quickstart
----------

>>> from repro import Torus2D, estimate_density
>>> run = estimate_density(Torus2D(side=64), num_agents=200, rounds=400, seed=0)
>>> abs(run.mean_estimate() - run.true_density) / run.true_density < 0.2
True

Batched replicates via the engine:

>>> from repro import ExecutionEngine
>>> from repro.core.simulation import SimulationConfig
>>> batch = ExecutionEngine().run_replicates(
...     Torus2D(side=64), SimulationConfig(num_agents=200, rounds=400), 32, seed=0)
>>> batch.estimates().shape
(32, 200)

Online tracking of a time-varying world:

>>> from repro import build_scenario, run_scenario
>>> outcome = run_scenario(build_scenario("crash", quick=True), replicates=4, seed=0)
>>> len(outcome.records())
80
"""

# Defined before any subpackage import: repro.store and repro.sweeps fold the
# package version into provenance metadata and cache keys at import time.
__version__ = "1.10.0"

from repro.core import (
    AnalyticSolution,
    AnalyticUnsupportedError,
    IndependentSamplingEstimator,
    QuorumDetector,
    RandomWalkDensityEstimator,
    bounds,
    estimate_density,
    estimate_density_independent,
    estimate_property_frequency,
    solve_analytic,
)
from repro.core.results import AccuracySummary, DensityEstimationRun
from repro.dynamics import (
    EventSchedule,
    Scenario,
    ScenarioRunResult,
    build_scenario,
    run_scenario,
    scenario_names,
)
from repro.engine import (
    KERNEL_BACKENDS,
    BatchSimulationResult,
    ExecutionEngine,
    RunCache,
    get_default_backend,
    get_default_shard_workers,
    require_batch_safe,
    run_kernel,
    set_default_backend,
    set_default_shard_workers,
)
from repro.obs import (
    Telemetry,
    TelemetryRecorder,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.store import ResultStore
from repro.sweeps import (
    GridAxis,
    RandomAxis,
    SweepSpec,
    TargetSpec,
    ZipAxis,
    run_sweep_spec,
)
from repro.netsize import (
    NetworkSizeEstimationPipeline,
    estimate_average_degree,
    estimate_network_size,
    katzir_size_estimate,
)
from repro.swarm import RobotSwarm
from repro.sensor import SensorGrid
from repro.topology import (
    CompleteGraph,
    Hypercube,
    NetworkXTopology,
    RegularExpander,
    Ring,
    Torus2D,
    TorusKD,
)

__all__ = [
    "__version__",
    # Core algorithms
    "RandomWalkDensityEstimator",
    "IndependentSamplingEstimator",
    "QuorumDetector",
    "estimate_density",
    "estimate_density_independent",
    "estimate_property_frequency",
    "bounds",
    "DensityEstimationRun",
    "AccuracySummary",
    # Execution engine and the unified simulation kernel
    "KERNEL_BACKENDS",
    "get_default_backend",
    "set_default_backend",
    "get_default_shard_workers",
    "set_default_shard_workers",
    "AnalyticSolution",
    "AnalyticUnsupportedError",
    "solve_analytic",
    "ExecutionEngine",
    "BatchSimulationResult",
    "RunCache",
    "run_kernel",
    "require_batch_safe",
    # Sweeps and the result store
    "SweepSpec",
    "TargetSpec",
    "GridAxis",
    "ZipAxis",
    "RandomAxis",
    "run_sweep_spec",
    "ResultStore",
    # Observability: telemetry spine + bench-history observatory
    "Telemetry",
    "TelemetryRecorder",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    # Dynamics: time-varying scenarios and online tracking
    "Scenario",
    "ScenarioRunResult",
    "EventSchedule",
    "build_scenario",
    "run_scenario",
    "scenario_names",
    # Topologies
    "Torus2D",
    "Ring",
    "TorusKD",
    "Hypercube",
    "CompleteGraph",
    "RegularExpander",
    "NetworkXTopology",
    # Applications
    "NetworkSizeEstimationPipeline",
    "estimate_network_size",
    "estimate_average_degree",
    "katzir_size_estimate",
    "RobotSwarm",
    "SensorGrid",
]
