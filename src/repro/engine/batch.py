"""Batched replicate execution of Algorithm 1.

Every quantitative claim in the paper is established by averaging many
independent replicates of the same simulation. Running those replicates one
at a time wastes most of the wall-clock on per-round Python and small-array
NumPy overhead: with 200 agents, a single ``np.unique`` call processes 200
elements and the interpreter overhead dominates.

This module instead carries **all replicates through the round loop at
once** as an ``(R, n)`` position matrix:

* every topology's :meth:`~repro.topology.base.Topology.step_many` already
  operates elementwise on arrays of any shape, so one call advances all
  ``R * n`` walkers;
* collision counting offsets replicate ``r``'s node labels by ``r * A`` so
  that agents in different replicates can never share a label, and a single
  ``np.unique`` pass over the flattened matrix counts collisions for every
  replicate simultaneously (:func:`repro.core.encounter.batched_collision_counts`).

The replicates are mutually independent by construction — exactly as if
each had been run in its own loop with its own slice of the generator's
stream — but the per-round cost is amortised over all of them.

Movement and observation-noise models whose array operations are purely
elementwise declare ``batch_safe = True`` and run directly on the ``(R, n)``
matrix (each replicate still sees its own independent randomness). Models
that mix information *across* agents in ways that would leak between
replicates (e.g. :class:`~repro.walks.movement.CollisionAvoidingWalk`) stay
banned here; such workloads — and anything else the matrix form cannot
express, like the network-size pipelines — belong on the process-parallel
scheduler instead; see :mod:`repro.engine.scheduler`.

A :class:`~repro.core.simulation.SimulationConfig` may also carry a
``round_hook``: the hook receives the live ``(R, n)`` state after every
round, which is how the dynamics layer (:mod:`repro.dynamics`) runs
time-varying scenarios — agent churn, density shocks, topology changes —
at batched throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.encounter import batched_collision_counts, batched_collision_profiles
from repro.core.simulation import RoundState, SimulationConfig, SimulationResult, apply_round_hook
from repro.topology.base import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


@dataclass
class BatchSimulationResult:
    """Raw outcome of :func:`simulate_density_estimation_batch`.

    All per-agent arrays carry a leading replicate axis: shape ``(R, n)``
    where :class:`~repro.core.simulation.SimulationResult` has ``(n,)``.
    Use :meth:`replicate` to view one replicate in the legacy single-run
    format.
    """

    collision_totals: np.ndarray
    marked_collision_totals: np.ndarray
    marked: np.ndarray
    initial_positions: np.ndarray
    final_positions: np.ndarray
    rounds: int
    num_nodes: int
    trajectory: np.ndarray | None = None
    marked_trajectory: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def replicates(self) -> int:
        return int(self.collision_totals.shape[0])

    @property
    def num_agents(self) -> int:
        return int(self.collision_totals.shape[1])

    @property
    def true_density(self) -> float:
        """The paper's density ``d = n / A`` (identical across replicates)."""
        return (self.num_agents - 1) / self.num_nodes

    def estimates(self) -> np.ndarray:
        """Per-agent density estimates ``d̃ = c / t``, shape ``(R, n)``."""
        return self.collision_totals / self.rounds

    def marked_estimates(self) -> np.ndarray:
        """Per-agent marked-density estimates ``d̃_P = c_P / t``, shape ``(R, n)``."""
        return self.marked_collision_totals / self.rounds

    def replicate(self, index: int) -> SimulationResult:
        """The ``index``-th replicate as a single-run :class:`SimulationResult`."""
        r = range(self.replicates)[index]  # normalises negative indices, bounds-checks
        return SimulationResult(
            collision_totals=self.collision_totals[r],
            marked_collision_totals=self.marked_collision_totals[r],
            marked=self.marked[r],
            initial_positions=self.initial_positions[r],
            final_positions=self.final_positions[r],
            rounds=self.rounds,
            num_nodes=self.num_nodes,
            trajectory=None if self.trajectory is None else self.trajectory[:, r, :],
            marked_trajectory=(
                None if self.marked_trajectory is None else self.marked_trajectory[:, r, :]
            ),
            metadata=dict(self.metadata, replicate=r),
        )


def simulate_density_estimation_batch(
    topology: Topology,
    config: SimulationConfig,
    replicates: int,
    seed: SeedLike = None,
) -> BatchSimulationResult:
    """Run ``replicates`` independent copies of Algorithm 1 as one matrix simulation.

    Parameters
    ----------
    topology:
        Topology to walk on; any :class:`~repro.topology.Topology` (their
        ``step_many`` implementations are shape-polymorphic).
    config:
        Simulation parameters shared by every replicate. ``movement`` and
        ``collision_model`` hooks must declare ``batch_safe = True``
        (elementwise over the ``(R, n)`` matrix); models that mix
        information across agents cannot be expressed as a matrix
        simulation — run those through
        :class:`repro.engine.scheduler.ExecutionEngine` instead. A
        ``round_hook`` receives the live ``(R, n)`` state each round and
        may apply churn or environment changes (see :mod:`repro.dynamics`).
    replicates:
        Number of independent replicates ``R``.
    seed:
        Seed or generator controlling all randomness. The replicates draw
        from one shared stream, so they are deterministic given the seed and
        mutually independent.

    Returns
    -------
    BatchSimulationResult
        Per-replicate, per-agent collision totals (shape ``(R, n)``).
    """
    require_integer(replicates, "replicates", minimum=1)
    if config.movement is not None and not getattr(config.movement, "batch_safe", False):
        raise ValueError(
            "this movement model mixes information across agents and would leak "
            "between replicates if batched; run it through the engine scheduler instead"
        )
    if config.collision_model is not None and not getattr(config.collision_model, "batch_safe", False):
        raise ValueError(
            "this collision observation model does not declare itself batch-safe "
            "(elementwise over (R, n) count matrices); run it through the engine "
            "scheduler instead"
        )

    rng = as_generator(seed)
    n_agents = config.num_agents

    if config.placement is None:
        positions = topology.uniform_nodes((replicates, n_agents), rng)
    else:
        rows = [
            np.asarray(config.placement(topology, n_agents, rng), dtype=np.int64)
            for _ in range(replicates)
        ]
        for row in rows:
            if row.shape != (n_agents,):
                raise ValueError(
                    f"placement must return shape ({n_agents},), got {row.shape}"
                )
        positions = np.stack(rows)
    positions = np.asarray(positions, dtype=np.int64)
    topology.validate_nodes(positions)
    initial_positions = positions.copy()

    if config.marked_fraction > 0.0:
        marked = rng.random((replicates, n_agents)) < config.marked_fraction
    else:
        marked = np.zeros((replicates, n_agents), dtype=bool)
    track_marked = bool(marked.any())

    totals = np.zeros((replicates, n_agents), dtype=np.float64)
    marked_totals = np.zeros((replicates, n_agents), dtype=np.float64)

    trajectory = (
        np.zeros((config.rounds, replicates, n_agents), dtype=np.float64)
        if config.record_trajectory
        else None
    )
    marked_trajectory = (
        np.zeros((config.rounds, replicates, n_agents), dtype=np.float64)
        if (config.record_trajectory and track_marked)
        else None
    )

    for round_index in range(config.rounds):
        if config.movement is not None:
            positions = np.asarray(config.movement.step(topology, positions, rng), dtype=np.int64)
        else:
            positions = topology.step_many(positions, rng)
        num_nodes = topology.num_nodes
        if track_marked:
            counts, marked_counts = batched_collision_profiles(positions, marked, num_nodes)
            marked_totals += marked_counts
            if marked_trajectory is not None:
                marked_trajectory[round_index] = marked_totals
        else:
            counts = batched_collision_counts(positions, num_nodes)
        if config.collision_model is not None:
            observed = np.asarray(config.collision_model.observe(counts, rng), dtype=np.float64)
            if observed.shape != counts.shape:
                raise ValueError(
                    "collision_model.observe must preserve the shape of its input"
                )
        else:
            observed = counts.astype(np.float64)
        totals += observed

        if trajectory is not None:
            trajectory[round_index] = totals

        if config.round_hook is not None:
            state = apply_round_hook(
                config.round_hook,
                RoundState(
                    topology=topology,
                    positions=positions,
                    totals=totals,
                    marked=marked,
                    marked_totals=marked_totals,
                    observed=observed,
                    round_index=round_index,
                    rng=rng,
                ),
            )
            if state.positions.ndim != 2 or state.positions.shape[0] != replicates:
                raise ValueError(
                    "round_hook must preserve the replicate axis: expected "
                    f"({replicates}, n) arrays, got shape {state.positions.shape}"
                )
            topology = state.topology
            positions = state.positions
            totals = state.totals
            marked = state.marked
            marked_totals = state.marked_totals

    return BatchSimulationResult(
        collision_totals=totals,
        marked_collision_totals=marked_totals,
        marked=marked,
        initial_positions=initial_positions,
        final_positions=positions,
        rounds=config.rounds,
        num_nodes=topology.num_nodes,
        trajectory=trajectory,
        marked_trajectory=marked_trajectory,
        metadata={"topology": topology.name, "replicates": replicates},
    )


__all__ = ["BatchSimulationResult", "simulate_density_estimation_batch"]
