"""Batched replicate execution of Algorithm 1 — the kernel's ``(R, n)`` mode.

Every quantitative claim in the paper is established by averaging many
independent replicates of the same simulation. Running those replicates one
at a time wastes most of the wall-clock on per-round Python and small-array
NumPy overhead; carrying **all replicates through the round loop at once**
as an ``(R, n)`` position matrix amortises that overhead across the batch:

* every topology's :meth:`~repro.topology.base.Topology.step_many` operates
  elementwise on arrays of any shape, so one call advances all ``R * n``
  walkers;
* collision counting offsets replicate ``r``'s node labels by ``r * A`` so
  that agents in different replicates can never share a label, and a single
  ``np.unique`` pass over the flattened matrix counts collisions for every
  replicate simultaneously (:func:`repro.core.encounter.batched_collision_counts`).

The loop implementing this lives in :mod:`repro.core.kernel` — the **same**
loop that serves the serial path (``replicates=None``) — and this module is
the engine-facing entry point for its batched mode. Movement and
observation models must pass :func:`repro.core.kernel.require_batch_safe`:
their array operations may do anything *within* a replicate row (the
vectorized :class:`~repro.walks.movement.CollisionAvoidingWalk` couples
agents of one replicate, for example) but must never mix information
*between* rows. Workloads the matrix form cannot express — the
network-size pipelines, adaptive stopping — belong on the process-parallel
scheduler instead; see :mod:`repro.engine.scheduler`.

A :class:`~repro.core.simulation.SimulationConfig` may also carry a
``round_hook``: the hook receives the live ``(R, n)`` state after every
round, which is how the dynamics layer (:mod:`repro.dynamics`) runs
time-varying scenarios — agent churn, density shocks, topology changes —
at batched throughput.
"""

from __future__ import annotations

from repro.core.kernel import BatchSimulationResult, run_kernel
from repro.core.simulation import SimulationConfig
from repro.topology.base import Topology
from repro.utils.rng import SeedLike


def simulate_density_estimation_batch(
    topology: Topology,
    config: SimulationConfig,
    replicates: int,
    seed: SeedLike = None,
    backend: str | None = None,
    shard_workers: int | None = None,
) -> BatchSimulationResult:
    """Run ``replicates`` independent copies of Algorithm 1 as one matrix simulation.

    Thin alias for ``run_kernel(topology, config, replicates, seed)`` —
    the batched mode of the unified kernel. Kept as the engine's named
    entry point; results and streams are identical to the historical
    standalone batched loop.

    Parameters
    ----------
    topology:
        Topology to walk on; any :class:`~repro.topology.Topology` (their
        ``step_many`` implementations are shape-polymorphic).
    config:
        Simulation parameters shared by every replicate. ``movement`` and
        ``collision_model`` hooks must declare ``batch_safe = True`` (no
        information flow across the replicate axis); the kernel's
        :func:`~repro.core.kernel.require_batch_safe` enforces this. A
        ``round_hook`` receives the live ``(R, n)`` state each round and
        may apply churn or environment changes (see :mod:`repro.dynamics`).
    replicates:
        Number of independent replicates ``R``.
    seed:
        Seed or generator controlling all randomness. The replicates draw
        from one shared stream, so they are deterministic given the seed and
        mutually independent.
    backend:
        Kernel backend (``"auto"``/``"reference"``/``"fused"``); ``None``
        uses the process-wide default. All backends are bit-identical —
        the flag only changes wall-clock (see :mod:`repro.core.fastpath`).
    shard_workers:
        ``None`` uses the process-wide default (normally off). ``K >= 1``
        splits the ``(R, n)`` matrix into contiguous replicate-row shards
        run on a pool (:mod:`repro.core.shardpath`): bit-identical for
        every ``K`` (per-replicate SeedSequence children), but a
        different RNG discipline from the unsharded shared stream.

    Returns
    -------
    BatchSimulationResult
        Per-replicate, per-agent collision totals (shape ``(R, n)``).
    """
    return run_kernel(
        topology, config, replicates, seed, backend=backend, shard_workers=shard_workers
    )


__all__ = ["BatchSimulationResult", "simulate_density_estimation_batch"]
