"""Deterministic parallel scheduling of independent simulation tasks.

The batched matrix path (:mod:`repro.engine.batch`) covers the plain
Algorithm 1 replicate workload; everything it cannot express — movement
models, observation-noise hooks, the network-size pipelines — is a bag of
independent tasks that differ only in their parameters and their random
stream. This module runs such bags either serially or across a process
pool, with one hard guarantee:

**the results are bit-identical regardless of the worker count.**

Two ingredients make that possible:

1. every task gets its own child of one root :class:`numpy.random.SeedSequence`
   (``SeedSequence.spawn``), so its random stream depends only on its index
   in the plan, never on which process runs it or in what order;
2. results are reassembled in plan order, so chunking is invisible.

``workers=1`` never touches :mod:`concurrent.futures` at all — it is a plain
loop, usable in any environment (and the reference the parallel path is
tested against).
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.engine.batch import BatchSimulationResult, simulate_density_estimation_batch
from repro.core.kernel import get_default_backend, get_default_shard_workers
from repro.core.simulation import SimulationConfig
from repro.obs.telemetry import get_telemetry
from repro.topology.base import Topology
from repro.utils.rng import SeedLike, spawn_seed_sequences
from repro.utils.validation import require_integer

#: Contract for plan tasks: called as ``task(**setting, rng=generator)``.
TaskFn = Callable[..., Any]


@dataclass(frozen=True)
class ExecutionPlan:
    """An ordered bag of independent task invocations with pinned seeds.

    Attributes
    ----------
    task:
        Callable invoked as ``task(**setting, rng=generator)``. For parallel
        execution it must be picklable (a module-level function or a
        picklable callable object — not a lambda or closure).
    settings:
        One keyword-argument mapping per invocation.
    seed_sequences:
        One ``SeedSequence`` per invocation; each worker builds
        ``np.random.default_rng(seed_sequences[i])`` so the stream of task
        ``i`` is a pure function of the plan, not of the execution layout.
    cost_hints:
        Optional relative cost per invocation (any positive scale). When
        present, the default chunking balances chunks by *advertised cost*
        instead of cell count, so one huge cell (a million-agent
        simulation) gets its own chunk instead of serialising a pile of
        trivial cells behind it. Purely a scheduling hint: results are
        reassembled by index, so hints can never change them.
    """

    task: TaskFn
    settings: tuple[Mapping[str, Any], ...]
    seed_sequences: tuple[np.random.SeedSequence, ...]
    cost_hints: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if len(self.settings) != len(self.seed_sequences):
            raise ValueError(
                f"plan has {len(self.settings)} settings but "
                f"{len(self.seed_sequences)} seed sequences"
            )
        if self.cost_hints is not None:
            if len(self.cost_hints) != len(self.settings):
                raise ValueError(
                    f"plan has {len(self.settings)} settings but "
                    f"{len(self.cost_hints)} cost hints"
                )
            if any(not (cost > 0.0) for cost in self.cost_hints):
                raise ValueError("cost_hints must be positive and finite")

    def __len__(self) -> int:
        return len(self.settings)

    def subset(self, indices: Sequence[int]) -> "ExecutionPlan":
        """A sub-plan of the invocations at ``indices``, seeds pinned.

        Each retained invocation keeps the seed sequence it had in the full
        plan, so running a subset (a shard's cell range, a resumed
        remainder) produces bit-identical results to the same invocations
        inside a full run — the property sweep sharding and resume both
        rest on. ``indices`` may select any subset in any order; duplicates
        are rejected because one plan must never run an invocation twice.
        """
        total = len(self.settings)
        seen: set[int] = set()
        for index in indices:
            require_integer(index, "subset index", minimum=0)
            if index >= total:
                raise ValueError(f"subset index {index} is out of range for a plan of {total}")
            if index in seen:
                raise ValueError(f"subset repeats index {index}")
            seen.add(index)
        return ExecutionPlan(
            task=self.task,
            settings=tuple(self.settings[index] for index in indices),
            seed_sequences=tuple(self.seed_sequences[index] for index in indices),
            cost_hints=(
                None
                if self.cost_hints is None
                else tuple(self.cost_hints[index] for index in indices)
            ),
        )


def build_plan(
    task: TaskFn,
    settings: Iterable[Mapping[str, Any]],
    seed: SeedLike = None,
    cost_hints: Iterable[float] | None = None,
) -> ExecutionPlan:
    """Pin down an :class:`ExecutionPlan`: freeze the settings, spawn the seeds.

    ``cost_hints`` may be passed explicitly; when omitted, a task that
    advertises its own per-cell cost via a ``cost_hint(**setting)``
    callable has it evaluated per setting — cells carry their cost to the
    scheduler without every call site having to know about it.
    """
    frozen = tuple(dict(setting) for setting in settings)
    children = tuple(spawn_seed_sequences(seed, len(frozen)))
    if cost_hints is None:
        advertise = getattr(task, "cost_hint", None)
        if callable(advertise):
            cost_hints = [float(advertise(**setting)) for setting in frozen]
    hints = None if cost_hints is None else tuple(float(cost) for cost in cost_hints)
    return ExecutionPlan(
        task=task, settings=frozen, seed_sequences=children, cost_hints=hints
    )


def _run_chunk(
    task: TaskFn,
    settings: Sequence[Mapping[str, Any]],
    seed_sequences: Sequence[np.random.SeedSequence],
    timed: bool = False,
    backend: str | None = None,
    shard_workers: int | None = None,
) -> tuple[list[Any], list[float] | None]:
    """Execute one contiguous chunk of a plan (runs inside a worker process).

    Worker processes always run the default no-op telemetry; when the
    *parent* has a recorder installed it asks for ``timed=True`` and folds
    the worker-measured per-cell durations into its own recorder — which is
    what keeps telemetry parent-side and counters identical across worker
    counts.

    The parent's default kernel backend rides along as ``backend`` and is
    installed before any cell runs: for the bit-identical simulating
    backends this is invisible, but ``--backend analytic`` changes records,
    so a worker falling back to its own default would silently diverge
    from the serial path (spawn-based start methods don't inherit module
    state). The default ``shard_workers`` rides along for the same reason:
    sharded runs use the per-replicate RNG discipline, so a worker
    ignoring the parent's setting would change records.
    """
    if backend is not None:
        from repro.core.kernel import set_default_backend

        set_default_backend(backend)
    if shard_workers is not None:
        from repro.core.kernel import set_default_shard_workers

        set_default_shard_workers(shard_workers)
    if not timed:
        return [
            task(**setting, rng=np.random.default_rng(sequence))
            for setting, sequence in zip(settings, seed_sequences)
        ], None
    results: list[Any] = []
    durations: list[float] = []
    for setting, sequence in zip(settings, seed_sequences):
        start = time.perf_counter()
        results.append(task(**setting, rng=np.random.default_rng(sequence)))
        durations.append(time.perf_counter() - start)
    return results, durations


def _chunk_bounds(total: int, chunk_size: int) -> list[tuple[int, int]]:
    return [(start, min(start + chunk_size, total)) for start in range(0, total, chunk_size)]


def _cost_chunk_bounds(costs: Sequence[float], workers: int) -> list[tuple[int, int]]:
    """Contiguous chunk bounds balanced by advertised cost.

    The count-based default (``ceil(total / (workers * 4))`` cells per
    chunk) starves the pool when a plan has a few huge cells: a chunk that
    happens to hold two million-agent cells runs them back to back on one
    worker while the rest of the pool idles. Here chunks close once their
    accumulated cost reaches ``total_cost / (workers * 4)`` — so any cell
    at or above that target is its own chunk, and trivia packs together.
    Bounds remain contiguous and results are reassembled by index, so
    this changes scheduling only, never results.
    """
    total_cost = float(sum(costs))
    if not total_cost > 0.0:
        return _chunk_bounds(len(costs), max(1, math.ceil(len(costs) / (workers * 4))))
    target = total_cost / (workers * 4)
    bounds: list[tuple[int, int]] = []
    start = 0
    accumulated = 0.0
    for index, cost in enumerate(costs):
        if index > start and accumulated + cost > target:
            bounds.append((start, index))
            start = index
            accumulated = 0.0
        accumulated += cost
    bounds.append((start, len(costs)))
    return bounds


def iter_execute_plan(
    plan: ExecutionPlan, *, workers: int = 1, chunk_size: int | None = None
) -> Iterator[tuple[int, Any]]:
    """Yield ``(index, result)`` pairs of ``plan`` as results become available.

    The incremental form of :func:`execute_plan`: results stream back as the
    serial loop advances (``workers=1``, plan order) or **as worker chunks
    complete** (completion order across chunks, plan order within one).
    Callers that checkpoint progress (the sweep runner writes each completed
    cell to the run cache the moment it arrives) consume this directly; an
    interrupted consumer loses at most the chunks still executing, never a
    result already yielded — and because completed chunks are yielded ahead
    of slower earlier ones, a long-running cell never holds finished cells
    hostage un-checkpointed.

    The *set* of pairs — and anything order-independent derived from it —
    is identical for every ``workers`` / ``chunk_size`` combination; the
    ``index`` of each pair says where it belongs in the plan.
    """
    require_integer(workers, "workers", minimum=1)
    total = len(plan)
    if total == 0:
        return
    tel = get_telemetry()
    timed = tel.enabled
    if workers == 1 or total == 1:
        with tel.span("plan", tasks=total, workers=1):
            busy = 0.0
            wall_start = time.perf_counter() if timed else 0.0
            for index, (setting, sequence) in enumerate(
                zip(plan.settings, plan.seed_sequences)
            ):
                if timed:
                    start = time.perf_counter()
                result = plan.task(**setting, rng=np.random.default_rng(sequence))
                if timed:
                    elapsed = time.perf_counter() - start
                    busy += elapsed
                    tel.counter("scheduler.cells")
                    tel.timer("scheduler.cell_seconds", elapsed)
                yield index, result
            if timed:
                wall = time.perf_counter() - wall_start
                tel.gauge(
                    "scheduler.worker_utilization",
                    min(1.0, busy / wall) if wall > 0 else 1.0,
                )
        return

    if chunk_size is None and plan.cost_hints is not None:
        bounds = _cost_chunk_bounds(plan.cost_hints, workers)
    else:
        if chunk_size is None:
            chunk_size = max(1, math.ceil(total / (workers * 4)))
        require_integer(chunk_size, "chunk_size", minimum=1)
        bounds = _chunk_bounds(total, chunk_size)
    pool_workers = min(workers, len(bounds))
    pool = ProcessPoolExecutor(max_workers=pool_workers)
    with tel.span("plan", tasks=total, workers=pool_workers, chunks=len(bounds)):
        busy = 0.0
        wall_start = time.perf_counter() if timed else 0.0
        try:
            future_bounds = {
                pool.submit(
                    _run_chunk,
                    plan.task,
                    plan.settings[lo:hi],
                    plan.seed_sequences[lo:hi],
                    timed,
                    get_default_backend(),
                    get_default_shard_workers(),
                ): (lo, hi)
                for lo, hi in bounds
            }
            for future in as_completed(future_bounds):
                lo, _ = future_bounds[future]
                results, durations = future.result()
                if timed and durations is not None:
                    for seconds in durations:
                        busy += seconds
                        tel.timer("scheduler.cell_seconds", seconds)
                    tel.counter("scheduler.cells", len(results))
                    tel.event(
                        "scheduler.chunk_complete",
                        start=lo,
                        cells=len(results),
                        busy_seconds=round(sum(durations), 6),
                    )
                for offset, result in enumerate(results):
                    yield lo + offset, result
            if timed:
                # Busy time is worker-measured, wall time parent-measured
                # (including consumer time between yields), so this is the
                # fraction of the pool's capacity the plan actually used.
                wall = time.perf_counter() - wall_start
                tel.gauge(
                    "scheduler.worker_utilization",
                    min(1.0, busy / (wall * pool_workers)) if wall > 0 else 1.0,
                )
        finally:
            # Reached on normal exhaustion (all futures done; cancelling is a
            # no-op) and on abandonment — a consumer error between yields or an
            # explicit close. Cancelling the queued chunks then surfaces the
            # consumer's exception immediately instead of silently running the
            # rest of a possibly huge plan to completion and discarding it.
            pool.shutdown(wait=True, cancel_futures=True)


def execute_plan(
    plan: ExecutionPlan, *, workers: int = 1, chunk_size: int | None = None
) -> list[Any]:
    """Run every invocation of ``plan`` and return the results in plan order.

    Parameters
    ----------
    plan:
        The plan to execute.
    workers:
        ``1`` (default) runs a plain serial loop in this process. Larger
        values fan the plan out over a ``ProcessPoolExecutor``; the task and
        its settings must then be picklable.
    chunk_size:
        Number of consecutive invocations shipped to a worker per submission
        (amortises process round-trips for short tasks). Defaults to an even
        split of roughly four chunks per worker. Has no effect on results.

    Returns
    -------
    list
        ``[task(**settings[i], rng=rng_i) for i in range(len(plan))]`` —
        identical for every ``workers`` / ``chunk_size`` combination (the
        incremental iterator may yield chunks out of order; reassembly by
        index restores plan order here).
    """
    results: list[Any] = [None] * len(plan)
    for index, result in iter_execute_plan(plan, workers=workers, chunk_size=chunk_size):
        results[index] = result
    return results


class _ScalarTrial:
    """Adapt a ``runner(rng) -> float`` trial to the ``task(rng=...)`` contract.

    Defined as a module-level class (not a closure) so that plans built from
    scalar trials remain picklable whenever the wrapped runner is.
    """

    def __init__(self, runner: Callable[[np.random.Generator], float]):
        self.runner = runner

    def __call__(self, *, rng: np.random.Generator) -> float:
        return float(self.runner(rng))


@dataclass(frozen=True)
class ExecutionEngine:
    """Facade over the engine's two execution strategies.

    * :meth:`run_replicates` — the batched matrix path for plain Algorithm 1
      replicate workloads (always in-process; ``workers`` is irrelevant).
    * :meth:`map` / :meth:`repeat` — the scheduled path for independent
      tasks that cannot be batched, fanned out over ``workers`` processes.

    Both paths are deterministic given their seed, and the scheduled path is
    additionally bit-identical across worker counts, so an engine only
    changes *how fast* results arrive — never the results.

    Attributes
    ----------
    workers:
        Process count for scheduled execution (``1`` = serial loop).
    chunk_size:
        Optional fixed chunk size for scheduled execution.
    """

    workers: int = 1
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        require_integer(self.workers, "workers", minimum=1)
        if self.chunk_size is not None:
            require_integer(self.chunk_size, "chunk_size", minimum=1)

    # ------------------------------------------------------------------
    # Scheduled path
    # ------------------------------------------------------------------
    def map(
        self,
        task: TaskFn,
        settings: Iterable[Mapping[str, Any]],
        seed: SeedLike = None,
        cost_hints: Iterable[float] | None = None,
    ) -> list[Any]:
        """Run ``task(**setting, rng=...)`` for every setting, in order.

        ``cost_hints`` (or a ``task.cost_hint(**setting)`` advertisement)
        lets heterogeneous grids balance chunks by cost instead of count;
        see :class:`ExecutionPlan`. Results never depend on it.
        """
        plan = build_plan(task, settings, seed, cost_hints=cost_hints)
        return execute_plan(plan, workers=self.workers, chunk_size=self.chunk_size)

    def repeat(
        self,
        runner: Callable[[np.random.Generator], float],
        repetitions: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Run a scalar trial ``repetitions`` times; return the value vector."""
        require_integer(repetitions, "repetitions", minimum=1)
        values = self.map(_ScalarTrial(runner), [{}] * repetitions, seed)
        return np.asarray(values, dtype=np.float64)

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def run_replicates(
        self,
        topology: Topology,
        config: SimulationConfig,
        replicates: int,
        seed: SeedLike = None,
    ) -> BatchSimulationResult:
        """Run independent Algorithm 1 replicates as one matrix simulation."""
        return simulate_density_estimation_batch(topology, config, replicates, seed)


__all__ = [
    "ExecutionPlan",
    "ExecutionEngine",
    "build_plan",
    "execute_plan",
    "iter_execute_plan",
]
