"""Execution engine: batched replicates, parallel scheduling, and a run cache.

The experiment suite establishes every claim by averaging independent
replicates. This package is the subsystem that runs those replicates fast
and reproducibly:

* :mod:`repro.engine.batch` — run ``R`` replicates of Algorithm 1 as **one
  matrix simulation** (an ``(R, n)`` position matrix through the round loop,
  one offset-label ``np.unique`` collision pass for all replicates). The
  loop itself is the unified kernel of :mod:`repro.core.kernel`, which also
  serves the serial path; :func:`repro.core.kernel.require_batch_safe` is
  the one capability check guarding the replicate axis;
* :mod:`repro.engine.scheduler` — a deterministic **process-parallel
  scheduler** for independent tasks that cannot be batched (network-size
  pipelines, adaptive stopping, heterogeneous grids), bit-identical across
  worker counts;
* :mod:`repro.engine.cache` — a **content-addressed run store** (key =
  topology + config + seed hash) so repeated sweeps skip completed settings.

:class:`ExecutionEngine` is the facade experiments accept via their
``engine=`` parameter::

    from repro.engine import ExecutionEngine
    engine = ExecutionEngine(workers=4)
    result = run_experiment("E09", quick=True, engine=engine)
"""

from repro.core.kernel import (
    KERNEL_BACKENDS,
    get_default_backend,
    get_default_shard_workers,
    require_batch_safe,
    run_kernel,
    set_default_backend,
    set_default_shard_workers,
)
from repro.engine.batch import BatchSimulationResult, simulate_density_estimation_batch
from repro.engine.cache import RunCache, cache_key
from repro.engine.scheduler import (
    ExecutionEngine,
    ExecutionPlan,
    build_plan,
    execute_plan,
    iter_execute_plan,
)

__all__ = [
    "BatchSimulationResult",
    "ExecutionEngine",
    "ExecutionPlan",
    "KERNEL_BACKENDS",
    "RunCache",
    "build_plan",
    "cache_key",
    "execute_plan",
    "get_default_backend",
    "get_default_shard_workers",
    "iter_execute_plan",
    "require_batch_safe",
    "run_kernel",
    "set_default_backend",
    "set_default_shard_workers",
    "simulate_density_estimation_batch",
]
