"""Content-addressed store for completed runs.

Sweeps over the experiment suite re-run many settings that have not changed
since the last invocation. The cache keys each completed run by a SHA-256
digest of its *content identity* — topology, configuration, and seed (plus
anything else the caller folds in, e.g. the package version) — so a
``repro run all --cache-dir …`` invocation skips every setting whose
payload is already on disk, and any change to the identity automatically
misses.

Payloads are JSON documents written atomically (temp file + ``os.replace``),
so a cache directory shared between concurrent runs never exposes a
half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.obs.telemetry import get_telemetry
from repro.utils.atomic import atomic_write_text
from repro.utils.serialization import to_jsonable


def cache_key(**components: Any) -> str:
    """SHA-256 digest of the canonical JSON form of ``components``.

    Components are converted with
    :func:`repro.utils.serialization.to_jsonable` (so dataclasses, NumPy
    values, and nested containers are all fine) and serialised with sorted
    keys and fixed separators, making the digest independent of dict
    ordering and formatting.
    """
    canonical = json.dumps(
        to_jsonable(components), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _Flight:
    """State of one in-flight :meth:`RunCache.get_or_compute` computation."""

    __slots__ = ("done", "payload", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.payload: dict[str, Any] | None = None
        self.error: BaseException | None = None


class RunCache:
    """A directory of completed-run payloads addressed by content key.

    Parameters
    ----------
    directory:
        Cache root; created on first use. One ``<key>.json`` file per entry.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()

    def __getstate__(self) -> dict[str, Any]:
        # Locks and in-flight state are process-local; a pickled copy
        # (e.g. shipped to a worker) starts with a fresh flight table.
        return {"directory": self.directory}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.directory = state["directory"]
        self._flights = {}
        self._flights_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Key handling
    # ------------------------------------------------------------------
    def key(self, **components: Any) -> str:
        """Compute the content key for ``components`` (see :func:`cache_key`)."""
        return cache_key(**components)

    def path_for(self, key: str) -> Path:
        """Filesystem path of the entry with the given key."""
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise ValueError(f"cache keys are lowercase hex digests, got {key!r}")
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------
    # Store / load
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def load(self, key: str) -> dict[str, Any] | None:
        """Return the stored payload for ``key``, or ``None`` on a miss.

        A corrupt entry (e.g. from a crashed writer on a filesystem without
        atomic replace) is treated as a miss and removed. A transient read
        error (permissions, fd exhaustion, I/O) is a miss too, but the entry
        is left in place — the data may be perfectly valid.
        """
        path = self.path_for(key)
        tel = get_telemetry()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            tel.counter("cache.misses")
            return None
        except ValueError:
            # Undecodable bytes or malformed JSON: the entry is corrupt.
            # (UnicodeDecodeError and json.JSONDecodeError are both ValueError.)
            try:
                path.unlink()
            except OSError:
                pass
            tel.counter("cache.corrupt_recovered")
            tel.counter("cache.misses")
            return None
        except OSError:
            tel.counter("cache.read_errors")
            tel.counter("cache.misses")
            return None
        tel.counter("cache.hits")
        return payload

    def store(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Atomically write ``payload`` under ``key``; returns the entry path."""
        path = self.path_for(key)
        tel = get_telemetry()
        start = time.perf_counter() if tel.enabled else 0.0
        document = json.dumps(to_jsonable(payload), indent=2, sort_keys=False)
        atomic_write_text(path, document)
        if tel.enabled:
            tel.counter("cache.stores")
            tel.timer("cache.store_seconds", time.perf_counter() - start)
        return path

    # ------------------------------------------------------------------
    # Single-flight computation
    # ------------------------------------------------------------------
    def get_or_compute(
        self, key: str, compute: Callable[[], Mapping[str, Any]]
    ) -> tuple[dict[str, Any], str]:
        """Load ``key`` or run ``compute`` exactly once across concurrent callers.

        Returns ``(payload, status)`` with status one of:

        * ``"hit"`` — the entry was already on disk;
        * ``"computed"`` — this caller ran ``compute`` and stored the result;
        * ``"dedupe"`` — another thread was already computing the same key;
          this caller blocked until it finished and shares its payload
          (``cache.dedupe_hits`` telemetry counter).

        The *first* caller for a key becomes the leader: it checks the disk
        entry, runs ``compute`` on a miss, and stores the result atomically.
        Every concurrent caller for the same key waits on the leader and
        receives the identical (JSON-plain) payload — which is what lets a
        job daemon collapse N identical submissions into one engine
        execution. A leader failure propagates the same exception to every
        waiter, and the key is retried by the next fresh caller.
        """
        self.path_for(key)  # validate eagerly, before any lock is taken
        while True:
            with self._flights_lock:
                flight = self._flights.get(key)
                if flight is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.done.wait()
                if flight.error is not None:
                    raise flight.error
                if flight.payload is None:  # pragma: no cover - defensive
                    continue  # leader vanished without publishing; retry
                get_telemetry().counter("cache.dedupe_hits")
                return flight.payload, "dedupe"
            try:
                payload = self.load(key)
                if payload is not None:
                    status = "hit"
                else:
                    # to_jsonable here (store() repeats it idempotently) so
                    # leader and waiters share one plain-JSON payload — the
                    # exact document any later load() would return.
                    payload = to_jsonable(dict(compute()))
                    self.store(key, payload)
                    status = "computed"
                flight.payload = payload
                return payload, status
            except BaseException as error:
                flight.error = error
                raise
            finally:
                with self._flights_lock:
                    self._flights.pop(key, None)
                flight.done.set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Keys of all entries currently in the cache.

        Only files whose stem is a SHA-256 hex digest count as entries, so a
        cache directory that also holds foreign files (``notes.json``, …)
        enumerates — and :meth:`clear`\\ s — cleanly.
        """
        if not self.directory.is_dir():
            return
        digits = set("0123456789abcdef")
        for entry in sorted(self.directory.glob("*.json")):
            if len(entry.stem) == 64 and set(entry.stem) <= digits:
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        if removed:
            get_telemetry().counter("cache.evicted", removed)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunCache(directory={str(self.directory)!r})"


__all__ = ["RunCache", "cache_key"]
