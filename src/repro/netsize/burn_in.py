"""Burn-in phase for the network size estimator (Section 5.1.4).

Walks cannot be started from the stationary distribution directly — only a
seed vertex is known. They are therefore all started at the seed and run for
``M = O(log(|E|/δ) / (1 - λ))`` steps, after which their joint law is within
``δ`` of stationarity in total variation and the analysis of Algorithm 2
goes through with failure probability at most ``2δ``.
"""

from __future__ import annotations

import numpy as np

from repro.core import bounds
from repro.netsize.oracle import GraphAccessOracle
from repro.topology.graph import NetworkXTopology
from repro.topology.spectral import second_eigenvalue_magnitude
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer, require_probability


def required_burn_in_steps(
    topology: NetworkXTopology,
    delta: float = 0.05,
    *,
    lambda_value: float | None = None,
    constant: float = 1.0,
) -> int:
    """Burn-in length prescribed by Section 5.1.4.

    ``lambda_value`` may be supplied to avoid recomputing the spectrum; note
    that on bipartite graphs λ = 1 and the lazy-walk convention must be used
    instead (the caller should then pass an explicit walk length).
    """
    require_probability(delta, "delta", allow_zero=False, allow_one=False)
    lam = second_eigenvalue_magnitude(topology) if lambda_value is None else float(lambda_value)
    if lam >= 1.0:
        raise ValueError(
            "the walk matrix has |second eigenvalue| = 1 (e.g. a bipartite graph); "
            "burn-in never converges — pass an explicit lambda_value < 1 or use a "
            "non-bipartite graph"
        )
    return bounds.burn_in_steps(lam, topology.num_edges, delta, constant=constant)


def burn_in_walks(
    source: GraphAccessOracle | NetworkXTopology,
    num_walks: int,
    steps: int,
    seed: SeedLike = None,
    *,
    seed_node: int = 0,
) -> np.ndarray:
    """Run ``num_walks`` walks from ``seed_node`` for ``steps`` steps.

    Returns the walker positions after burn-in. When run against an oracle,
    each step of each walk is charged as one link query, exactly like the
    estimation phase.
    """
    require_integer(num_walks, "num_walks", minimum=1)
    require_integer(steps, "steps", minimum=0)
    rng = as_generator(seed)
    if isinstance(source, GraphAccessOracle):
        topology = source.topology
        oracle: GraphAccessOracle | None = source
    else:
        topology = source
        oracle = None
    if not 0 <= seed_node < topology.num_nodes:
        raise ValueError(f"seed_node must be a valid node label, got {seed_node}")

    positions = np.full(num_walks, int(seed_node), dtype=np.int64)
    for _ in range(steps):
        if oracle is not None:
            positions = oracle.step_walkers(positions, rng)
        else:
            positions = topology.step_many(positions, rng)
    return positions


__all__ = ["required_burn_in_steps", "burn_in_walks"]
