"""End-to-end network size estimation pipeline.

Glues together the three stages of Section 5.1 with full link-query
accounting:

1. **Burn-in** — all walks start at a seed vertex and walk
   ``M = O(log(|E|/δ)/(1-λ))`` steps (Section 5.1.4).
2. **Average degree estimation** — Algorithm 3 applied to the burned-in
   walker positions (Theorem 31).
3. **Size estimation** — Algorithm 2 run for ``t`` further rounds
   (Theorem 27).

The pipeline also provides the standard median-amplification trick the paper
mentions after Theorem 27 (repeat with failure probability 1/3 and take the
median) and reports the query count so experiments can reproduce the
query-complexity comparison against [KLSC14] in Section 5.1.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.netsize.burn_in import burn_in_walks, required_burn_in_steps
from repro.netsize.degree import estimate_average_degree
from repro.netsize.katzir import katzir_size_estimate
from repro.netsize.oracle import GraphAccessOracle
from repro.netsize.size_estimator import NetworkSizeEstimate, estimate_network_size
from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.utils.validation import require_integer, require_probability


@dataclass(frozen=True)
class PipelineReport:
    """Full accounting of one pipeline run."""

    size_estimate: float
    true_size: int
    relative_error: float
    average_degree_estimate: float
    true_average_degree: float
    num_walks: int
    burn_in_steps: int
    estimation_rounds: int
    link_queries: int
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class NetworkSizeEstimationPipeline:
    """Run burn-in + degree estimation + Algorithm 2 against a hidden graph.

    Parameters
    ----------
    topology:
        The hidden graph (wrapped in a query-counting oracle internally).
    num_walks:
        Number of random walks ``n``.
    rounds:
        Number of collision-counting rounds ``t`` for Algorithm 2.
    burn_in:
        Burn-in steps; ``None`` derives them from the spectral gap via
        Section 5.1.4 (requires a non-bipartite graph).
    seed_node:
        The initially known vertex all walks start from.
    delta:
        Failure probability target used when deriving the burn-in length.
    use_estimated_degree:
        When ``True`` (default) Algorithm 3's estimate is plugged into
        Algorithm 2; when ``False`` the true average degree is used (the
        idealised setting of Section 5.1.2).
    """

    topology: NetworkXTopology
    num_walks: int
    rounds: int
    burn_in: int | None = None
    seed_node: int = 0
    delta: float = 0.05
    use_estimated_degree: bool = True

    def __post_init__(self) -> None:
        require_integer(self.num_walks, "num_walks", minimum=2)
        require_integer(self.rounds, "rounds", minimum=1)
        require_probability(self.delta, "delta", allow_zero=False, allow_one=False)
        if self.burn_in is not None:
            require_integer(self.burn_in, "burn_in", minimum=0)

    def run(self, seed: SeedLike = None) -> PipelineReport:
        """Execute the three stages and return the full report."""
        rng = as_generator(seed)
        oracle = GraphAccessOracle(self.topology)

        burn_steps = (
            self.burn_in
            if self.burn_in is not None
            else required_burn_in_steps(self.topology, self.delta)
        )
        positions = burn_in_walks(
            oracle, self.num_walks, burn_steps, rng, seed_node=self.seed_node
        )

        degree_estimate = estimate_average_degree(
            oracle, self.num_walks, rng, positions=positions
        )
        degree_used = degree_estimate if self.use_estimated_degree else self.topology.average_degree

        estimate: NetworkSizeEstimate = estimate_network_size(
            oracle,
            self.num_walks,
            self.rounds,
            rng,
            average_degree=degree_used,
            starts=positions,
        )

        true_size = self.topology.num_nodes
        relative_error = (
            float("inf")
            if not np.isfinite(estimate.size_estimate)
            else abs(estimate.size_estimate - true_size) / true_size
        )
        return PipelineReport(
            size_estimate=estimate.size_estimate,
            true_size=true_size,
            relative_error=relative_error,
            average_degree_estimate=degree_estimate,
            true_average_degree=self.topology.average_degree,
            num_walks=self.num_walks,
            burn_in_steps=burn_steps,
            estimation_rounds=self.rounds,
            link_queries=oracle.query_count,
            details={
                "weighted_collision_rate": estimate.weighted_collision_rate,
                "total_weighted_collisions": estimate.total_weighted_collisions,
                "degree_used": degree_used,
            },
        )

    def run_katzir_baseline(self, seed: SeedLike = None) -> PipelineReport:
        """Run the [KLSC14] baseline with the same walk budget and burn-in.

        The baseline burns in the same number of walks and then counts the
        collisions of the final configuration only (no estimation rounds).
        """
        rng = as_generator(seed)
        oracle = GraphAccessOracle(self.topology)
        burn_steps = (
            self.burn_in
            if self.burn_in is not None
            else required_burn_in_steps(self.topology, self.delta)
        )
        positions = burn_in_walks(
            oracle, self.num_walks, burn_steps, rng, seed_node=self.seed_node
        )
        degree_estimate = estimate_average_degree(
            oracle, self.num_walks, rng, positions=positions
        )
        degree_used = degree_estimate if self.use_estimated_degree else self.topology.average_degree
        result = katzir_size_estimate(
            oracle,
            self.num_walks,
            rng,
            average_degree=degree_used,
            positions=positions,
        )
        true_size = self.topology.num_nodes
        relative_error = (
            float("inf")
            if not np.isfinite(result.size_estimate)
            else abs(result.size_estimate - true_size) / true_size
        )
        return PipelineReport(
            size_estimate=result.size_estimate,
            true_size=true_size,
            relative_error=relative_error,
            average_degree_estimate=degree_estimate,
            true_average_degree=self.topology.average_degree,
            num_walks=self.num_walks,
            burn_in_steps=burn_steps,
            estimation_rounds=0,
            link_queries=oracle.query_count,
            details={"weighted_collision_rate": result.weighted_collision_rate},
        )


def median_amplified_estimate(
    pipeline: NetworkSizeEstimationPipeline,
    repetitions: int = 5,
    seed: SeedLike = None,
) -> PipelineReport:
    """Repeat the pipeline and return the median estimate (boosting trick).

    The Chebyshev-based guarantee of Theorem 27 has a linear dependence on
    ``1/δ``; the paper notes this can be reduced to logarithmic by running
    ``log(1/δ)`` independent repetitions with failure probability 1/3 each
    and taking the median. Query counts of all repetitions are summed.
    """
    require_integer(repetitions, "repetitions", minimum=1)
    rngs = spawn_generators(seed, repetitions)
    reports = [pipeline.run(rng) for rng in rngs]
    finite = [r.size_estimate for r in reports if np.isfinite(r.size_estimate)]
    if finite:
        median_value = float(np.median(finite))
    else:
        median_value = float("inf")
    total_queries = sum(r.link_queries for r in reports)
    true_size = pipeline.topology.num_nodes
    relative_error = (
        float("inf") if not np.isfinite(median_value) else abs(median_value - true_size) / true_size
    )
    return PipelineReport(
        size_estimate=median_value,
        true_size=true_size,
        relative_error=relative_error,
        average_degree_estimate=float(np.median([r.average_degree_estimate for r in reports])),
        true_average_degree=pipeline.topology.average_degree,
        num_walks=pipeline.num_walks,
        burn_in_steps=reports[0].burn_in_steps,
        estimation_rounds=pipeline.rounds,
        link_queries=total_queries,
        details={"repetitions": repetitions, "individual_estimates": [r.size_estimate for r in reports]},
    )


__all__ = [
    "PipelineReport",
    "NetworkSizeEstimationPipeline",
    "median_amplified_estimate",
]
