"""Centralised collision counting from recorded walk paths.

Section 5.1.1 notes that ``count(·)`` in Algorithm 2 can be implemented by
"simulating the random walks in parallel, recording their paths, and then
performing centralized post-processing to count collisions" — the natural
implementation when the walks are distributed over many crawler machines and
only their visit logs are aggregated. Section 6.3.3 further asks whether
storing the full paths (and counting *path intersections* rather than
same-round collisions) buys additional accuracy. This module implements both
primitives so those questions can be explored:

* :func:`same_round_collision_counts` — exactly the quantity Algorithm 2
  accumulates, recovered after the fact from the path matrix.
* :func:`path_intersection_counts` — the "beyond encounter rate" statistic:
  pairs of walks that ever visit a common node, regardless of timing.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer
from repro.walks.single import walk_paths


def record_walk_paths(
    topology: NetworkXTopology,
    num_walks: int,
    rounds: int,
    seed: SeedLike = None,
    *,
    starts: np.ndarray | None = None,
) -> np.ndarray:
    """Simulate ``num_walks`` walks for ``rounds`` rounds and return their paths.

    Returns an array of shape ``(num_walks, rounds + 1)``; column 0 holds the
    starting positions (stationary samples by default).
    """
    require_integer(num_walks, "num_walks", minimum=1)
    require_integer(rounds, "rounds", minimum=1)
    rng = as_generator(seed)
    if starts is None:
        starts = topology.stationary_nodes(num_walks, rng)
    else:
        starts = np.asarray(starts, dtype=np.int64)
        if starts.shape != (num_walks,):
            raise ValueError(f"starts must have shape ({num_walks},), got {starts.shape}")
    return walk_paths(topology, starts, rounds, rng)


def same_round_collision_counts(
    paths: np.ndarray, degrees: np.ndarray | None = None
) -> np.ndarray:
    """Per-walk (degree-weighted) same-round collision counts from recorded paths.

    Parameters
    ----------
    paths:
        Array of shape ``(num_walks, rounds + 1)`` as returned by
        :func:`record_walk_paths`. Column 0 (the starting configuration) is
        not counted, matching Algorithm 2 which counts after each step.
    degrees:
        Optional per-node degree array for the ``1/deg`` weighting of
        Algorithm 2. Without it, collisions are counted unweighted (the
        regular-graph case).
    """
    paths = np.asarray(paths)
    if paths.ndim != 2 or paths.shape[1] < 2:
        raise ValueError("paths must be a (num_walks, rounds + 1) array with at least one round")
    num_walks, _ = paths.shape
    totals = np.zeros(num_walks, dtype=np.float64)
    for round_index in range(1, paths.shape[1]):
        column = paths[:, round_index]
        _, inverse, counts = np.unique(column, return_inverse=True, return_counts=True)
        collisions = counts[inverse] - 1
        if degrees is not None:
            weights = 1.0 / np.asarray(degrees)[column]
            totals += collisions * weights
        else:
            totals += collisions
    return totals


def path_intersection_counts(paths: np.ndarray) -> np.ndarray:
    """For each walk, the number of *other* walks whose path shares any node with it.

    This is the "store the full t-step path and count intersections"
    statistic of Section 6.3.3. It is far more sensitive than same-round
    collisions (two walks can intersect without ever being at the same place
    at the same time), at the cost of having to store and join the paths.
    """
    paths = np.asarray(paths)
    if paths.ndim != 2:
        raise ValueError("paths must be a 2-D array")
    num_walks = paths.shape[0]
    node_sets = [set(np.unique(row).tolist()) for row in paths]
    counts = np.zeros(num_walks, dtype=np.int64)
    for i in range(num_walks):
        for j in range(i + 1, num_walks):
            if node_sets[i] & node_sets[j]:
                counts[i] += 1
                counts[j] += 1
    return counts


def size_estimate_from_paths(
    paths: np.ndarray,
    average_degree: float,
    degrees: np.ndarray | None = None,
) -> float:
    """Recompute the Algorithm 2 size estimate from recorded paths.

    Equivalent to :func:`repro.netsize.estimate_network_size` run on the same
    walks — useful when the walks were simulated elsewhere (e.g. by separate
    crawler processes) and only their visit logs are available.
    """
    if average_degree <= 0:
        raise ValueError(f"average_degree must be positive, got {average_degree}")
    paths = np.asarray(paths)
    num_walks = paths.shape[0]
    rounds = paths.shape[1] - 1
    if num_walks < 2:
        raise ValueError("need at least two walks to count collisions")
    totals = same_round_collision_counts(paths, degrees)
    rate = average_degree * float(totals.sum()) / (num_walks * (num_walks - 1) * rounds)
    return float("inf") if rate == 0.0 else 1.0 / rate


__all__ = [
    "record_walk_paths",
    "same_round_collision_counts",
    "path_intersection_counts",
    "size_estimate_from_paths",
]
