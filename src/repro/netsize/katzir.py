"""The Katzir–Liberty–Somekh–Cosma [KLSC14] baseline size estimator.

The baseline the paper compares against in Section 5.1.5: run ``n`` walks to
(approximate) stationarity, *halt them immediately*, and count the
degree-weighted collisions of that single final configuration. Formally the
estimator is the ``t = 1`` special case of Algorithm 2, so it needs a much
larger number of walks — and therefore more burn-in link queries on slowly
mixing graphs — to observe enough collisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsize.oracle import GraphAccessOracle
from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


@dataclass(frozen=True)
class KatzirEstimate:
    """Result of the [KLSC14] single-shot collision estimator."""

    size_estimate: float
    weighted_collision_rate: float
    num_walks: int
    average_degree_used: float


def katzir_size_estimate(
    source: GraphAccessOracle | NetworkXTopology,
    num_walks: int,
    seed: SeedLike = None,
    *,
    average_degree: float | None = None,
    positions: np.ndarray | None = None,
) -> KatzirEstimate:
    """Estimate ``|V|`` from the collisions of one stationary configuration.

    Parameters
    ----------
    source:
        Oracle or topology (as in :func:`~repro.netsize.estimate_network_size`).
    num_walks:
        Number of walks ``n``.
    average_degree:
        Value of ``deg`` for the formula; defaults to the true average degree.
    positions:
        Walker positions to evaluate; default draws them from the exact
        stationary distribution (the idealised setting). Pass burned-in
        positions for the end-to-end comparison.
    """
    require_integer(num_walks, "num_walks", minimum=2)
    rng = as_generator(seed)
    if isinstance(source, GraphAccessOracle):
        topology = source.topology
    else:
        topology = source

    if positions is None:
        final_positions = topology.stationary_nodes(num_walks, rng)
    else:
        final_positions = np.asarray(positions, dtype=np.int64)
        if final_positions.shape != (num_walks,):
            raise ValueError(
                f"positions must have shape ({num_walks},), got {final_positions.shape}"
            )

    degree_for_formula = (
        float(average_degree) if average_degree is not None else topology.average_degree
    )

    # Weighted collision count of the single round.
    from repro.core.encounter import collision_counts

    counts = collision_counts(final_positions).astype(np.float64)
    degrees = np.asarray(topology.degree_of(final_positions), dtype=np.float64)
    total = float((counts / degrees).sum())
    rate = degree_for_formula * total / (num_walks * (num_walks - 1))
    estimate = float("inf") if rate == 0.0 else 1.0 / rate
    return KatzirEstimate(
        size_estimate=estimate,
        weighted_collision_rate=rate,
        num_walks=num_walks,
        average_degree_used=degree_for_formula,
    )


__all__ = ["KatzirEstimate", "katzir_size_estimate"]
