"""Link-query oracle over a graph.

The network-size application assumes the graph is accessed only through
neighbourhood lookups ("link queries"), and the paper's cost model counts
those queries (Section 5.1.1, 5.1.5). :class:`GraphAccessOracle` wraps a
:class:`~repro.topology.NetworkXTopology` and charges one query per
neighbourhood lookup — which in the walk simulation means one query per
walker per step (the walker must fetch its current node's neighbour list to
pick the next hop).
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import NetworkXTopology


class GraphAccessOracle:
    """Query-counting access layer over a NetworkX-backed topology.

    Parameters
    ----------
    topology:
        The hidden graph. Only its adjacency structure is consulted, and
        every consultation is metered.
    """

    def __init__(self, topology: NetworkXTopology):
        self.topology = topology
        self._query_count = 0
        self._queried_nodes: set[int] = set()

    # ------------------------------------------------------------------
    # Metering
    # ------------------------------------------------------------------
    @property
    def query_count(self) -> int:
        """Total number of link queries charged so far."""
        return self._query_count

    @property
    def distinct_nodes_queried(self) -> int:
        """Number of distinct nodes whose neighbourhood has been fetched."""
        return len(self._queried_nodes)

    def reset(self) -> None:
        """Zero the query counters (e.g. between pipeline stages)."""
        self._query_count = 0
        self._queried_nodes.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour list of ``node`` — one link query."""
        self._query_count += 1
        self._queried_nodes.add(int(node))
        return self.topology.neighbors(int(node))

    def degree(self, node: int) -> int:
        """Degree of ``node``; charged as one link query (it requires the list)."""
        return int(len(self.neighbors(node)))

    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        """Degrees of many nodes; one query per node."""
        nodes = np.asarray(nodes, dtype=np.int64)
        self._query_count += int(nodes.size)
        self._queried_nodes.update(int(v) for v in nodes.ravel())
        return np.asarray(self.topology.degree_of(nodes), dtype=np.int64)

    def step_walkers(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance every walker one step; one link query per walker.

        The underlying vectorised step is used for speed, but the cost model
        is identical to fetching each walker's neighbour list.
        """
        positions = np.asarray(positions, dtype=np.int64)
        self._query_count += int(positions.size)
        self._queried_nodes.update(int(v) for v in positions.ravel())
        return self.topology.step_many(positions, rng)

    # ------------------------------------------------------------------
    # Ground truth (NOT available to the estimation algorithms; exposed for
    # experiment reporting only)
    # ------------------------------------------------------------------
    @property
    def true_size(self) -> int:
        return self.topology.num_nodes

    @property
    def true_average_degree(self) -> float:
        return self.topology.average_degree

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphAccessOracle(nodes={self.topology.num_nodes}, "
            f"queries={self._query_count})"
        )


__all__ = ["GraphAccessOracle"]
