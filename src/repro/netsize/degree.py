"""Algorithm 3 — average degree estimation by inverse-degree sampling.

Walks distributed according to the stationary distribution visit a node with
probability proportional to its degree, so the average of ``1/deg(w_j)``
over stationary samples is an unbiased estimate of ``|V| / (2|E|) = 1/deg``.
Theorem 31 shows ``n = Θ(deg / (deg_min · ε² · δ))`` samples suffice for a
``(1 ± ε)`` estimate with probability ``1 - δ``.
"""

from __future__ import annotations

import numpy as np

from repro.netsize.oracle import GraphAccessOracle
from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


def _stationary_positions(
    topology: NetworkXTopology, count: int, rng: np.random.Generator
) -> np.ndarray:
    return topology.stationary_nodes(count, rng)


def estimate_inverse_average_degree(
    source: GraphAccessOracle | NetworkXTopology,
    num_samples: int,
    seed: SeedLike = None,
    *,
    positions: np.ndarray | None = None,
) -> float:
    """Algorithm 3: return ``D = (1/n) Σ 1/deg(w_j)`` ≈ ``1/deg``.

    Parameters
    ----------
    source:
        Either a query-counting oracle or a bare topology. With an oracle,
        degree lookups are charged as link queries.
    num_samples:
        Number of stationary samples ``n`` (ignored if ``positions`` given).
    positions:
        Optional pre-drawn walker positions (e.g. the positions after
        burn-in); when provided they are used directly, which is how the
        full pipeline reuses its burned-in walks.
    """
    require_integer(num_samples, "num_samples", minimum=1)
    rng = as_generator(seed)
    if isinstance(source, GraphAccessOracle):
        topology = source.topology
        oracle: GraphAccessOracle | None = source
    else:
        topology = source
        oracle = None

    if positions is None:
        samples = _stationary_positions(topology, num_samples, rng)
    else:
        samples = np.asarray(positions, dtype=np.int64)
        if samples.size == 0:
            raise ValueError("positions must be non-empty")

    if oracle is not None:
        degrees = oracle.degrees_of(samples)
    else:
        degrees = np.asarray(topology.degree_of(samples), dtype=np.int64)
    return float(np.mean(1.0 / degrees))


def estimate_average_degree(
    source: GraphAccessOracle | NetworkXTopology,
    num_samples: int,
    seed: SeedLike = None,
    *,
    positions: np.ndarray | None = None,
) -> float:
    """Estimate ``deg = 2|E|/|V|`` as the reciprocal of Algorithm 3's output."""
    inverse = estimate_inverse_average_degree(
        source, num_samples, seed, positions=positions
    )
    if inverse <= 0:
        raise RuntimeError("inverse average degree estimate is non-positive")
    return 1.0 / inverse


__all__ = ["estimate_inverse_average_degree", "estimate_average_degree"]
