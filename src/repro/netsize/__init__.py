"""Random-walk-based network size estimation (Section 5.1 of the paper).

The application: estimate ``|V|`` of a graph that can only be explored
through neighbourhood (link) queries, by running ``n`` random walks for
``t`` rounds and counting degree-weighted collisions (Algorithm 2), after a
burn-in phase that brings the walks close to the stationary distribution.
The average degree needed by Algorithm 2 is itself estimated by inverse
degree sampling (Algorithm 3). The Katzir et al. [KLSC14] estimator (halt
after burn-in, count collisions once) is implemented as the baseline the
paper compares against in Section 5.1.5.
"""

from repro.netsize.oracle import GraphAccessOracle
from repro.netsize.degree import estimate_average_degree, estimate_inverse_average_degree
from repro.netsize.size_estimator import NetworkSizeEstimate, estimate_network_size
from repro.netsize.burn_in import burn_in_walks, required_burn_in_steps
from repro.netsize.katzir import katzir_size_estimate
from repro.netsize.pipeline import (
    NetworkSizeEstimationPipeline,
    PipelineReport,
    median_amplified_estimate,
)
from repro.netsize.generators import available_generators, make_graph
from repro.netsize.path_collisions import (
    path_intersection_counts,
    record_walk_paths,
    same_round_collision_counts,
    size_estimate_from_paths,
)

__all__ = [
    "available_generators",
    "make_graph",
    "record_walk_paths",
    "same_round_collision_counts",
    "path_intersection_counts",
    "size_estimate_from_paths",
    "GraphAccessOracle",
    "estimate_average_degree",
    "estimate_inverse_average_degree",
    "NetworkSizeEstimate",
    "estimate_network_size",
    "burn_in_walks",
    "required_burn_in_steps",
    "katzir_size_estimate",
    "NetworkSizeEstimationPipeline",
    "PipelineReport",
    "median_amplified_estimate",
]
