"""Algorithm 2 — random-walk network size estimation.

``n`` walks, assumed (approximately) stationary, are run for ``t`` rounds.
In each round each walk adds ``count(w_j) / deg(w_j)`` to its counter, where
``count(w_j)`` is the number of *other* walks at its node — the degree
weighting corrects for the stationary distribution favouring high-degree
nodes. The total weighted collision count ``C = deg·Σc_j / (n(n-1)t)`` has
expectation ``1/|V|`` (Lemma 28), so ``Ã = 1/C`` estimates the network size;
Theorem 27 gives the ``n²t`` budget required for a ``(1 ± ε)`` estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encounter import collision_counts
from repro.netsize.oracle import GraphAccessOracle
from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


@dataclass(frozen=True)
class NetworkSizeEstimate:
    """Result of one run of Algorithm 2.

    Attributes
    ----------
    size_estimate:
        The estimate ``Ã = 1/C`` of ``|V|`` (``inf`` if no collisions at all
        were observed — the caller should then increase ``n`` or ``t``).
    weighted_collision_rate:
        The statistic ``C`` itself.
    total_weighted_collisions:
        ``Σ_j c_j`` before normalisation.
    num_walks / rounds:
        The budget actually used.
    average_degree_used:
        The value of ``deg`` plugged into the formula (estimated or exact).
    link_queries:
        Link queries charged during this stage (0 when run directly against
        a topology rather than an oracle).
    """

    size_estimate: float
    weighted_collision_rate: float
    total_weighted_collisions: float
    num_walks: int
    rounds: int
    average_degree_used: float
    link_queries: int


def estimate_network_size(
    source: GraphAccessOracle | NetworkXTopology,
    num_walks: int,
    rounds: int,
    seed: SeedLike = None,
    *,
    average_degree: float | None = None,
    starts: np.ndarray | None = None,
) -> NetworkSizeEstimate:
    """Run Algorithm 2.

    Parameters
    ----------
    source:
        Query-counting oracle (queries are metered) or a bare topology
        (the idealised analysis setting of Section 5.1.2).
    num_walks:
        Number of random walks ``n`` (>= 2 — collisions need pairs).
    rounds:
        Number of post-burn-in rounds ``t`` to run and count collisions over.
    average_degree:
        The value of ``deg`` to use; defaults to the true average degree
        (idealised setting). The pipeline passes an Algorithm 3 estimate.
    starts:
        Starting positions of the walks. Default: independent samples from
        the exact stationary distribution (idealised setting); the pipeline
        passes the positions produced by the burn-in phase.
    """
    require_integer(num_walks, "num_walks", minimum=2)
    require_integer(rounds, "rounds", minimum=1)
    rng = as_generator(seed)

    if isinstance(source, GraphAccessOracle):
        topology = source.topology
        oracle: GraphAccessOracle | None = source
    else:
        topology = source
        oracle = None

    if starts is None:
        positions = topology.stationary_nodes(num_walks, rng)
    else:
        positions = np.asarray(starts, dtype=np.int64).copy()
        if positions.shape != (num_walks,):
            raise ValueError(
                f"starts must have shape ({num_walks},), got {positions.shape}"
            )
    degree_for_formula = (
        float(average_degree) if average_degree is not None else topology.average_degree
    )
    if degree_for_formula <= 0:
        raise ValueError(f"average_degree must be positive, got {degree_for_formula}")

    queries_before = oracle.query_count if oracle is not None else 0
    counters = np.zeros(num_walks, dtype=np.float64)
    for _ in range(rounds):
        if oracle is not None:
            positions = oracle.step_walkers(positions, rng)
        else:
            positions = topology.step_many(positions, rng)
        counts = collision_counts(positions).astype(np.float64)
        degrees = np.asarray(topology.degree_of(positions), dtype=np.float64)
        counters += counts / degrees
    queries_after = oracle.query_count if oracle is not None else 0

    total = float(counters.sum())
    rate = degree_for_formula * total / (num_walks * (num_walks - 1) * rounds)
    size_estimate = float("inf") if rate == 0.0 else 1.0 / rate
    return NetworkSizeEstimate(
        size_estimate=size_estimate,
        weighted_collision_rate=rate,
        total_weighted_collisions=total,
        num_walks=num_walks,
        rounds=rounds,
        average_degree_used=degree_for_formula,
        link_queries=queries_after - queries_before,
    )


__all__ = ["NetworkSizeEstimate", "estimate_network_size"]
