"""Named synthetic graph generators for the network-size experiments.

Section 5.1 motivates the size-estimation algorithm with social networks,
which are not available offline; these generators build the synthetic stand-
ins used throughout the experiment suite (see the substitution table in
DESIGN.md). Each generator returns a :class:`NetworkXTopology` ready for the
oracle/pipeline machinery, and :func:`available_generators` exposes the menu
so experiments and examples can iterate over graph families by name.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx

from repro.topology.graph import NetworkXTopology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


def _seed_int(seed: SeedLike) -> int:
    return int(as_generator(seed).integers(0, 2**31 - 1))


def expander_graph(size: int, degree: int = 4, seed: SeedLike = None) -> NetworkXTopology:
    """A random ``degree``-regular graph (an expander with high probability)."""
    require_integer(size, "size", minimum=4)
    require_integer(degree, "degree", minimum=3)
    graph = nx.random_regular_graph(degree, size, seed=_seed_int(seed))
    return NetworkXTopology(graph, name="expander")


def powerlaw_cluster_graph(size: int, edges_per_node: int = 3, triangle_probability: float = 0.1, seed: SeedLike = None) -> NetworkXTopology:
    """Holme–Kim power-law graph with triadic closure (social-network-like)."""
    require_integer(size, "size", minimum=5)
    graph = nx.powerlaw_cluster_graph(size, edges_per_node, triangle_probability, seed=_seed_int(seed))
    return NetworkXTopology(graph, name="powerlaw_cluster")


def barabasi_albert_graph(size: int, edges_per_node: int = 3, seed: SeedLike = None) -> NetworkXTopology:
    """Barabási–Albert preferential-attachment graph (heavy-tailed degrees)."""
    require_integer(size, "size", minimum=5)
    graph = nx.barabasi_albert_graph(size, edges_per_node, seed=_seed_int(seed))
    return NetworkXTopology(graph, name="barabasi_albert")


def small_world_graph(size: int, nearest_neighbors: int = 6, rewire_probability: float = 0.1, seed: SeedLike = None) -> NetworkXTopology:
    """Watts–Strogatz small-world graph (slow global mixing, decent local mixing)."""
    require_integer(size, "size", minimum=10)
    graph = nx.connected_watts_strogatz_graph(
        size, nearest_neighbors, rewire_probability, seed=_seed_int(seed)
    )
    return NetworkXTopology(graph, name="small_world")


def torus_3d_graph(side: int) -> NetworkXTopology:
    """The 3-D torus as a NetworkX graph — the paper's worked example in Section 5.1.5."""
    require_integer(side, "side", minimum=2)
    graph = nx.grid_graph(dim=[side, side, side], periodic=True)
    return NetworkXTopology(nx.convert_node_labels_to_integers(graph), name="torus_3d_graph")


GeneratorFn = Callable[..., NetworkXTopology]

_GENERATORS: dict[str, GeneratorFn] = {
    "expander": expander_graph,
    "powerlaw_cluster": powerlaw_cluster_graph,
    "barabasi_albert": barabasi_albert_graph,
    "small_world": small_world_graph,
    "torus_3d_graph": torus_3d_graph,
}


def available_generators() -> dict[str, GeneratorFn]:
    """Mapping from generator name to generator function."""
    return dict(_GENERATORS)


def make_graph(name: str, **kwargs) -> NetworkXTopology:
    """Build a graph family by name, e.g. ``make_graph("expander", size=500)``."""
    if name not in _GENERATORS:
        raise KeyError(f"unknown graph family {name!r}; known: {sorted(_GENERATORS)}")
    return _GENERATORS[name](**kwargs)


__all__ = [
    "expander_graph",
    "powerlaw_cluster_graph",
    "barabasi_albert_graph",
    "small_world_graph",
    "torus_3d_graph",
    "available_generators",
    "make_graph",
]
