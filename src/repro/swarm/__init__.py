"""Robot-swarm density estimation (Section 5.2) and model ablations (Section 6.1).

* :mod:`repro.swarm.swarm` — a :class:`RobotSwarm` facade over the core
  estimators: overall density, per-task-group densities, relative task
  frequencies, and quorum detection for a swarm on a torus workspace.
* :mod:`repro.swarm.noise` — noisy collision detection models (missed and
  spurious detections) plus the bias correction for them.
* :mod:`repro.swarm.placement` — initial placement distributions, including
  the clustered placements that break the uniform-placement assumption.
* :mod:`repro.swarm.dispersion` — a density-guided dispersion routine
  illustrating the coverage application sketched in Section 6.3.4.
"""

from repro.swarm.swarm import RobotSwarm, SwarmDensityReport
from repro.swarm.noise import NoisyCollisionModel, correct_noisy_estimate
from repro.swarm.placement import (
    clustered_placement,
    gaussian_blob_placement,
    uniform_placement,
)
from repro.swarm.dispersion import DispersionResult, disperse_swarm, occupancy_imbalance
from repro.swarm.collective import CollectiveDecision, MajorityQuorumVote

__all__ = [
    "CollectiveDecision",
    "MajorityQuorumVote",
    "RobotSwarm",
    "SwarmDensityReport",
    "NoisyCollisionModel",
    "correct_noisy_estimate",
    "uniform_placement",
    "clustered_placement",
    "gaussian_blob_placement",
    "DispersionResult",
    "disperse_swarm",
    "occupancy_imbalance",
]
