"""Density-guided swarm dispersion (the coverage sketch of Section 6.3.4).

The paper suggests using density estimation to detect over-crowded regions
and spread robots out. This module implements a minimal version of that
idea: the workspace is divided into coarse cells; in each epoch every robot
estimates the density via encounter rates for a few rounds, and robots whose
estimate exceeds the swarm-wide target take additional "spread" steps. The
result records how the occupancy imbalance across cells evolves, which is
the quantity a coverage application cares about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encounter import collision_counts
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


def occupancy_imbalance(topology: Torus2D, positions: np.ndarray, cells_per_side: int = 4) -> float:
    """Coefficient of variation of robot counts over coarse cells.

    0 means perfectly even coverage; larger values mean more clustering.
    """
    require_integer(cells_per_side, "cells_per_side", minimum=1)
    x, y = topology.decode(np.asarray(positions, dtype=np.int64))
    cell_size = max(1, topology.side // cells_per_side)
    cell_x = np.minimum(x // cell_size, cells_per_side - 1)
    cell_y = np.minimum(y // cell_size, cells_per_side - 1)
    cell_index = cell_x * cells_per_side + cell_y
    counts = np.bincount(cell_index, minlength=cells_per_side**2).astype(np.float64)
    mean = counts.mean()
    if mean == 0:
        return 0.0
    return float(counts.std() / mean)


@dataclass(frozen=True)
class DispersionResult:
    """Occupancy imbalance before, during, and after dispersion."""

    imbalance_history: np.ndarray
    final_positions: np.ndarray
    epochs: int
    rounds_per_epoch: int

    @property
    def initial_imbalance(self) -> float:
        return float(self.imbalance_history[0])

    @property
    def final_imbalance(self) -> float:
        return float(self.imbalance_history[-1])


def disperse_swarm(
    topology: Torus2D,
    positions: np.ndarray,
    epochs: int = 10,
    rounds_per_epoch: int = 20,
    spread_steps: int = 10,
    seed: SeedLike = None,
    *,
    cells_per_side: int = 4,
) -> DispersionResult:
    """Iteratively spread a swarm using encounter-rate density estimates.

    In each epoch every robot (1) random-walks ``rounds_per_epoch`` rounds
    while counting collisions, (2) compares its encounter rate with the
    global target density ``(n-1)/A``, and (3) if it is above target, takes
    ``spread_steps`` additional random steps to leave the crowded region.
    Robots know nothing beyond their own collision counts, mirroring the
    communication model of the paper.
    """
    require_integer(epochs, "epochs", minimum=1)
    require_integer(rounds_per_epoch, "rounds_per_epoch", minimum=1)
    require_integer(spread_steps, "spread_steps", minimum=0)
    rng = as_generator(seed)
    positions = np.asarray(positions, dtype=np.int64).copy()
    topology.validate_nodes(positions)
    num_robots = positions.shape[0]
    target_density = (num_robots - 1) / topology.num_nodes

    history = np.zeros(epochs + 1, dtype=np.float64)
    history[0] = occupancy_imbalance(topology, positions, cells_per_side)

    for epoch in range(1, epochs + 1):
        totals = np.zeros(num_robots, dtype=np.float64)
        for _ in range(rounds_per_epoch):
            positions = topology.step_many(positions, rng)
            totals += collision_counts(positions)
        estimates = totals / rounds_per_epoch
        crowded = estimates > target_density
        for _ in range(spread_steps):
            stepped = topology.step_many(positions, rng)
            positions = np.where(crowded, stepped, positions)
        history[epoch] = occupancy_imbalance(topology, positions, cells_per_side)

    return DispersionResult(
        imbalance_history=history,
        final_positions=positions,
        epochs=epochs,
        rounds_per_epoch=rounds_per_epoch,
    )


__all__ = ["DispersionResult", "disperse_swarm", "occupancy_imbalance"]
