"""Robot swarm facade over the density-estimation primitives (Section 5.2).

A :class:`RobotSwarm` is a population of robots on a torus workspace. Each
robot may belong to task groups (arbitrary named boolean properties); the
swarm can estimate the overall density, the density of each task group, the
relative frequency of a group (``f_P = d_P / d``), and run quorum detection —
the operations the paper lists for both ant colonies and robot swarms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.core.encounter import collision_counts, marked_collision_counts
from repro.core.results import DensityEstimationRun
from repro.core.simulation import CollisionObservationModel, PlacementFn, uniform_placement
from repro.swarm.noise import NoisyCollisionModel, correct_noisy_estimate
from repro.topology.base import Topology
from repro.topology.torus import Torus2D
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer, require_probability


@dataclass(frozen=True)
class SwarmDensityReport:
    """Per-robot estimates of overall and per-group densities."""

    density_estimates: np.ndarray
    group_density_estimates: dict[str, np.ndarray]
    true_density: float
    true_group_densities: dict[str, float]
    rounds: int

    def frequency_estimates(self, group: str) -> np.ndarray:
        """Per-robot relative frequency estimates ``d̃_P / d̃`` for ``group``."""
        if group not in self.group_density_estimates:
            raise KeyError(f"unknown group {group!r}")
        overall = self.density_estimates
        marked = self.group_density_estimates[group]
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(overall > 0, marked / np.where(overall > 0, overall, 1.0), 0.0)

    def true_frequency(self, group: str) -> float:
        if self.true_density == 0:
            return 0.0
        return self.true_group_densities[group] / self.true_density


@dataclass
class RobotSwarm:
    """A swarm of robots random-walking a torus workspace.

    Parameters
    ----------
    workspace:
        The torus (or any regular topology) the robots move on.
    num_robots:
        Total number of robots.
    groups:
        Optional mapping from group name to either a membership probability
        (each robot joins independently) or an explicit boolean array of
        length ``num_robots``.
    placement:
        Initial placement function; defaults to uniform placement.
    collision_model:
        Optional noisy collision detection model applied to all counting.
    seed:
        Seed controlling group assignment (movement randomness is supplied
        per call).
    """

    workspace: Topology
    num_robots: int
    groups: Mapping[str, float | np.ndarray] = field(default_factory=dict)
    placement: Optional[PlacementFn] = None
    collision_model: Optional[CollisionObservationModel] = None
    seed: SeedLike = None

    def __post_init__(self) -> None:
        require_integer(self.num_robots, "num_robots", minimum=1)
        rng = as_generator(self.seed)
        memberships: dict[str, np.ndarray] = {}
        for name, spec in self.groups.items():
            if isinstance(spec, np.ndarray):
                membership = np.asarray(spec, dtype=bool)
                if membership.shape != (self.num_robots,):
                    raise ValueError(
                        f"group {name!r} membership must have shape ({self.num_robots},)"
                    )
            else:
                require_probability(float(spec), f"groups[{name!r}]")
                membership = rng.random(self.num_robots) < float(spec)
            memberships[name] = membership
        self._memberships = memberships

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    @property
    def true_density(self) -> float:
        """Overall density ``d = (num_robots - 1) / A``."""
        return (self.num_robots - 1) / self.workspace.num_nodes

    def group_membership(self, group: str) -> np.ndarray:
        """Boolean membership vector of ``group``."""
        return self._memberships[group].copy()

    def true_group_density(self, group: str) -> float:
        """Density of robots in ``group`` (members per node)."""
        return float(np.count_nonzero(self._memberships[group])) / self.workspace.num_nodes

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_densities(self, rounds: int, seed: SeedLike = None) -> SwarmDensityReport:
        """Run Algorithm 1 for all robots, tracking every group separately.

        A single shared simulation produces, per robot, the overall
        encounter rate and one marked encounter rate per task group.
        """
        require_integer(rounds, "rounds", minimum=1)
        rng = as_generator(seed)
        placement = self.placement or uniform_placement
        positions = np.asarray(
            placement(self.workspace, self.num_robots, rng), dtype=np.int64
        )
        self.workspace.validate_nodes(positions)

        totals = np.zeros(self.num_robots, dtype=np.float64)
        group_totals = {
            name: np.zeros(self.num_robots, dtype=np.float64) for name in self._memberships
        }
        for _ in range(rounds):
            positions = self.workspace.step_many(positions, rng)
            true_counts = collision_counts(positions)
            if self.collision_model is not None:
                observed = np.asarray(
                    self.collision_model.observe(true_counts, rng), dtype=np.float64
                )
            else:
                observed = true_counts.astype(np.float64)
            totals += observed
            for name, membership in self._memberships.items():
                group_totals[name] += marked_collision_counts(positions, membership).astype(
                    np.float64
                )

        return SwarmDensityReport(
            density_estimates=totals / rounds,
            group_density_estimates={
                name: counts / rounds for name, counts in group_totals.items()
            },
            true_density=self.true_density,
            true_group_densities={
                name: self.true_group_density(name) for name in self._memberships
            },
            rounds=rounds,
        )

    def estimate_density(self, rounds: int, seed: SeedLike = None) -> DensityEstimationRun:
        """Overall density only, wrapped in the standard run container."""
        report = self.estimate_densities(rounds, seed)
        estimates = report.density_estimates
        if isinstance(self.collision_model, NoisyCollisionModel) and not self.collision_model.is_noiseless:
            estimates = np.asarray(correct_noisy_estimate(estimates, self.collision_model))
        return DensityEstimationRun(
            estimates=estimates,
            collision_totals=report.density_estimates * rounds,
            true_density=self.true_density,
            rounds=rounds,
            num_agents=self.num_robots,
            num_nodes=self.workspace.num_nodes,
            topology_name=self.workspace.name,
            algorithm="robot_swarm",
        )

    def detect_quorum(
        self, threshold: float, rounds: int, seed: SeedLike = None
    ) -> np.ndarray:
        """Boolean per-robot decisions: is the density above ``threshold``?"""
        run = self.estimate_density(rounds, seed)
        return run.estimates >= threshold


def make_grid_swarm(
    side: int,
    num_robots: int,
    groups: Mapping[str, float] | None = None,
    seed: SeedLike = None,
) -> RobotSwarm:
    """Convenience constructor: a swarm on a ``side x side`` torus workspace."""
    return RobotSwarm(
        workspace=Torus2D(side),
        num_robots=num_robots,
        groups=dict(groups or {}),
        seed=seed,
    )


__all__ = ["RobotSwarm", "SwarmDensityReport", "make_grid_swarm"]
