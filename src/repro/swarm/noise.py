"""Noisy collision detection (the robustness extension of Section 6.1).

The paper suggests modelling imperfect sensing: each true collision is
detected only with some probability, and spurious collisions may occasionally
be registered. :class:`NoisyCollisionModel` implements exactly that
observation model; because both effects act linearly on the expectation,
the resulting bias can be removed in closed form, which
:func:`correct_noisy_estimate` does:

    E[observed per round] = (1 - miss) · d + spurious_rate
    ⇒  d = (E[observed] - spurious_rate) / (1 - miss).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_non_negative, require_probability


@dataclass(frozen=True)
class NoisyCollisionModel:
    """Observation model: miss real collisions, add spurious ones.

    Parameters
    ----------
    miss_probability:
        Each true collision is independently *not* detected with this
        probability.
    spurious_rate:
        Expected number of spurious collisions registered per agent per
        round (spurious detections are Poisson distributed).
    """

    miss_probability: float = 0.0
    spurious_rate: float = 0.0

    #: Both noise effects act elementwise on the count array, so the batched
    #: engine may apply this model to ``(R, n)`` replicate matrices directly.
    batch_safe = True

    def __post_init__(self) -> None:
        require_probability(self.miss_probability, "miss_probability")
        require_non_negative(self.spurious_rate, "spurious_rate")

    def observe(self, true_counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply the noise model to a round's true collision counts."""
        true_counts = np.asarray(true_counts, dtype=np.int64)
        observed = true_counts.astype(np.float64)
        if self.miss_probability > 0.0:
            detected = rng.binomial(true_counts, 1.0 - self.miss_probability)
            observed = detected.astype(np.float64)
        if self.spurious_rate > 0.0:
            observed = observed + rng.poisson(self.spurious_rate, size=true_counts.shape)
        return observed

    @property
    def is_noiseless(self) -> bool:
        return self.miss_probability == 0.0 and self.spurious_rate == 0.0


def correct_noisy_estimate(
    estimates: np.ndarray | float,
    model: NoisyCollisionModel,
) -> np.ndarray | float:
    """Remove the known bias of a noisy-observation density estimate.

    Given raw encounter-rate estimates produced under ``model``, return the
    de-biased density estimates. Values are clipped at zero (a raw estimate
    below the spurious rate carries no evidence of positive density).
    """
    if model.miss_probability >= 1.0:
        raise ValueError("miss_probability = 1 destroys all signal; cannot correct")
    corrected = (np.asarray(estimates, dtype=np.float64) - model.spurious_rate) / (
        1.0 - model.miss_probability
    )
    corrected = np.maximum(corrected, 0.0)
    if np.isscalar(estimates):
        return float(corrected)
    return corrected


__all__ = ["NoisyCollisionModel", "correct_noisy_estimate"]
