"""Initial placement distributions for agents on the torus.

The paper's analysis assumes agents start at independent uniformly random
nodes (Section 2); Section 6.1 discusses how concentrated placements break
*global* density estimation because distant agents never see the cluster.
These placement functions plug into
:class:`repro.core.simulation.SimulationConfig` and power experiment E15.
"""

from __future__ import annotations

import numpy as np

from repro.core.simulation import uniform_placement
from repro.topology.base import Topology
from repro.topology.torus import Torus2D
from repro.utils.validation import require_probability


def clustered_placement(cluster_fraction: float, cluster_radius: int):
    """Placement where a fraction of the agents start inside a small disc.

    Parameters
    ----------
    cluster_fraction:
        Fraction of agents placed inside the cluster; the rest are uniform.
    cluster_radius:
        L∞ radius (in grid cells) of the cluster around a uniformly random
        centre.

    Returns
    -------
    callable
        A placement function ``(topology, count, rng) -> positions``
        (requires a :class:`Torus2D`).
    """
    require_probability(cluster_fraction, "cluster_fraction")
    if cluster_radius < 0:
        raise ValueError(f"cluster_radius must be non-negative, got {cluster_radius}")

    def placement(topology: Topology, count: int, rng: np.random.Generator) -> np.ndarray:
        if not isinstance(topology, Torus2D):
            raise TypeError("clustered_placement requires a Torus2D topology")
        positions = topology.uniform_nodes(count, rng)
        num_clustered = int(round(cluster_fraction * count))
        if num_clustered == 0:
            return positions
        centre = int(rng.integers(0, topology.num_nodes))
        cx, cy = topology.decode(np.asarray(centre))
        offsets_x = rng.integers(-cluster_radius, cluster_radius + 1, size=num_clustered)
        offsets_y = rng.integers(-cluster_radius, cluster_radius + 1, size=num_clustered)
        clustered_nodes = np.asarray(
            topology.encode(cx + offsets_x, cy + offsets_y), dtype=np.int64
        )
        positions[:num_clustered] = clustered_nodes
        return positions

    placement.__name__ = f"clustered_placement_f{cluster_fraction}_r{cluster_radius}"
    return placement


def gaussian_blob_placement(spread: float):
    """Placement with all agents scattered around one centre with Gaussian spread.

    ``spread`` is the standard deviation in grid cells. With ``spread`` much
    smaller than the torus side this is the "most agents in a very small
    portion of the torus" scenario of Section 6.1.
    """
    if spread <= 0:
        raise ValueError(f"spread must be positive, got {spread}")

    def placement(topology: Topology, count: int, rng: np.random.Generator) -> np.ndarray:
        if not isinstance(topology, Torus2D):
            raise TypeError("gaussian_blob_placement requires a Torus2D topology")
        centre = int(rng.integers(0, topology.num_nodes))
        cx, cy = topology.decode(np.asarray(centre))
        dx = np.round(rng.normal(0.0, spread, size=count)).astype(np.int64)
        dy = np.round(rng.normal(0.0, spread, size=count)).astype(np.int64)
        return np.asarray(topology.encode(cx + dx, cy + dy), dtype=np.int64)

    placement.__name__ = f"gaussian_blob_placement_s{spread}"
    return placement


__all__ = ["uniform_placement", "clustered_placement", "gaussian_blob_placement"]
