"""Collective threshold decisions from many individual density estimates.

Section 6.2 of the paper asks how "multiple agents with different density
estimates can cooperate to learn if a density threshold has been reached,
with more accuracy than if just a single agent were attempting to detect such
a threshold". The simplest cooperation rule — each agent votes on the
threshold question and the colony follows the majority — already gives an
exponential boost: if each agent is correct with probability ``1 - δ`` and
the votes were independent, a majority of ``n`` votes would fail with
probability ``exp(-Ω(n))``. Votes derived from encounter rates are not
independent (agents share collisions), so the improvement must be measured;
that is what this module and its tests do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimator import RandomWalkDensityEstimator
from repro.topology.base import Topology
from repro.utils.rng import SeedLike, spawn_generators
from repro.utils.validation import require_integer, require_positive


@dataclass(frozen=True)
class CollectiveDecision:
    """Outcome of one collective quorum vote."""

    decision_above: bool
    vote_fraction_above: float
    individual_accuracy: float
    collective_correct: bool | None


@dataclass
class MajorityQuorumVote:
    """Majority vote over the per-agent quorum decisions of one shared run.

    Parameters
    ----------
    topology:
        Workspace the agents walk on.
    num_agents:
        Number of agents (voters).
    threshold:
        Density threshold θ being tested.
    rounds:
        Rounds of Algorithm 1 each agent runs before voting.
    """

    topology: Topology
    num_agents: int
    threshold: float
    rounds: int

    def __post_init__(self) -> None:
        require_integer(self.num_agents, "num_agents", minimum=1)
        require_integer(self.rounds, "rounds", minimum=1)
        require_positive(self.threshold, "threshold")

    def decide(self, seed: SeedLike = None) -> CollectiveDecision:
        """Run one shared simulation and take the majority vote."""
        run = RandomWalkDensityEstimator(self.topology, self.num_agents, self.rounds).run(seed)
        votes_above = run.estimates >= self.threshold
        truth_above = run.true_density >= self.threshold
        individual_accuracy = float(np.mean(votes_above == truth_above))
        vote_fraction = float(votes_above.mean())
        decision = vote_fraction >= 0.5
        return CollectiveDecision(
            decision_above=decision,
            vote_fraction_above=vote_fraction,
            individual_accuracy=individual_accuracy,
            collective_correct=(decision == truth_above),
        )

    def failure_rates(self, trials: int, seed: SeedLike = None) -> tuple[float, float]:
        """Empirical failure probabilities (individual, collective) over ``trials`` runs.

        The individual rate is the average fraction of agents voting wrongly;
        the collective rate is the fraction of trials where the majority is
        wrong. The gap between the two quantifies how much the (correlated)
        votes still help.
        """
        require_integer(trials, "trials", minimum=1)
        rngs = spawn_generators(seed, trials)
        individual_errors = []
        collective_errors = []
        for rng in rngs:
            outcome = self.decide(rng)
            individual_errors.append(1.0 - outcome.individual_accuracy)
            collective_errors.append(0.0 if outcome.collective_correct else 1.0)
        return float(np.mean(individual_errors)), float(np.mean(collective_errors))


__all__ = ["CollectiveDecision", "MajorityQuorumVote"]
