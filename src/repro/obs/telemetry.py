"""The zero-overhead telemetry spine: counters, gauges, timers, spans.

Every hot subsystem — the kernel round loop, the scheduler, the run cache,
the sweep runner — carries *probes*: tiny calls into the process-wide
current :class:`Telemetry` object. The default object is the no-op base
class, whose methods do nothing, so an uninstrumented run pays one
attribute lookup plus a predicted branch per probe site (benchmarked ≤ a
few percent on macro-workloads by ``benchmarks/bench_fastpath.py``).
Installing a :class:`TelemetryRecorder` turns the same probes into a
structured event stream without touching a single simulation code path.

Two hard contracts:

* **Observation only.** Probes never draw randomness, never mutate
  simulation state, and never change control flow; results are
  bit-identical with telemetry off, on, and at every verbosity level
  (pinned against the golden kernel fixtures in
  ``tests/test_obs_telemetry.py``).
* **Structured output.** A recorder aggregates counters / gauges / timers
  in memory and (at level ``"events"``) appends every event to a JSONL
  stream. :meth:`TelemetryRecorder.write` publishes ``summary.json`` — the
  aggregated metrics plus a provenance block (package version, git SHA,
  seed root) matching the :class:`~repro.store.ResultStore` sidecar
  convention — and flushes ``events.jsonl`` next to it.

Span hierarchy (see README "Observability")::

    run                  # one CLI invocation (installed by repro.cli)
     └─ plan             # one ExecutionPlan (scheduler)
         └─ cell         # one plan task / sweep cell
             └─ round_chunk   # one chunked multi-round RNG draw (fastpath)

The result store's streaming read path
(:meth:`~repro.store.ResultStore.iter_select`) flushes one counter batch
per completed query: ``store.segments_opened`` / ``store.segments_skipped``
(part files actually read vs. rejected wholesale by pushdown),
``store.rows_scanned`` vs. ``store.rows_returned`` (filter selectivity —
how much I/O the query paid per row it kept), and ``store.pushdown_hits``
(equality clauses the Parquet reader evaluated instead of Python). A
``limit`` short-circuit shows up as ``segments_opened`` below the store's
segment count.

Worker *processes* spawned by the scheduler inherit the default no-op
recorder: cross-process telemetry is deliberately parent-side (the parent
records per-cell latency from worker-measured durations), which is what
makes counters identical for every worker count.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

#: Recorder verbosity levels, in increasing order of detail. ``"off"`` is
#: the no-op base class; ``"summary"`` aggregates counters/gauges/timers
#: only; ``"events"`` additionally streams every event to JSONL.
TELEMETRY_LEVELS = ("off", "summary", "events")


class _NullSpan:
    """The reusable no-op span: a context manager that does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """The no-op telemetry object — and the probe interface.

    Probe sites call these methods unconditionally; this base class makes
    every one of them a constant-time no-op. Hot loops may additionally
    consult :attr:`enabled` to skip building probe arguments at all.
    """

    #: Fast gate for hot paths: ``False`` here, ``True`` on recorders.
    enabled = False
    #: The verbosity level this object implements.
    level = "off"

    def counter(self, name: str, value: int | float = 1, **labels: Any) -> None:
        """Add ``value`` to the counter ``name`` (labels refine the key)."""

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name`` to its latest observed ``value``."""

    def timer(self, name: str, seconds: float, **labels: Any) -> None:
        """Fold one wall-time observation into the timer ``name``."""

    def event(self, name: str, **fields: Any) -> None:
        """Append one structured event to the stream (``"events"`` level only)."""

    def span(self, name: str, **fields: Any):
        """Context manager timing a nested phase (run → plan → cell → ...)."""
        return _NULL_SPAN

    def summary(self) -> dict[str, Any]:
        """The aggregated metrics document (empty for the no-op)."""
        return {}

    def write(self) -> Optional[Path]:
        """Publish the summary (and flush events); no-op returns ``None``."""
        return None


#: The process-wide default: shared, stateless, does nothing.
NULL_TELEMETRY = Telemetry()

_current: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The process-wide current telemetry object (no-op unless installed)."""
    return _current


def set_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` process-wide (``None`` restores the no-op).

    Returns the previously installed object so callers can restore it.
    """
    global _current
    previous = _current
    _current = NULL_TELEMETRY if telemetry is None else telemetry
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry | None) -> Iterator[Telemetry]:
    """Install ``telemetry`` for the duration of a ``with`` block."""
    previous = set_telemetry(telemetry)
    try:
        yield get_telemetry()
    finally:
        set_telemetry(previous)


def _metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Flatten a (name, labels) pair into one deterministic aggregation key."""
    if not labels:
        return name
    rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}[{rendered}]"


class _Span:
    """A live span: times its block, emits one event on exit."""

    __slots__ = ("_recorder", "name", "fields", "_start")

    def __init__(self, recorder: "TelemetryRecorder", name: str, fields: dict[str, Any]):
        self._recorder = recorder
        self.name = name
        self.fields = fields
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._recorder._push_span(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._recorder._pop_span(self.name, elapsed, self.fields)


class TelemetryRecorder(Telemetry):
    """An in-memory aggregating recorder with optional JSONL event streaming.

    Parameters
    ----------
    directory:
        Where :meth:`write` publishes ``summary.json`` (and, at level
        ``"events"``, where ``events.jsonl`` is appended). ``None`` keeps
        everything in memory — useful for tests and programmatic use.
    level:
        ``"summary"`` (aggregates only) or ``"events"`` (aggregates plus
        the JSONL event stream).
    provenance:
        Extra provenance fields folded into the summary's provenance block
        (the CLI records the seed root and the command here).

    The recorder is thread-safe (one lock around the aggregate maps);
    span nesting state is kept per-thread so concurrent spans in different
    threads cannot corrupt each other's paths.
    """

    enabled = True

    def __init__(
        self,
        directory: str | Path | None = None,
        level: str = "events",
        provenance: Mapping[str, Any] | None = None,
    ):
        if level not in ("summary", "events"):
            raise ValueError(
                f"telemetry level must be 'summary' or 'events', got {level!r}"
            )
        self.level = level
        self.directory = None if directory is None else Path(directory)
        self._extra_provenance = dict(provenance or {})
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, dict[str, float]] = {}
        self._events: list[dict[str, Any]] = []
        self._events_flushed = 0
        self._event_seq = 0
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # Probe interface
    # ------------------------------------------------------------------
    def counter(self, name: str, value: int | float = 1, **labels: Any) -> None:
        key = _metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        key = _metric_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def timer(self, name: str, seconds: float, **labels: Any) -> None:
        key = _metric_key(name, labels)
        seconds = float(seconds)
        with self._lock:
            stats = self._timers.get(key)
            if stats is None:
                self._timers[key] = {
                    "count": 1,
                    "total_seconds": seconds,
                    "min_seconds": seconds,
                    "max_seconds": seconds,
                }
            else:
                stats["count"] += 1
                stats["total_seconds"] += seconds
                stats["min_seconds"] = min(stats["min_seconds"], seconds)
                stats["max_seconds"] = max(stats["max_seconds"], seconds)

    def event(self, name: str, **fields: Any) -> None:
        if self.level != "events":
            return
        with self._lock:
            self._event_seq += 1
            self._events.append(
                {
                    "seq": self._event_seq,
                    "t": round(time.perf_counter() - self._epoch, 6),
                    "event": name,
                    "span": "/".join(self._span_stack()) or None,
                    **fields,
                }
            )

    def span(self, name: str, **fields: Any) -> _Span:
        return _Span(self, name, fields)

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------
    def _span_stack(self) -> list[str]:
        stack = getattr(self._local, "spans", None)
        if stack is None:
            stack = self._local.spans = []
        return stack

    def _push_span(self, name: str) -> None:
        self._span_stack().append(name)

    def _pop_span(self, name: str, elapsed: float, fields: dict[str, Any]) -> None:
        self.event(f"span.{name}", seconds=round(elapsed, 6), **fields)
        stack = self._span_stack()
        if stack and stack[-1] == name:
            stack.pop()
        self.timer(f"span.{name}.seconds", elapsed)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def events(self) -> list[dict[str, Any]]:
        """All events recorded so far (including already-flushed ones)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def summary(self) -> dict[str, Any]:
        from repro.utils.provenance import provenance_stamp

        with self._lock:
            timers = {
                key: {
                    **stats,
                    "mean_seconds": stats["total_seconds"] / max(stats["count"], 1),
                }
                for key, stats in sorted(self._timers.items())
            }
            return {
                "telemetry_level": self.level,
                "provenance": provenance_stamp(**self._extra_provenance),
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "timers": timers,
                "events_recorded": self._event_seq,
            }

    def write(self) -> Optional[Path]:
        """Publish ``summary.json`` (and flush ``events.jsonl``); returns the path.

        The summary is written atomically; the event stream is append-only
        (each flush appends only events not yet on disk), so repeated
        flushes of a long-running process never rewrite history.
        """
        if self.directory is None:
            return None
        from repro.utils.atomic import atomic_write_text

        self.directory.mkdir(parents=True, exist_ok=True)
        if self.level == "events":
            with self._lock:
                pending = self._events[self._events_flushed :]
                self._events_flushed = len(self._events)
            if pending:
                with open(self.directory / "events.jsonl", "a", encoding="utf-8") as handle:
                    for event in pending:
                        handle.write(json.dumps(event, sort_keys=False) + "\n")
        summary_path = self.directory / "summary.json"
        atomic_write_text(summary_path, json.dumps(self.summary(), indent=2) + "\n")
        return summary_path


__all__ = [
    "NULL_TELEMETRY",
    "TELEMETRY_LEVELS",
    "Telemetry",
    "TelemetryRecorder",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
]
