"""repro.obs — the observability layer: telemetry spine + bench observatory.

Two halves:

* :mod:`repro.obs.telemetry` — the process-wide probe interface (no-op by
  default) and the :class:`TelemetryRecorder` that turns the kernel,
  scheduler, cache, and sweep probes into JSONL event streams plus an
  aggregated ``summary.json``.
* :mod:`repro.obs.history` — the ``repro bench history`` observatory:
  ``BENCH_*.json`` artifacts ingested into a ResultStore and scanned for
  statistically significant perf shifts with the two-window Welch-z
  detector from :mod:`repro.dynamics.online`.

The history half is re-exported lazily: probe sites deep in the kernel
import :mod:`repro.obs.telemetry` (stdlib-only) at module load, and an
eager ``history`` import here would drag :mod:`repro.store` and
:mod:`repro.dynamics` into that import chain — a cycle during package
initialisation.
"""

from repro.obs.telemetry import (
    NULL_TELEMETRY,
    TELEMETRY_LEVELS,
    Telemetry,
    TelemetryRecorder,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)

_HISTORY_EXPORTS = (
    "analyze_history",
    "extract_series",
    "ingest_artifact",
    "lower_is_better",
    "scan_series",
)


def __getattr__(name: str):
    if name in _HISTORY_EXPORTS:
        from repro.obs import history

        return getattr(history, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "NULL_TELEMETRY",
    "TELEMETRY_LEVELS",
    "Telemetry",
    "TelemetryRecorder",
    "analyze_history",
    "extract_series",
    "get_telemetry",
    "ingest_artifact",
    "lower_is_better",
    "scan_series",
    "set_telemetry",
    "use_telemetry",
]
