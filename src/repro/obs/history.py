"""The bench-history observatory: perf trajectories, not one-shot thresholds.

``BENCH_*.json`` artifacts (written by the scripts in ``benchmarks/``) each
capture one build's timings. This module ingests them into a dedicated
:class:`~repro.store.ResultStore` — one idempotent, digest-named segment
per artifact — and scans every (benchmark, workload, backend) series with
the two-window Welch-z change detector from :mod:`repro.dynamics.online`:
the same anytime-estimation machinery the paper's collision-based density
estimators use, pointed back at the system itself. A perf regression is a
*density shift in the timing stream*, and is flagged with the identical
material-AND-significant conjunction (relative threshold + Welch z-score
with Bartlett autocorrelation inflation).

Ingestion is append-only and idempotent: a segment is named by the SHA-256
digest of the artifact's bytes, so re-feeding the same artifact (a re-run
CI job, a resumed ingest) never duplicates points, and each point's
``seq`` — its position in ingestion order — is pinned at first ingest.

Direction matters: for metrics where lower is better (anything with
``seconds`` or ``time`` in the name) an upward shift is a regression and a
downward one an improvement; for rates like ``speedup`` it is the
opposite. :func:`analyze_history` reports both, but only regressions drive
the CLI's nonzero exit code.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.dynamics.online import TwoWindowChangeDetector
from repro.store import ResultStore

#: Provenance fields copied from an artifact onto each of its rows. Legacy
#: artifacts predate provenance stamping; absent fields ingest as ``None``.
PROVENANCE_FIELDS = ("package_version", "git_sha", "hostname", "numpy")

#: Record fields that identify a series rather than measure it.
SERIES_KEY_FIELDS = ("benchmark", "workload", "backend")


def lower_is_better(metric: str) -> bool:
    """Whether a downward trend in ``metric`` is the good direction."""
    lowered = metric.lower()
    return "seconds" in lowered or "time" in lowered


def _artifact_digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()[:16]


def ingest_artifact(store: ResultStore, path: str | Path) -> dict[str, Any]:
    """Ingest one ``BENCH_*.json`` artifact as a digest-named segment.

    Tolerates legacy artifacts: a missing ``benchmark`` name falls back to
    the file stem, missing ``provenance`` ingests as ``None`` fields, and
    records missing ``backend``/``kind`` keep working (they simply form a
    coarser series key). Returns a small report of what happened; the
    ``ingested`` flag is ``False`` when the artifact's digest segment
    already exists (idempotent re-feed).
    """
    path = Path(path)
    payload = path.read_bytes()
    try:
        artifact = json.loads(payload)
    except ValueError as error:
        raise ValueError(f"unreadable bench artifact {path}: {error}") from error
    if not isinstance(artifact, Mapping):
        raise ValueError(f"bench artifact {path} is not a JSON object")

    digest = _artifact_digest(payload)
    segment = f"bench-{digest}"
    if store.has_segment(segment):
        return {"artifact": path.name, "segment": segment, "ingested": False, "records": 0}

    benchmark = artifact.get("benchmark") or path.stem
    provenance = artifact.get("provenance") or {}
    # seq pins ingestion order at first ingest: segment names are digests
    # (unordered), so the row itself must carry the series position.
    seq = len(store.segments()) if store.exists() else 0

    rows: list[dict[str, Any]] = []
    for record in artifact.get("records", []):
        if not isinstance(record, Mapping):
            continue
        row: dict[str, Any] = {
            "seq": seq,
            "artifact": path.name,
            "benchmark": benchmark,
            "workload": record.get("workload"),
            "kind": record.get("kind"),
            "backend": record.get("backend"),
        }
        for key, value in record.items():
            if key in row:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            row[key] = value
        for field in PROVENANCE_FIELDS:
            row[field] = provenance.get(field)
        rows.append(row)

    store.append(
        segment,
        rows,
        meta={"artifact": path.name, "seq": seq, "benchmark": benchmark},
        provenance={"purpose": "bench-history"},
    )
    return {"artifact": path.name, "segment": segment, "ingested": True, "records": len(rows)}


def extract_series(store: ResultStore, metric: str) -> dict[tuple, list[tuple[int, float]]]:
    """Per-(benchmark, workload, backend) series of ``metric``, in seq order."""
    series: dict[tuple, list[tuple[int, float]]] = {}
    for row in store.rows():
        value = row.get(metric)
        if value is None or isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        key = tuple(row.get(field) for field in SERIES_KEY_FIELDS)
        series.setdefault(key, []).append((int(row.get("seq", 0)), float(value)))
    for points in series.values():
        points.sort()
    return series


def scan_series(
    values: Sequence[float],
    *,
    window: int,
    threshold: float,
    z_threshold: float,
    metric: str,
) -> dict[str, Any]:
    """Run the two-window detector over one series; classify each flag.

    Each flagged index is classified by comparing the recent-window mean
    against the reference-window mean at the flag point, oriented by
    :func:`lower_is_better` for ``metric``. Series shorter than
    ``2 * window`` cannot arm the detector and come back with
    ``"status": "insufficient"``.
    """
    values = [float(v) for v in values]
    if len(values) < 2 * window:
        return {
            "status": "insufficient",
            "points": len(values),
            "required": 2 * window,
            "regressions": [],
            "improvements": [],
        }
    detector = TwoWindowChangeDetector(
        window, tracks=1, threshold=threshold, z_threshold=z_threshold
    )
    regressions: list[dict[str, Any]] = []
    improvements: list[dict[str, Any]] = []
    history: list[float] = []
    for index, value in enumerate(values):
        history.append(value)
        flagged = bool(detector.update(value)[0])
        if not flagged:
            continue
        recent = float(np.mean(history[-window:]))
        reference = float(np.mean(history[-2 * window : -window]))
        worse = recent > reference if lower_is_better(metric) else recent < reference
        shift = {
            "index": index,
            "recent_mean": recent,
            "reference_mean": reference,
            "relative_change": (recent - reference) / reference if reference else None,
        }
        (regressions if worse else improvements).append(shift)
    return {
        "status": "scanned",
        "points": len(values),
        "regressions": regressions,
        "improvements": improvements,
    }


def analyze_history(
    store: ResultStore,
    *,
    metric: str = "median_seconds",
    window: int = 4,
    threshold: float = 0.25,
    z_threshold: float = 4.5,
) -> dict[str, Any]:
    """Scan every series of ``metric`` in ``store``; the ``--json`` report.

    The top-level ``regressions_detected`` count is what the CLI turns
    into its exit code: any regression on any series is a trajectory
    failure, independent of the one-shot threshold gates.
    """
    all_series = extract_series(store, metric)
    reports = []
    regressions_detected = 0
    for key in sorted(all_series, key=lambda k: tuple(str(part) for part in k)):
        points = all_series[key]
        scan = scan_series(
            [value for _, value in points],
            window=window,
            threshold=threshold,
            z_threshold=z_threshold,
            metric=metric,
        )
        regressions_detected += len(scan["regressions"])
        reports.append(
            {
                **{field: key[i] for i, field in enumerate(SERIES_KEY_FIELDS)},
                "values": [value for _, value in points],
                **scan,
            }
        )
    return {
        "metric": metric,
        "lower_is_better": lower_is_better(metric),
        "window": window,
        "threshold": threshold,
        "z_threshold": z_threshold,
        "series": reports,
        "series_scanned": len(reports),
        "regressions_detected": regressions_detected,
    }


__all__ = [
    "PROVENANCE_FIELDS",
    "SERIES_KEY_FIELDS",
    "analyze_history",
    "extract_series",
    "ingest_artifact",
    "lower_is_better",
    "scan_series",
]
