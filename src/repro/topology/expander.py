"""Regular expander topologies — Section 4.4 of the paper.

An expander is a regular graph whose random-walk matrix has second
eigenvalue magnitude ``λ`` bounded away from 1. The paper shows the
re-collision probability is at most ``λ^m + 1/A`` (Lemma 23), so density
estimation matches independent sampling up to a ``1/(1-λ)²`` factor.

We realise expanders as random regular graphs (which are expanders with high
probability) and expose the measured ``λ`` so experiments can plug it into
the theoretical bounds.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.graph import NetworkXTopology
from repro.topology.spectral import second_eigenvalue_magnitude
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_integer


class RegularExpander(NetworkXTopology):
    """A random ``degree``-regular graph on ``size`` nodes.

    Parameters
    ----------
    size:
        Number of nodes; ``size * degree`` must be even (handshake lemma).
    degree:
        Common degree (>= 3 for the graph to be an expander w.h.p.).
    seed:
        Seed for the graph construction, so experiments are reproducible.
    """

    def __init__(self, size: int, degree: int = 4, seed: SeedLike = None):
        require_integer(size, "size", minimum=4)
        require_integer(degree, "degree", minimum=3)
        if (size * degree) % 2 != 0:
            raise ValueError(
                f"size * degree must be even for a regular graph, got {size} * {degree}"
            )
        if degree >= size:
            raise ValueError(f"degree must be < size, got degree={degree}, size={size}")
        rng = as_generator(seed)
        graph = nx.random_regular_graph(degree, size, seed=int(rng.integers(0, 2**31 - 1)))
        # Retry a few times in the unlikely event the graph is disconnected.
        attempts = 0
        while not nx.is_connected(graph) and attempts < 10:
            graph = nx.random_regular_graph(degree, size, seed=int(rng.integers(0, 2**31 - 1)))
            attempts += 1
        if not nx.is_connected(graph):
            raise RuntimeError("failed to sample a connected random regular graph")
        super().__init__(graph, name=f"expander_{degree}reg")
        self.degree = degree
        self._lambda: float | None = None

    @property
    def second_eigenvalue(self) -> float:
        """Measured ``λ = max(|λ₂|, |λ_A|)`` of the walk matrix (cached)."""
        if self._lambda is None:
            self._lambda = second_eigenvalue_magnitude(self)
        return self._lambda

    @property
    def spectral_gap(self) -> float:
        """``1 - λ``; larger means faster (global and local) mixing."""
        return 1.0 - self.second_eigenvalue

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegularExpander(size={self.num_nodes}, degree={self.degree})"


__all__ = ["RegularExpander"]
