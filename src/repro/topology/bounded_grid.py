"""A bounded (non-wrap-around) grid with reflecting boundaries.

Section 2 of the paper argues for the torus model because it "captures the
dynamics of density estimation on a surface, while avoiding complicating
factors of boundary behavior on a finite grid". This class provides exactly
the finite grid the paper chose *not* to analyse, so the E20 ablation can
measure how much boundary behaviour actually matters.

A random-walk step picks one of the four compass directions uniformly; a
step that would leave the grid is replaced by staying put (a "reflecting"
boundary with a self-loop). That transition matrix is symmetric, so the
stationary distribution remains uniform and the encounter-rate estimator is
still unbiased — but agents near the boundary effectively move more slowly
(they waste steps on blocked moves), which weakens local mixing there and
costs a little accuracy relative to the torus. E20 quantifies both effects.
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import Topology
from repro.utils.validation import require_integer


class BoundedGrid(Topology):
    """A ``side x side`` grid without wrap-around.

    Node ``(x, y)`` is encoded as ``x * side + y``, exactly like
    :class:`~repro.topology.Torus2D`, so the two are interchangeable in
    experiments that compare them.
    """

    name = "bounded_grid"
    precomputed_steps = True
    num_step_choices = 4

    STEPS = np.array([(0, 1), (0, -1), (1, 0), (-1, 0)], dtype=np.int64)

    def __init__(self, side: int):
        require_integer(side, "side", minimum=2)
        self.side = int(side)
        self._num_nodes = self.side * self.side

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray | int, y: np.ndarray | int) -> np.ndarray | int:
        """Encode in-range coordinates as node labels (no wrap-around)."""
        x = np.asarray(x)
        y = np.asarray(y)
        if np.any((x < 0) | (x >= self.side) | (y < 0) | (y >= self.side)):
            raise ValueError("coordinates out of range for a bounded grid")
        return x * self.side + y

    def decode(self, nodes: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
        nodes = np.asarray(nodes)
        return nodes // self.side, nodes % self.side

    # ------------------------------------------------------------------
    # Topology interface
    # ------------------------------------------------------------------
    def degree_of(self, nodes: np.ndarray | int) -> np.ndarray | int:
        """Number of in-grid neighbours: 2 at corners, 3 on edges, 4 inside."""
        x, y = self.decode(np.asarray(nodes))
        on_x_boundary = (x == 0) | (x == self.side - 1)
        on_y_boundary = (y == 0) | (y == self.side - 1)
        degrees = 4 - on_x_boundary.astype(np.int64) - on_y_boundary.astype(np.int64)
        if np.isscalar(nodes):
            return int(degrees)
        return degrees

    def neighbors(self, node: int) -> np.ndarray:
        x, y = (int(v) for v in self.decode(np.asarray(node)))
        result = []
        for dx, dy in self.STEPS:
            nx_, ny_ = x + int(dx), y + int(dy)
            if 0 <= nx_ < self.side and 0 <= ny_ < self.side:
                result.append(nx_ * self.side + ny_)
        return np.array(sorted(result), dtype=np.int64)

    def draw_steps(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, 4, size=shape)

    def draw_steps_chunk(
        self, chunk: int, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        return rng.integers(0, 4, size=(chunk, *shape))

    def apply_steps(self, positions: np.ndarray, draws: np.ndarray) -> np.ndarray:
        dx = self.STEPS[draws, 0]
        dy = self.STEPS[draws, 1]
        x, y = self.decode(positions)
        new_x = x + dx
        new_y = y + dy
        # Reflecting boundary: a step off the grid is replaced by staying put.
        blocked = (new_x < 0) | (new_x >= self.side) | (new_y < 0) | (new_y >= self.side)
        new_x = np.where(blocked, x, new_x)
        new_y = np.where(blocked, y, new_y)
        return (new_x * self.side + new_y).astype(np.int64)

    def step_many(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        return self.apply_steps(positions, self.draw_steps(positions.shape, rng))

    def boundary_nodes(self) -> np.ndarray:
        """Labels of all nodes on the outer boundary of the grid."""
        nodes = np.arange(self.num_nodes)
        x, y = self.decode(nodes)
        mask = (x == 0) | (x == self.side - 1) | (y == 0) | (y == self.side - 1)
        return nodes[mask]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundedGrid(side={self.side})"


__all__ = ["BoundedGrid"]
