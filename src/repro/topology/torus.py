"""The two-dimensional torus — the paper's primary model (Section 2).

Nodes are the points of a ``side x side`` wrap-around grid. A node with
coordinates ``(x, y)`` is encoded as the integer ``x * side + y``. A random
walk step adds one of ``{(0, 1), (0, -1), (1, 0), (-1, 0)}`` uniformly at
random, exactly as in Algorithm 1 of the paper (agents never use the
"stay put" move when random walking).
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import RegularTopology
from repro.utils.validation import require_integer


class Torus2D(RegularTopology):
    """A ``side x side`` torus with ``A = side**2`` nodes.

    Parameters
    ----------
    side:
        Side length (the paper's ``sqrt(A)``); must be at least 2 so every
        node has four distinct neighbours.
    """

    name = "torus2d"
    degree = 4
    precomputed_steps = True
    num_step_choices = 4

    #: The four axis-aligned unit steps of the paper's model.
    STEPS = np.array([(0, 1), (0, -1), (1, 0), (-1, 0)], dtype=np.int64)

    def __init__(self, side: int):
        require_integer(side, "side", minimum=2)
        self.side = int(side)
        self._num_nodes = self.side * self.side

    # ------------------------------------------------------------------
    # Node encoding
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def encode(self, x: np.ndarray | int, y: np.ndarray | int) -> np.ndarray | int:
        """Encode coordinates ``(x, y)`` (taken modulo ``side``) as node labels."""
        x_mod = np.mod(x, self.side)
        y_mod = np.mod(y, self.side)
        return x_mod * self.side + y_mod

    def decode(self, nodes: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
        """Decode node labels into ``(x, y)`` coordinate arrays."""
        nodes = np.asarray(nodes)
        return nodes // self.side, nodes % self.side

    # ------------------------------------------------------------------
    # Walk dynamics
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        x, y = self.decode(np.asarray(node))
        xs = (x + self.STEPS[:, 0]) % self.side
        ys = (y + self.STEPS[:, 1]) % self.side
        return np.asarray(self.encode(xs, ys), dtype=np.int64)

    def draw_steps(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, 4, size=shape)

    def draw_steps_chunk(
        self, chunk: int, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        # One bounded-integer draw; element order matches `chunk` sequential
        # per-round draws, so the stream contract holds exactly.
        return rng.integers(0, 4, size=(chunk, *shape))

    def apply_steps(self, positions: np.ndarray, draws: np.ndarray) -> np.ndarray:
        dx = self.STEPS[draws, 0]
        dy = self.STEPS[draws, 1]
        x, y = self.decode(positions)
        return np.asarray(self.encode(x + dx, y + dy), dtype=np.int64)

    def step_many(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        return self.apply_steps(positions, self.draw_steps(positions.shape, rng))

    # ------------------------------------------------------------------
    # Geometry helpers (used by tests and the swarm application)
    # ------------------------------------------------------------------
    def torus_distance(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
        """L1 (Manhattan) distance on the torus between node labels ``a`` and ``b``."""
        ax, ay = self.decode(np.asarray(a))
        bx, by = self.decode(np.asarray(b))
        dx = np.abs(ax - bx)
        dy = np.abs(ay - by)
        dx = np.minimum(dx, self.side - dx)
        dy = np.minimum(dy, self.side - dy)
        return dx + dy

    def displacement(self, start: np.ndarray | int, end: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
        """Signed minimal displacement from ``start`` to ``end`` along each axis."""
        sx, sy = self.decode(np.asarray(start))
        ex, ey = self.decode(np.asarray(end))
        half = self.side / 2.0
        dx = (ex - sx + self.side) % self.side
        dy = (ey - sy + self.side) % self.side
        dx = np.where(dx > half, dx - self.side, dx)
        dy = np.where(dy > half, dy - self.side, dy)
        return dx, dy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Torus2D(side={self.side})"


__all__ = ["Torus2D"]
