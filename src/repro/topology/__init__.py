"""Graph topologies agents walk on.

Every topology encodes its nodes as integers in ``range(num_nodes)`` and
exposes a vectorised ``step_many`` so the density-estimation engine and the
random-walk analysis tools work unchanged on all of them.

The topologies mirror Section 2 and Section 4 of the paper:

* :class:`Torus2D` — the paper's primary model (Section 2, Theorem 1).
* :class:`Ring` — the 1-D torus (Section 4.2, Lemma 20, Theorem 21).
* :class:`TorusKD` — k-dimensional tori (Section 4.3, Lemma 22).
* :class:`Hypercube` — the k-dimensional hypercube (Section 4.5, Lemma 25).
* :class:`CompleteGraph` — the independent-sampling ideal (Section 1.1).
* :class:`RegularExpander` — random regular expanders (Section 4.4, Lemma 23).
* :class:`NetworkXTopology` — arbitrary (possibly non-regular) graphs used by
  the network-size estimation application (Section 5.1).
"""

from repro.topology.base import Topology, RegularTopology
from repro.topology.torus import Torus2D
from repro.topology.bounded_grid import BoundedGrid
from repro.topology.ring import Ring
from repro.topology.torus_kd import TorusKD
from repro.topology.hypercube import Hypercube
from repro.topology.complete import CompleteGraph
from repro.topology.expander import RegularExpander
from repro.topology.graph import NetworkXTopology
from repro.topology.spectral import (
    second_eigenvalue_magnitude,
    spectral_gap,
    mixing_time_upper_bound,
    transition_matrix,
)

__all__ = [
    "Topology",
    "RegularTopology",
    "Torus2D",
    "BoundedGrid",
    "Ring",
    "TorusKD",
    "Hypercube",
    "CompleteGraph",
    "RegularExpander",
    "NetworkXTopology",
    "second_eigenvalue_magnitude",
    "spectral_gap",
    "mixing_time_upper_bound",
    "transition_matrix",
]
