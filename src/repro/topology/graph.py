"""Topology backed by an arbitrary NetworkX graph.

The network-size estimation application (Section 5.1) runs random walks on
graphs that are generally *not* regular: collisions must then be weighted by
inverse degree and walks start from the degree-weighted stationary
distribution. This adapter stores the adjacency structure in flat CSR-style
arrays so that thousands of walkers can be advanced per NumPy call.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx
import numpy as np

from repro.topology.base import Topology


class NetworkXTopology(Topology):
    """Wrap an undirected NetworkX graph as a walkable topology.

    Parameters
    ----------
    graph:
        An undirected graph. It must have no isolated vertices (every node
        needs at least one neighbour to step to). Self-loops are ignored.
    name:
        Optional label used in experiment tables.

    Notes
    -----
    Node labels of the original graph are mapped to ``0 .. n-1`` in the order
    returned by ``graph.nodes()``; :attr:`node_labels` records the mapping.
    """

    def __init__(self, graph: nx.Graph, *, name: str | None = None):
        if graph.number_of_nodes() == 0:
            raise ValueError("graph must have at least one node")
        if graph.is_directed():
            raise ValueError("NetworkXTopology requires an undirected graph")
        simple = nx.Graph(graph)
        simple.remove_edges_from(nx.selfloop_edges(simple))
        isolated = [node for node, degree in simple.degree() if degree == 0]
        if isolated:
            raise ValueError(
                f"graph has {len(isolated)} isolated node(s); random walks cannot leave them"
            )

        self.graph = simple
        self.name = name or "networkx"
        self.node_labels = list(simple.nodes())
        self._label_to_index = {label: index for index, label in enumerate(self.node_labels)}

        degrees = np.array([simple.degree(label) for label in self.node_labels], dtype=np.int64)
        offsets = np.zeros(len(self.node_labels) + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        flat_neighbors = np.empty(int(degrees.sum()), dtype=np.int64)
        for index, label in enumerate(self.node_labels):
            neighbor_indices = [self._label_to_index[other] for other in simple.neighbors(label)]
            flat_neighbors[offsets[index] : offsets[index + 1]] = np.sort(neighbor_indices)

        self._degrees = degrees
        self._offsets = offsets
        self._flat_neighbors = flat_neighbors
        self._num_edges = int(degrees.sum()) // 2

    # ------------------------------------------------------------------
    # Topology interface
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E| (used by Algorithm 2's analysis)."""
        return self._num_edges

    @property
    def is_regular(self) -> bool:
        return bool(np.all(self._degrees == self._degrees[0]))

    @property
    def average_degree(self) -> float:
        """The quantity ``deg = 2|E| / |V|`` used by Algorithm 2."""
        return float(self._degrees.mean())

    @property
    def min_degree(self) -> int:
        return int(self._degrees.min())

    def degree_of(self, nodes: np.ndarray | int) -> np.ndarray | int:
        if np.isscalar(nodes):
            return int(self._degrees[int(nodes)])
        return self._degrees[np.asarray(nodes, dtype=np.int64)]

    def neighbors(self, node: int) -> np.ndarray:
        node = int(node)
        return self._flat_neighbors[self._offsets[node] : self._offsets[node + 1]].copy()

    def step_many(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        flat = positions.reshape(-1)
        degrees = self._degrees[flat]
        picks = (rng.random(flat.shape) * degrees).astype(np.int64)
        # Guard against the (measure-zero) case rng.random() == 1.0 exactly.
        picks = np.minimum(picks, degrees - 1)
        next_flat = self._flat_neighbors[self._offsets[flat] + picks]
        return next_flat.reshape(positions.shape)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def index_of(self, label: object) -> int:
        """Internal integer index of an original graph node label."""
        return self._label_to_index[label]

    def label_of(self, index: int) -> object:
        """Original graph node label for an internal integer index."""
        return self.node_labels[int(index)]

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[object, object]], *, name: str | None = None) -> "NetworkXTopology":
        """Build a topology directly from an edge list."""
        graph = nx.Graph()
        graph.add_edges_from(edges)
        return cls(graph, name=name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkXTopology(nodes={self.num_nodes}, edges={self.num_edges}, name={self.name!r})"


__all__ = ["NetworkXTopology"]
