"""Spectral utilities: walk matrices, eigenvalues, and mixing-time bounds.

The paper's expander bound (Lemma 23) and the burn-in analysis of the
network-size estimator (Section 5.1.4) are parameterised by
``λ = max(|λ₂|, |λ_A|)`` of the random-walk matrix. These helpers compute the
walk matrix of any topology, its second eigenvalue magnitude, and the
standard mixing-time upper bound ``O(log(1/ε') / (1 - λ))``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.topology.base import Topology


def transition_matrix(topology: Topology) -> sp.csr_matrix:
    """Random-walk transition matrix ``W`` of ``topology`` (rows sum to 1).

    ``W[i, j]`` is the probability that a walker at node ``i`` steps to node
    ``j``. The matrix is returned in CSR format; for the structured
    topologies in this library it is sparse (degree is constant and small).
    """
    size = topology.num_nodes
    rows: list[int] = []
    cols: list[int] = []
    values: list[float] = []
    for node in range(size):
        neighbors = topology.neighbors(node)
        if len(neighbors) == 0:
            raise ValueError(f"node {node} has no neighbours; walk matrix undefined")
        weight = 1.0 / len(neighbors)
        rows.extend([node] * len(neighbors))
        cols.extend(int(v) for v in neighbors)
        values.extend([weight] * len(neighbors))
    return sp.csr_matrix((values, (rows, cols)), shape=(size, size))


def second_eigenvalue_magnitude(topology: Topology) -> float:
    """``λ = max(|λ₂|, |λ_A|)`` of the walk matrix of a *regular* topology.

    For regular topologies the walk matrix is symmetric, so its eigenvalues
    are real and we can use Lanczos iterations (or a dense solve for small
    graphs). Non-regular graphs are handled by symmetrising with the degree
    weighting ``D^{-1/2} A D^{-1/2}``, which has the same spectrum as ``W``.
    """
    size = topology.num_nodes
    degrees = np.asarray(topology.degree_of(np.arange(size)), dtype=np.float64)
    walk = transition_matrix(topology)
    # Similarity transform to a symmetric matrix with identical spectrum.
    d_sqrt = np.sqrt(degrees)
    sym = sp.diags(d_sqrt) @ walk @ sp.diags(1.0 / d_sqrt)
    sym = (sym + sym.T) * 0.5

    if size <= 4096:
        # Dense solve. Deliberately used far beyond the point where Lanczos
        # becomes cheaper: ARPACK's eigsh is not bit-deterministic across
        # calls (even with a pinned v0 its restarts perturb the result at
        # the ~1e-13 level), which is enough to break the suite's
        # bit-identical-records guarantee. eigvalsh is deterministic, and
        # every eigenvalue consumer in the library (expanders up to ~2500
        # nodes, burn-in prescriptions) stays under this threshold at well
        # under two seconds per (cached) solve.
        eigenvalues = np.linalg.eigvalsh(sym.toarray())
    else:
        # Largest magnitude eigenvalues; request a few to skip the trivial
        # 1. The pinned start vector keeps repeated runs as close as ARPACK
        # allows, but bit-identity is not guaranteed on this path.
        k = min(6, size - 2)
        v0 = np.full(size, 1.0 / np.sqrt(size))
        eigenvalues = spla.eigsh(sym, k=k, which="LM", return_eigenvectors=False, v0=v0)
        eigenvalues = np.sort(eigenvalues)
    eigenvalues = np.sort(eigenvalues)
    # Drop one eigenvalue equal to 1 (the stationary eigenvector).
    top_index = int(np.argmax(eigenvalues))
    mask = np.ones(len(eigenvalues), dtype=bool)
    mask[top_index] = False
    remaining = eigenvalues[mask]
    if remaining.size == 0:
        return 0.0
    return float(np.max(np.abs(remaining)))


def spectral_gap(topology: Topology) -> float:
    """``1 - λ`` of the topology's walk matrix."""
    return 1.0 - second_eigenvalue_magnitude(topology)


def mixing_time_upper_bound(lambda_value: float, epsilon: float = 1e-3) -> int:
    """Rounds after which the walk is within ``epsilon`` of stationarity.

    Standard bound ``t >= log(1/epsilon) / (1 - λ)`` (cf. [Lov93] Theorem 5.1
    as used in Section 5.1.4). Returns at least 1.
    """
    if not 0 <= lambda_value < 1:
        raise ValueError(f"lambda_value must lie in [0, 1), got {lambda_value}")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if lambda_value == 0:
        return 1
    return max(1, int(np.ceil(np.log(1.0 / epsilon) / (1.0 - lambda_value))))


def stationary_distribution(topology: Topology) -> np.ndarray:
    """Stationary distribution of the walk: degree(v) / (2|E|)."""
    degrees = np.asarray(topology.degree_of(np.arange(topology.num_nodes)), dtype=np.float64)
    return degrees / degrees.sum()


__all__ = [
    "transition_matrix",
    "second_eigenvalue_magnitude",
    "spectral_gap",
    "mixing_time_upper_bound",
    "stationary_distribution",
]
