"""The ring (one-dimensional torus) — Section 4.2 of the paper.

On the ring, local mixing is much weaker than on the two-dimensional torus:
the re-collision probability decays only as ``O(1/sqrt(m))`` (Lemma 20), so
encounter-rate density estimation needs quadratically more rounds
(Theorem 21). The ring is included both as a substrate and as the canonical
"bad local mixing" ablation in the experiment suite.
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import RegularTopology
from repro.utils.validation import require_integer


class Ring(RegularTopology):
    """A cycle with ``size`` nodes; each node has the two adjacent neighbours."""

    name = "ring"
    degree = 2
    precomputed_steps = True
    num_step_choices = 2

    #: Draw index -> signed step, ordered so that index ``(delta > 0)``
    #: reproduces the historical ``rng.choice([-1, 1])`` values exactly.
    _DELTAS = np.array([-1, 1], dtype=np.int64)

    def __init__(self, size: int):
        require_integer(size, "size", minimum=3)
        self.size = int(size)

    @property
    def num_nodes(self) -> int:
        return self.size

    def neighbors(self, node: int) -> np.ndarray:
        return np.array([(node - 1) % self.size, (node + 1) % self.size], dtype=np.int64)

    def draw_steps(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        # `rng.choice` without probabilities is a bounded-integer draw, so
        # re-encoding its +-1 values as indices keeps the stream identical
        # to the historical `rng.choice([-1, 1])` call.
        deltas = rng.choice(self._DELTAS, size=shape)
        return (deltas > 0).astype(np.int64)

    def draw_steps_chunk(
        self, chunk: int, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        deltas = rng.choice(self._DELTAS, size=(chunk, *shape))
        return (deltas > 0).astype(np.int64)

    def apply_steps(self, positions: np.ndarray, draws: np.ndarray) -> np.ndarray:
        return (positions + self._DELTAS[draws]) % self.size

    def step_many(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        return self.apply_steps(positions, self.draw_steps(positions.shape, rng))

    def ring_distance(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
        """Shortest-path distance between node labels ``a`` and ``b`` on the cycle."""
        diff = np.abs(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64))
        return np.minimum(diff, self.size - diff)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ring(size={self.size})"


__all__ = ["Ring"]
