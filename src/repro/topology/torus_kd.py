"""k-dimensional tori — Section 4.3 of the paper.

For any constant ``k >= 3``, local mixing is strong enough that random-walk
density estimation matches independent sampling up to constants (the
re-collision probability decays as ``O(1/(m+1)^{k/2})``, Lemma 22), even
though the torus still mixes slowly globally. The class also covers
``k = 1`` (a ring) and ``k = 2`` (the standard torus) for uniformity, which
the tests exploit to cross-check against :class:`~repro.topology.Ring` and
:class:`~repro.topology.Torus2D`.
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import RegularTopology
from repro.utils.validation import require_integer


class TorusKD(RegularTopology):
    """A ``side^k`` torus in ``k`` dimensions.

    Nodes are encoded in mixed radix: the node with coordinates
    ``(x_0, ..., x_{k-1})`` is ``sum_i x_i * side**i``.

    Parameters
    ----------
    side:
        Number of nodes along each axis (>= 2; use >= 3 to avoid the
        degenerate case where +1 and -1 moves coincide).
    dims:
        Number of dimensions ``k`` (>= 1).
    """

    name = "torus_kd"
    precomputed_steps = True

    #: Index -> signed delta; index parity ``(delta > 0)`` matches the
    #: historical ``rng.choice([-1, 1])`` encoding.
    _DELTAS = np.array([-1, 1], dtype=np.int64)

    def __init__(self, side: int, dims: int):
        require_integer(side, "side", minimum=2)
        require_integer(dims, "dims", minimum=1)
        self.side = int(side)
        self.dims = int(dims)
        self.degree = 2 * self.dims
        self.num_step_choices = 2 * self.dims
        self._num_nodes = self.side**self.dims
        # Precompute the radix multipliers for encode/decode.
        self._radix = self.side ** np.arange(self.dims, dtype=np.int64)
        self.name = f"torus_{self.dims}d"

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    # ------------------------------------------------------------------
    # Node encoding
    # ------------------------------------------------------------------
    def encode(self, coordinates: np.ndarray) -> np.ndarray:
        """Encode an ``(..., dims)`` coordinate array into node labels."""
        coordinates = np.mod(np.asarray(coordinates, dtype=np.int64), self.side)
        return coordinates @ self._radix

    def decode(self, nodes: np.ndarray | int) -> np.ndarray:
        """Decode node labels into an ``(..., dims)`` coordinate array."""
        nodes = np.asarray(nodes, dtype=np.int64)
        coords = np.empty(nodes.shape + (self.dims,), dtype=np.int64)
        remaining = nodes.copy()
        for axis in range(self.dims):
            coords[..., axis] = remaining % self.side
            remaining //= self.side
        return coords

    # ------------------------------------------------------------------
    # Walk dynamics
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        coords = self.decode(np.asarray(node))
        result = np.empty(2 * self.dims, dtype=np.int64)
        index = 0
        for axis in range(self.dims):
            for delta in (-1, 1):
                shifted = coords.copy()
                shifted[axis] = (shifted[axis] + delta) % self.side
                result[index] = self.encode(shifted)
                index += 1
        return result

    def draw_steps(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        # Two interleaved generator calls per round (axis, then sign): the
        # values are packed as ``axis * 2 + (delta > 0)``. Because the calls
        # interleave, chunked drawing cannot be collapsed into two bulk
        # draws without reordering the stream — this topology therefore
        # keeps the base class's per-round ``draw_steps_chunk``.
        axes = rng.integers(0, self.dims, size=shape)
        deltas = rng.choice(self._DELTAS, size=shape)
        return axes * 2 + (deltas > 0)

    def apply_steps(self, positions: np.ndarray, draws: np.ndarray) -> np.ndarray:
        coords = self.decode(positions)
        flat_coords = coords.reshape(-1, self.dims)
        flat_draws = np.asarray(draws).reshape(-1)
        flat_axes = flat_draws >> 1
        flat_deltas = self._DELTAS[flat_draws & 1]
        row_index = np.arange(flat_coords.shape[0])
        flat_coords[row_index, flat_axes] = (
            flat_coords[row_index, flat_axes] + flat_deltas
        ) % self.side
        return self.encode(flat_coords.reshape(coords.shape)).reshape(np.shape(positions))

    def step_many(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        return self.apply_steps(positions, self.draw_steps(positions.shape, rng))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TorusKD(side={self.side}, dims={self.dims})"


__all__ = ["TorusKD"]
