"""The complete graph — the paper's "independent sampling" ideal (Section 1.1).

On the complete graph an agent's location in successive rounds is essentially
independent, so its collision indicators are Bernoulli samples of the density
and the Chernoff bound gives ``t = O(log(1/δ)/(d ε²))`` rounds. Every other
topology's accuracy is measured against this ideal in the experiment suite.
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import RegularTopology
from repro.utils.validation import require_integer


class CompleteGraph(RegularTopology):
    """Complete graph on ``size`` nodes; a step moves to a uniform *other* node."""

    name = "complete"
    precomputed_steps = True

    def __init__(self, size: int):
        require_integer(size, "size", minimum=2)
        self.size = int(size)
        self.degree = self.size - 1
        self.num_step_choices = self.size - 1

    @property
    def num_nodes(self) -> int:
        return self.size

    def neighbors(self, node: int) -> np.ndarray:
        node = int(node)
        return np.array([v for v in range(self.size) if v != node], dtype=np.int64)

    def draw_steps(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.size - 1, size=shape)

    def draw_steps_chunk(
        self, chunk: int, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        return rng.integers(0, self.size - 1, size=(chunk, *shape))

    def apply_steps(self, positions: np.ndarray, draws: np.ndarray) -> np.ndarray:
        # Sample uniformly from the other size-1 nodes: a draw from
        # [0, size-1) is shifted up by one when >= the current position.
        return np.where(draws >= positions, draws + 1, draws).astype(np.int64)

    def step_many(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        return self.apply_steps(positions, self.draw_steps(positions.shape, rng))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompleteGraph(size={self.size})"


__all__ = ["CompleteGraph"]
