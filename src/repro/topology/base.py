"""Abstract topology interface.

A topology is a finite graph whose nodes are labelled ``0 .. num_nodes - 1``.
Agents occupy nodes and move by stepping to a uniformly random neighbour each
round (the random-walk model of Section 2 of the paper).

The interface is deliberately array-first: ``step_many`` maps an array of
current positions to an array of next positions in one vectorised call, which
is what makes simulating thousands of agents for thousands of rounds cheap in
pure Python + NumPy.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class Topology(abc.ABC):
    """Base class for all walkable topologies.

    Subclasses must provide :attr:`num_nodes`, :meth:`degree_of`,
    :meth:`neighbors`, and :meth:`step_many`. Regular topologies should
    additionally subclass :class:`RegularTopology`.

    Topologies whose random-walk step factors into "draw an index, then
    apply a deterministic displacement" may additionally declare the
    ``precomputed_steps`` capability (see :meth:`draw_steps`), which lets
    the fused kernel fast path (:mod:`repro.core.fastpath`) draw many
    rounds of randomness at once and apply steps through precomputed
    displacement tables.
    """

    #: Human-readable name used in experiment tables.
    name: str = "topology"

    #: The ``precomputed_steps`` capability: ``True`` when the walk step
    #: decomposes into :meth:`draw_steps` + :meth:`apply_steps` with
    #: *bit-identical* stream consumption to :meth:`step_many`. Declaring
    #: it obliges the subclass to implement both methods, to set
    #: :attr:`num_step_choices`, and to route its own ``step_many``
    #: through the pair so the decomposition can never drift.
    precomputed_steps: bool = False

    #: Number of distinct values :meth:`draw_steps` may return (draws lie
    #: in ``[0, num_step_choices)``); ``None`` without the capability.
    num_step_choices: int | None = None

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Total number of nodes (the quantity ``A`` in the paper)."""

    @property
    def is_regular(self) -> bool:
        """Whether all nodes have the same degree.

        Regularity is what keeps the stationary distribution uniform, which
        the density-estimation analysis relies on (Lemma 2 / Section 4.1).
        """
        return False

    @abc.abstractmethod
    def degree_of(self, nodes: np.ndarray | int) -> np.ndarray | int:
        """Degree of each node in ``nodes`` (scalar in, scalar out)."""

    @abc.abstractmethod
    def neighbors(self, node: int) -> np.ndarray:
        """Array of neighbours of ``node`` (used by tests and the oracle)."""

    @abc.abstractmethod
    def step_many(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance every position by one uniformly random neighbour step.

        Parameters
        ----------
        positions:
            Integer array of current node labels, of **any shape**. In
            particular implementations must accept the ``(replicates,
            agents)`` matrices carried by the batched execution engine
            (:mod:`repro.engine.batch`), so batching needs no per-topology
            special cases; every entry is stepped independently.
        rng:
            Generator supplying the randomness.

        Returns
        -------
        numpy.ndarray
            Array of the same shape with the new node labels.
        """

    # ------------------------------------------------------------------
    # The precomputed_steps capability
    # ------------------------------------------------------------------
    def draw_steps(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Draw one round of step choices, consuming the stream like ``step_many``.

        Returns an integer array of ``shape`` with values in
        ``[0, num_step_choices)``. The contract (the **bit-identity stream
        contract**, see TESTING.md) is exact, not distributional:
        ``apply_steps(p, draw_steps(p.shape, rng))`` must equal
        ``step_many(p, rng)`` *and* leave ``rng`` in the same state.
        Capability-declaring subclasses therefore implement ``step_many``
        as exactly that composition.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not declare the precomputed_steps capability"
        )

    def draw_steps_chunk(
        self, chunk: int, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``chunk`` rounds of step choices as one ``(chunk, *shape)`` array.

        Row ``k`` must be bit-identical to the ``k``-th of ``chunk``
        sequential :meth:`draw_steps` calls, and the generator must end in
        the same state. The default implementation draws round by round,
        which satisfies the contract for *any* topology (including those
        whose per-round draw interleaves several generator calls, like
        :class:`~repro.topology.TorusKD`); subclasses whose draw is a
        single generator call override this with one vectorised draw —
        NumPy's bounded-integer samplers consume the stream element by
        element in C order, so one ``(chunk, *shape)`` draw is
        bit-identical to ``chunk`` consecutive ``shape`` draws.
        """
        return np.stack([self.draw_steps(shape, rng) for _ in range(chunk)])

    def apply_steps(self, positions: np.ndarray, draws: np.ndarray) -> np.ndarray:
        """Deterministically apply drawn step choices to positions.

        Pure (no randomness): ``apply_steps(p, d)`` maps current node
        labels ``p`` and draw indices ``d`` (same shape) to next labels.
        The fused kernel may tabulate this function over all
        ``(node, choice)`` pairs, so it must be elementwise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not declare the precomputed_steps capability"
        )

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def uniform_nodes(
        self, count: int | tuple[int, ...], seed: SeedLike = None
    ) -> np.ndarray:
        """Place ``count`` agents independently and uniformly at random.

        This is the initial placement assumed throughout Section 2 of the
        paper ("each agent is placed independently at a uniform random node").
        ``count`` may also be a shape tuple — the batched engine uses
        ``(replicates, agents)`` to draw every replicate's placement at once.
        """
        rng = as_generator(seed)
        return rng.integers(0, self.num_nodes, size=count, dtype=np.int64)

    def stationary_nodes(
        self, count: int | tuple[int, ...], seed: SeedLike = None
    ) -> np.ndarray:
        """Sample ``count`` independent nodes from the walk's stationary law.

        For regular topologies this is the uniform distribution; non-regular
        topologies weight each node by its degree (Section 5.1). Like
        :meth:`uniform_nodes`, ``count`` may be a shape tuple.
        """
        if self.is_regular:
            return self.uniform_nodes(count, seed)
        rng = as_generator(seed)
        degrees = np.asarray(self.degree_of(np.arange(self.num_nodes)), dtype=np.float64)
        probabilities = degrees / degrees.sum()
        return rng.choice(self.num_nodes, size=count, p=probabilities).astype(np.int64)

    def walk(self, start: int, steps: int, seed: SeedLike = None) -> np.ndarray:
        """Simulate a single random walk and return its path.

        Returns an array of length ``steps + 1`` whose first entry is
        ``start`` and whose ``r``-th entry is the position after ``r`` steps.
        """
        rng = as_generator(seed)
        path = np.empty(steps + 1, dtype=np.int64)
        path[0] = start
        position = np.asarray([start], dtype=np.int64)
        for step_index in range(1, steps + 1):
            position = self.step_many(position, rng)
            path[step_index] = position[0]
        return path

    def validate_nodes(self, nodes: np.ndarray) -> None:
        """Raise ``ValueError`` if any label in ``nodes`` is out of range."""
        nodes = np.asarray(nodes)
        if nodes.size == 0:
            return
        if nodes.min() < 0 or nodes.max() >= self.num_nodes:
            raise ValueError(
                f"node labels must lie in [0, {self.num_nodes}), "
                f"got range [{nodes.min()}, {nodes.max()}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_nodes={self.num_nodes})"


class RegularTopology(Topology):
    """A topology where every node has the same degree.

    Subclasses set :attr:`degree` once; ``degree_of`` then broadcasts it.
    """

    #: The common node degree.
    degree: int = 0

    @property
    def is_regular(self) -> bool:
        return True

    def degree_of(self, nodes: np.ndarray | int) -> np.ndarray | int:
        if np.isscalar(nodes):
            return self.degree
        return np.full(np.shape(nodes), self.degree, dtype=np.int64)


def as_node_array(nodes: Sequence[int] | np.ndarray) -> np.ndarray:
    """Convert a node sequence to a contiguous ``int64`` array."""
    return np.ascontiguousarray(np.asarray(nodes, dtype=np.int64))


__all__ = ["Topology", "RegularTopology", "as_node_array"]
