"""The k-dimensional hypercube — Section 4.5 of the paper.

Nodes are the ``2**k`` bit strings of length ``k``; a random-walk step flips
one uniformly random bit. The paper shows the re-collision probability decays
geometrically, ``P <= (9/10)^{m-1} + 1/sqrt(A)`` (Lemma 25), so density
estimation matches independent sampling up to constants.
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import RegularTopology
from repro.utils.validation import require_integer


class Hypercube(RegularTopology):
    """The hypercube on ``2**dims`` vertices with bit-flip random-walk steps."""

    name = "hypercube"
    precomputed_steps = True

    def __init__(self, dims: int):
        require_integer(dims, "dims", minimum=1)
        if dims > 62:
            raise ValueError(f"dims must be <= 62 to fit in int64 labels, got {dims}")
        self.dims = int(dims)
        self.degree = self.dims
        self.num_step_choices = self.dims
        self._num_nodes = 1 << self.dims

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def neighbors(self, node: int) -> np.ndarray:
        node = int(node)
        return np.array([node ^ (1 << bit) for bit in range(self.dims)], dtype=np.int64)

    def draw_steps(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.dims, size=shape)

    def draw_steps_chunk(
        self, chunk: int, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        return rng.integers(0, self.dims, size=(chunk, *shape))

    def apply_steps(self, positions: np.ndarray, draws: np.ndarray) -> np.ndarray:
        return positions ^ (np.int64(1) << draws)

    def step_many(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        return self.apply_steps(positions, self.draw_steps(positions.shape, rng))

    def hamming_distance(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
        """Number of differing bits between node labels ``a`` and ``b``."""
        xor = np.bitwise_xor(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
        return np.vectorize(lambda v: bin(int(v)).count("1"))(xor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypercube(dims={self.dims})"


__all__ = ["Hypercube"]
