"""Command-line interface for the reproduction.

Usage (after installing the package)::

    python -m repro list                      # list all experiments
    python -m repro run E03                   # run one experiment (full scale)
    python -m repro run E03 --quick           # scaled-down configuration
    python -m repro run all --quick           # the whole suite
    python -m repro report --output EXPERIMENTS.md
                                              # regenerate the markdown report

The CLI is a thin layer over :mod:`repro.experiments`; anything it can do is
also available programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.report import generate_report
from repro.utils.serialization import dumps


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ant-inspired density estimation via random walks: experiment runner",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all experiments and what they reproduce")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. E03, or 'all'")
    run_parser.add_argument("--quick", action="store_true", help="use the scaled-down configuration")
    run_parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    run_parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    run_parser.add_argument(
        "--figure",
        action="store_true",
        help="also print the experiment's default ASCII figure (where one is defined)",
    )

    report_parser = subparsers.add_parser("report", help="regenerate the markdown experiment report")
    report_parser.add_argument("--quick", action="store_true", help="use scaled-down configurations")
    report_parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    report_parser.add_argument(
        "--output", default="-", help="output file (default: '-' for standard output)"
    )
    return parser


def _command_list() -> int:
    for experiment_id in sorted(EXPERIMENTS):
        module, _ = EXPERIMENTS[experiment_id]
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id}  {summary}")
    return 0


def _command_run(experiment: str, quick: bool, seed: int, as_json: bool, figure: bool) -> int:
    ids = sorted(EXPERIMENTS) if experiment.lower() == "all" else [experiment]
    for experiment_id in ids:
        result = run_experiment(experiment_id, quick=quick, seed=seed)
        if as_json:
            print(dumps({"experiment": result.experiment_id, "records": result.records, "notes": result.notes}))
        else:
            print(result.to_table())
            if figure:
                from repro.experiments.figures import default_figure

                rendered = default_figure(result)
                if rendered is not None:
                    print()
                    print(rendered)
            print()
    return 0


def _command_report(quick: bool, seed: int, output: str) -> int:
    text = generate_report(quick=quick, seed=seed)
    if output == "-":
        print(text)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro``."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        try:
            return _command_run(args.experiment, args.quick, args.seed, args.json, args.figure)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "report":
        return _command_report(args.quick, args.seed, args.output)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
