"""Command-line interface for the reproduction.

Usage (after installing the package)::

    python -m repro list                      # list all experiments
    python -m repro run E03                   # run one experiment (full scale)
    python -m repro run E03 --quick           # scaled-down configuration
    python -m repro run all --quick           # the whole suite
    python -m repro run all --workers 4       # fan trials out over 4 processes
    python -m repro run all --cache-dir .repro-cache
                                              # skip settings already computed
    python -m repro report --output EXPERIMENTS.md
                                              # regenerate the markdown report
    python -m repro scenario list             # list the dynamic-scenario catalog
    python -m repro scenario run --scenario crash --json
                                              # per-round anytime density tracking
    python -m repro sweep run --spec sweep.json --store results/
                                              # run a declarative parameter sweep
    python -m repro sweep resume --spec sweep.json --store results/
                                              # finish an interrupted sweep (no recompute)
    python -m repro sweep status --spec sweep.json --store results/
    python -m repro sweep run --spec sweep.json --store shard0/ --shard 0/2
                                              # run only shard 0's cell slice (machine 1 of 2)
    python -m repro store merge shard0/ shard1/ --into results/
                                              # union shard stores, byte-identical to unsharded
    python -m repro store query --store results/ --where target=E02 \
        --aggregate mean:empirical_epsilon --by target_density
    python -m repro store export --store results/ --output rows.csv
    python -m repro report --from-store results/
                                              # regenerate the report without re-running

``--workers`` selects the execution engine's process count. Every
experiment executes through the engine — its grid expands into execution
plan cells, and replicate-heavy cells run the batched simulation kernel —
and records are bit-identical for every worker count, so the flag only
changes wall-clock.
``--backend`` selects the simulation kernel backend
(``auto``/``reference``/``fused``/``analytic``; see
:mod:`repro.core.fastpath` and :mod:`repro.core.analytic`). The simulating
backends produce bit-identical records, so for them the flag only changes
wall-clock and is excluded from cache keys. ``analytic`` is different: it
*solves* the encounter process (exact expectations, O(1) in replicates)
instead of sampling it, so its records differ from simulation, it is
folded into cache keys, and it fails with a clean error on workloads
outside its solvable regime (noise models, dynamic scenarios, irregular
topologies). The chosen backend is forwarded to ``--workers`` subprocesses.
``--shard-workers K`` turns on intra-kernel sharding: each batched
``(R, n)`` kernel call splits into ``K`` contiguous replicate-row shards
on a thread pool (:mod:`repro.core.shardpath`). Results are bit-identical
for every ``K`` — rows are seeded from per-replicate SeedSequence
children — but differ from unsharded runs (a different RNG discipline),
so the *sharded* discipline joins the cache key while ``K`` itself does
not. Forwarded to ``--workers`` subprocesses like the backend.
``--cache-dir`` points at a content-addressed run store
(:class:`repro.engine.RunCache`): a completed (experiment, config, seed)
setting is loaded from disk instead of re-simulated. Sweeps checkpoint
every completed cell through the same cache (default ``<store>/cache``),
which is what makes ``sweep resume`` recompute nothing.

With ``--json``, a single experiment prints one JSON object; several
experiments (e.g. ``run all``) print a single JSON **array** of those
objects, so the output is machine-parseable end to end.

The CLI is a thin layer over :mod:`repro.experiments`; anything it can do is
also available programmatically.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from pathlib import Path
from typing import Sequence

from repro import __version__
from repro.analysis.aggregate import aggregate_stream, parse_metric
from repro.dynamics.scenario import SCENARIOS, scenario_names
from repro.engine import (
    KERNEL_BACKENDS,
    ExecutionEngine,
    RunCache,
    set_default_backend,
    set_default_shard_workers,
)
from repro.experiments import EXPERIMENTS
from repro.experiments.base import ExperimentResult
from repro.experiments.report import generate_report
from repro.obs.telemetry import TelemetryRecorder, set_telemetry
from repro.serve.submit import Submission, result_from_payload, run_submission
from repro.store import ResultStore, StoreError, merge_stores
from repro.sweeps import load_spec, parse_shard, run_sweep_spec, sweep_status
from repro.utils.serialization import dumps, rows_to_csv
from repro.utils.tables import format_records

#: Exit code of ``repro bench history`` when a perf regression is flagged
#: (2 = CLI error, 3 = incomplete sweep are already taken).
_EXIT_REGRESSION = 4

#: The CLI's progress/diagnostic reporter. Progress lines emit at INFO —
#: the default level, so default stderr output is byte-identical to the
#: historical ``print(..., file=sys.stderr)`` form — and extra diagnostics
#: emit at DEBUG, visible only under ``--verbose``. ``--quiet`` raises the
#: threshold to WARNING, silencing progress without touching stdout.
_LOGGER = logging.getLogger("repro")


def _configure_logging(verbose: bool, quiet: bool) -> None:
    """(Re)configure the CLI reporter; idempotent across repeated main() calls."""
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    _LOGGER.handlers.clear()
    _LOGGER.addHandler(handler)
    _LOGGER.propagate = False
    if quiet:
        _LOGGER.setLevel(logging.WARNING)
    elif verbose:
        _LOGGER.setLevel(logging.DEBUG)
    else:
        _LOGGER.setLevel(logging.INFO)


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ant-inspired density estimation via random walks: experiment runner",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also emit diagnostic detail on stderr (cache keys, telemetry paths, ...)",
    )
    verbosity.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress progress reporting on stderr (results on stdout are unaffected)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list all experiments and what they reproduce")
    list_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable registry (ids, summaries, config schemas)",
    )

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. E03, or 'all'")
    run_parser.add_argument("--quick", action="store_true", help="use the scaled-down configuration")
    run_parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="emit JSON instead of a table (an array when running several experiments)",
    )
    run_parser.add_argument(
        "--figure",
        action="store_true",
        help="also print the experiment's default ASCII figure (where one is defined)",
    )

    report_parser = subparsers.add_parser("report", help="regenerate the markdown experiment report")
    report_parser.add_argument("--quick", action="store_true", help="use scaled-down configurations")
    report_parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    report_parser.add_argument(
        "--output", default="-", help="output file (default: '-' for standard output)"
    )
    report_parser.add_argument(
        "--from-store",
        default=None,
        metavar="DIR",
        help="regenerate the report from a result store instead of re-running anything",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="declarative, resumable parameter sweeps over experiments and scenarios"
    )
    sweep_sub = sweep_parser.add_subparsers(dest="sweep_command", required=True)
    sweep_common = []
    for command, help_text in (
        ("run", "run every cell of a sweep spec (skipping cells already cached)"),
        ("resume", "finish an interrupted sweep; recomputes nothing already checkpointed"),
        ("status", "show which cells are cached / stored without running anything"),
    ):
        sub = sweep_sub.add_parser(command, help=help_text)
        sub.add_argument("--spec", required=True, metavar="FILE", help="sweep spec JSON file")
        sub.add_argument(
            "--store", required=True, metavar="DIR", help="result store directory (rows + provenance)"
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="per-cell checkpoint cache (default: <store>/cache)",
        )
        sub.add_argument("--json", action="store_true", help="emit a JSON summary instead of text")
        sweep_common.append(sub)
    for sub in sweep_common[:2]:  # run and resume execute cells; status never does
        sub.add_argument(
            "--workers",
            type=_positive_int,
            default=1,
            metavar="N",
            help="worker processes for the sweep's one flat plan (results identical for any N)",
        )
        sub.add_argument(
            "--max-cells",
            type=_positive_int,
            default=None,
            metavar="N",
            help="compute at most N new cells, then stop (deterministic interruption for tests/CI)",
        )
        sub.add_argument(
            "--shard",
            default=None,
            metavar="I/N",
            help=(
                "run only shard I's contiguous cell slice of the same flat plan (cell seeds "
                "untouched); merge the N shard stores with 'repro store merge'"
            ),
        )

    store_parser = subparsers.add_parser("store", help="query and export a persistent result store")
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)
    query_parser = store_sub.add_parser("query", help="select (and optionally aggregate) store rows")
    query_parser.add_argument("--store", required=True, metavar="DIR", help="result store directory")
    query_parser.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="COL=VALUE",
        help="equality filter, repeatable (numeric strings match numeric values)",
    )
    query_parser.add_argument(
        "--columns", default=None, metavar="A,B,C", help="comma-separated column projection"
    )
    query_parser.add_argument(
        "--aggregate",
        action="append",
        default=[],
        metavar="STAT:COL",
        help="aggregate metric (mean/std/var/min/max/sum/median/count), repeatable",
    )
    query_parser.add_argument(
        "--by", action="append", default=[], metavar="COL", help="group-by column, repeatable"
    )
    query_parser.add_argument(
        "--limit", type=_positive_int, default=None, metavar="N", help="return at most N rows"
    )
    query_format = query_parser.add_mutually_exclusive_group()
    query_format.add_argument("--json", action="store_true", help="emit rows as a JSON array")
    query_format.add_argument("--csv", action="store_true", help="emit rows as CSV")
    merge_parser = store_sub.add_parser(
        "merge",
        help=(
            "union the segments of several stores (e.g. sweep shards) into one — "
            "idempotent, and byte-identical to the unsharded run"
        ),
    )
    merge_parser.add_argument(
        "sources", nargs="+", metavar="SRC", help="source store directories to merge"
    )
    merge_parser.add_argument(
        "--into", required=True, metavar="DIR", help="destination store directory"
    )
    merge_parser.add_argument(
        "--json", action="store_true", help="emit the merge summary as JSON"
    )
    export_parser = store_sub.add_parser("export", help="dump every store row to CSV or NDJSON")
    export_parser.add_argument("--store", required=True, metavar="DIR", help="result store directory")
    export_parser.add_argument("--output", required=True, metavar="FILE", help="output file")
    export_parser.add_argument(
        "--format", default="csv", choices=("csv", "ndjson"), help="output format (default: csv)"
    )
    export_parser.add_argument(
        "--columns", default=None, metavar="A,B,C", help="comma-separated column projection"
    )

    scenario_parser = subparsers.add_parser(
        "scenario", help="time-varying scenarios with online (anytime) density tracking"
    )
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command", required=True)
    scenario_list = scenario_sub.add_parser("list", help="list the scenario catalog")
    scenario_list.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable catalog (names, descriptions, geometry)",
    )
    scenario_run = scenario_sub.add_parser(
        "run", help="run one scenario and emit per-round tracking records"
    )
    scenario_run.add_argument(
        "--scenario", required=True, metavar="NAME", help="catalog scenario name (see 'scenario list')"
    )
    scenario_run.add_argument(
        "--rounds", type=_positive_int, default=None, metavar="T",
        help="override the scenario horizon (events rescale with it)",
    )
    scenario_run.add_argument(
        "--replicates", type=_positive_int, default=8, metavar="R",
        help=(
            "independent replicates to average over (default: 8); any positive count is "
            "exact — values not divisible by the 4-replicate batch chunk run an exact "
            "remainder chunk, never rounding"
        ),
    )
    scenario_run.add_argument("--quick", action="store_true", help="use the scaled-down configuration")
    scenario_run.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    scenario_run.add_argument(
        "--json", action="store_true", help="emit one JSON object with per-round records"
    )

    bench_parser = subparsers.add_parser(
        "bench", help="benchmark-artifact observatory (perf trajectories over builds)"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)
    history_parser = bench_sub.add_parser(
        "history",
        help=(
            "ingest BENCH_*.json artifacts into a history store and flag statistically "
            "significant perf regressions (two-window Welch-z detector)"
        ),
    )
    history_parser.add_argument(
        "artifacts",
        nargs="*",
        metavar="BENCH.json",
        help="bench artifacts to ingest before scanning (idempotent; may be empty)",
    )
    history_parser.add_argument(
        "--store", required=True, metavar="DIR", help="bench-history result store directory"
    )
    history_parser.add_argument(
        "--metric",
        default="median_seconds",
        metavar="COL",
        help=(
            "record metric to scan (default: median_seconds); metrics with "
            "'seconds'/'time' in the name regress upward, rates like speedup downward"
        ),
    )
    history_parser.add_argument(
        "--window",
        type=_positive_int,
        default=4,
        metavar="W",
        help="detector window: compares the last W points against the W before them (default: 4)",
    )
    history_parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        metavar="F",
        help="relative shift the window means must exceed (default: 0.25)",
    )
    history_parser.add_argument(
        "--z",
        type=float,
        default=4.5,
        metavar="Z",
        help="Welch z-score the shift must also exceed (default: 4.5)",
    )
    history_parser.add_argument(
        "--json", action="store_true", help="emit the full scan report as JSON"
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the async job daemon (HTTP API + SSE round-stream)"
    )
    serve_parser.add_argument(
        "serve_command",
        nargs="?",
        choices=("schema",),
        default=None,
        help="'schema' dumps the generated OpenAPI document instead of serving",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="TCP port (default: 8765; 0 picks a free port)"
    )
    serve_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        metavar="N",
        help=(
            "job worker threads draining the queue (default: 2). Jobs run on an "
            "in-process engine so per-round streaming works; results are "
            "bit-identical for any worker count"
        ),
    )
    serve_parser.add_argument(
        "--state-dir",
        default=".repro-serve",
        metavar="DIR",
        help="daemon state: job records under DIR/jobs, result cache under DIR/cache",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared content-addressed result cache (default: <state-dir>/cache); "
        "identical concurrent submissions dedupe to one execution through it",
    )
    serve_parser.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=64,
        metavar="N",
        help="max queued jobs before submissions get 503 + Retry-After (default: 64)",
    )
    serve_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="R",
        help="per-client submissions/second; exceeding it gets 429 + Retry-After "
        "(default: unlimited)",
    )
    serve_parser.add_argument(
        "--burst",
        type=_positive_int,
        default=10,
        metavar="N",
        help="per-client token-bucket burst size (default: 10; only with --rate)",
    )

    for sub in (run_parser, report_parser, scenario_run):
        sub.add_argument(
            "--workers",
            type=_positive_int,
            default=1,
            metavar="N",
            help=(
                "engine worker processes; every experiment fans out through the "
                "engine (default: 1; results are identical for any N)"
            ),
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="content-addressed run cache; completed settings are loaded, not re-run",
        )
    for sub in sweep_common[:2] + [run_parser, report_parser, scenario_run, serve_parser]:
        sub.add_argument(
            "--backend",
            default=None,
            choices=KERNEL_BACKENDS,
            help=(
                "simulation kernel backend (default: auto). auto/reference/"
                "fused simulate and are bit-identical — only wall-clock "
                "changes. analytic solves the process instead (exact "
                "expectation curves, O(1) in replicates); it changes records, "
                "joins the cache key, and errors cleanly on unsupported "
                "workloads (noise, dynamics, irregular topologies)"
            ),
        )
        sub.add_argument(
            "--telemetry",
            default=None,
            metavar="DIR",
            help=(
                "record structured telemetry (counters, timers, spans) into DIR: "
                "events.jsonl + summary.json. Observation-only — results are "
                "bit-identical with or without it"
            ),
        )
        sub.add_argument(
            "--shard-workers",
            type=_positive_int,
            default=None,
            metavar="K",
            help=(
                "intra-kernel sharding: split each batched (R, n) kernel call "
                "into K contiguous replicate-row shards on a thread pool "
                "(default: off). Results are bit-identical for every K — each "
                "replicate row is seeded from its own SeedSequence child — "
                "but differ from unsharded runs (different RNG discipline), "
                "so the flag joins the cache key. Requires a fused backend; "
                "round-hook scenarios fall back to the unsharded loop"
            ),
        )
    return parser


def _command_list(as_json: bool = False) -> int:
    if as_json:
        # The same serialization path the serve API and its schema
        # generator use, so CLI listings can never drift from /experiments.
        from repro.serve.schema import experiment_listing

        print(dumps(experiment_listing()))
        return 0
    for experiment_id in sorted(EXPERIMENTS):
        module, _ = EXPERIMENTS[experiment_id]
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id}  {summary}")
    return 0


def _run_one_cached(
    experiment_id: str, *, quick: bool, seed: int, engine: ExecutionEngine, cache: RunCache | None
) -> tuple[ExperimentResult, bool]:
    """Run one experiment through the shared submission path.

    The same :class:`~repro.serve.submit.Submission` the serve daemon
    executes — so a run completed here is a cache hit for an identical HTTP
    submission (and vice versa), and concurrent identical runs single-flight
    through :meth:`RunCache.get_or_compute`. Returns (result, was_cache_hit).
    """
    submission = Submission(kind="experiment", name=experiment_id, quick=quick, seed=seed)
    payload, status = run_submission(submission, cache=cache, engine=engine)
    return result_from_payload(payload), status == "hit"


def _open_cache(cache_dir: str | None) -> RunCache | None:
    """Build the run cache, rejecting unusable paths before any work is done."""
    if not cache_dir:
        return None
    path = Path(cache_dir)
    if path.exists() and not path.is_dir():
        raise ValueError(f"--cache-dir {cache_dir!r} exists and is not a directory")
    return RunCache(path)


def _command_run(
    experiment: str,
    quick: bool,
    seed: int,
    as_json: bool,
    figure: bool,
    workers: int,
    cache_dir: str | None,
) -> int:
    # Normalise the id up front so cache keys and registry lookups agree
    # ('e01' and 'E01' must hit the same cache entry).
    running_all = experiment.lower() == "all"
    ids = sorted(EXPERIMENTS) if running_all else [experiment.upper()]
    engine = ExecutionEngine(workers=workers)
    cache = _open_cache(cache_dir)
    json_payloads = []
    failures: list[tuple[str, Exception]] = []
    for experiment_id in ids:
        try:
            result, cached = _run_one_cached(
                experiment_id, quick=quick, seed=seed, engine=engine, cache=cache
            )
        except Exception as error:
            # When running the whole suite, one broken experiment must not
            # abort the rest: collect the failure, keep going, and report
            # (with a non-zero exit) at the end. A single named experiment
            # keeps the fail-fast behaviour.
            if not running_all:
                raise
            failures.append((experiment_id, error))
            print(f"error: [{experiment_id}] {error}", file=sys.stderr)
            if as_json:
                json_payloads.append({"experiment": experiment_id, "error": str(error)})
            continue
        if as_json:
            json_payloads.append(
                {"experiment": result.experiment_id, "records": result.records, "notes": result.notes}
            )
            continue
        if cached:
            print(f"[{result.experiment_id}] (cached)")
        print(result.to_table())
        if figure:
            from repro.experiments.figures import default_figure

            rendered = default_figure(result)
            if rendered is not None:
                print()
                print(rendered)
        print()
    if as_json:
        # One object for a single experiment (stable interface); a single
        # JSON array -- not bare concatenated objects -- for several.
        print(dumps(json_payloads[0] if len(json_payloads) == 1 else json_payloads))
    if failures:
        failed_ids = ", ".join(experiment_id for experiment_id, _ in failures)
        print(
            f"error: {len(failures)} of {len(ids)} experiments failed: {failed_ids}",
            file=sys.stderr,
        )
        return 1
    return 0


def _command_scenario_list(as_json: bool = False) -> int:
    if as_json:
        from repro.serve.schema import scenario_listing

        print(dumps(scenario_listing()))
        return 0
    for name in scenario_names():
        print(f"{name:18s} {SCENARIOS[name].description}")
    return 0


def _command_scenario_run(
    name: str,
    rounds: int | None,
    replicates: int,
    quick: bool,
    seed: int,
    as_json: bool,
    workers: int,
    cache_dir: str | None,
) -> int:
    # The same shared submission path as `run` (see _run_one_cached).
    submission = Submission(
        kind="scenario", name=name, rounds=rounds, replicates=replicates, quick=quick, seed=seed
    )
    scenario = submission.build_scenario()
    engine = ExecutionEngine(workers=workers)
    cache = _open_cache(cache_dir)
    payload, status = run_submission(submission, cache=cache, engine=engine)
    cached = status == "hit"
    if as_json:
        print(dumps(payload))
        return 0
    if cached:
        print(f"[{name}] (cached)")
    records = payload["records"]
    # Thin long runs for terminal display; --json always carries every round.
    stride = max(1, len(records) // 20)
    shown = records[stride - 1 :: stride]
    title = f"[{name}] {scenario.description} ({payload['replicates']} replicates)"
    columns = [
        "round",
        "population",
        "true_density",
        "running",
        "window",
        "discounted",
        "ci_low",
        "ci_high",
        "change_fraction",
    ]
    print(format_records(shown, columns=columns, float_format=".4g", title=title))
    summary = payload["summary"]
    print(
        f"note: total change flags: {summary['total_changes_flagged']} across "
        f"{payload['replicates']} replicates"
    )
    for tracker, error in summary["mean_relative_error"].items():
        print(f"note: mean relative tracking error ({tracker}): {error:.4f}")
    return 0


def _command_report(
    quick: bool,
    seed: int,
    output: str,
    workers: int,
    cache_dir: str | None,
    from_store: str | None = None,
) -> int:
    if from_store is not None:
        text = generate_report(store=_open_store(from_store))
    else:
        engine = ExecutionEngine(workers=workers)
        cache = _open_cache(cache_dir)
        run = None
        if cache is not None:
            run = lambda experiment_id: _run_one_cached(  # noqa: E731
                experiment_id, quick=quick, seed=seed, engine=engine, cache=cache
            )[0]
        text = generate_report(quick=quick, seed=seed, engine=engine, run=run)
    if output == "-":
        print(text)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {output}")
    return 0


# ----------------------------------------------------------------------
# Sweeps and the result store
# ----------------------------------------------------------------------


def _open_store(store_dir: str, *, must_exist: bool = True) -> ResultStore:
    store = ResultStore(store_dir)
    if must_exist and not store.exists():
        raise ValueError(f"no result store at {store_dir!r} (no _schema.json)")
    return store


def _sweep_pieces(args) -> tuple:
    """Common setup of the sweep subcommands: spec + store + checkpoint cache."""
    spec = load_spec(args.spec)
    store = ResultStore(args.store)
    cache_dir = args.cache_dir if args.cache_dir is not None else str(Path(args.store) / "cache")
    cache = _open_cache(cache_dir)
    return spec, store, cache


def _command_sweep_run(args, *, resume: bool) -> int:
    spec, store, cache = _sweep_pieces(args)
    shard = parse_shard(args.shard) if args.shard is not None else None
    if resume and cache is not None and not Path(cache.directory).is_dir():
        raise ValueError(
            f"nothing to resume: checkpoint cache {str(cache.directory)!r} does not exist "
            "(run 'repro sweep run' first)"
        )

    def progress(cell, status) -> None:
        _LOGGER.info("[%s] cell %d: %s — %s", spec.name, cell.index, cell.label(), status)

    outcome = run_sweep_spec(
        spec,
        workers=args.workers,
        cache=cache,
        store=store,
        max_cells=args.max_cells,
        progress=progress,
        shard=shard,
    )
    summary = outcome.summary()
    summary["store"] = str(store.directory)
    summary["rows"] = store.count()
    if args.json:
        print(dumps(summary))
    else:
        shard_note = f" (shard {summary['shard']}: {summary['shard_cells']} owned)" if shard else ""
        print(
            f"[{spec.name}] {summary['cells']} cells{shard_note}: {summary['computed']} computed, "
            f"{summary['cached']} cached, {summary['pending']} pending"
        )
        print(f"store: {store.directory} ({summary['rows']} rows in {len(store.segments())} segments)")
        if summary["pending"]:
            shard_flag = f" --shard {args.shard}" if args.shard is not None else ""
            print(
                f"resume with: repro sweep resume --spec {args.spec} --store {args.store}{shard_flag}"
            )
    return 0 if outcome.complete else 3


def _command_sweep_status(args) -> int:
    spec, store, cache = _sweep_pieces(args)
    status = sweep_status(spec, cache=cache, store=store if store.exists() else None)
    if args.json:
        print(dumps(status))
        return 0
    print(
        f"[{status['sweep']}] {status['cells']} cells: {status['cached']} cached, "
        f"{status['pending']} pending"
    )
    rows = [
        {
            "cell": entry["cell"],
            "target": f"{entry['target_kind']}:{entry['target']}",
            "params": ", ".join(f"{k}={v}" for k, v in sorted(entry["params"].items())),
            "cached": entry["cached"],
            "stored": entry["stored"],
        }
        for entry in status["per_cell"]
    ]
    print(format_records(rows, columns=["cell", "target", "params", "cached", "stored"]))
    return 0


def _parse_where(pairs: list[str]) -> dict:
    where = {}
    for pair in pairs:
        column, separator, value = pair.partition("=")
        if not separator or not column:
            raise ValueError(f"--where filters look like COL=VALUE, got {pair!r}")
        try:
            where[column] = json.loads(value)
        except ValueError:
            where[column] = value
    return where


def _split_columns(text: str | None) -> list[str] | None:
    if text is None:
        return None
    columns = [column.strip() for column in text.split(",") if column.strip()]
    if not columns:
        raise ValueError("--columns needs at least one column name")
    return columns


def _command_store_query(args) -> int:
    store = _open_store(args.store)
    columns = _split_columns(args.columns)
    metrics = [parse_metric(text) for text in args.aggregate]
    if args.by and not metrics:
        raise ValueError("--by only makes sense together with --aggregate")
    where = _parse_where(args.where) or None
    if metrics:
        # Aggregation needs the full-width rows (grouping and metric columns
        # may fall outside any --columns projection, which applies after).
        # One streaming pass: the row set is never materialised, so the
        # aggregate query runs out-of-core on stores larger than memory.
        rows = aggregate_stream(store.iter_select(where=where), by=args.by, metrics=metrics)
        if args.limit is not None:
            rows = rows[: args.limit]
        shown_columns = list(args.by) + ["n"] + [f"{stat}_{column}" for stat, column in metrics]
        if columns is not None:
            # Projection applies to the *aggregated* row shape here.
            unknown = [column for column in columns if column not in shown_columns]
            if unknown:
                raise ValueError(
                    f"--columns {unknown} not in the aggregated output; available: {shown_columns}"
                )
            rows = [{column: row.get(column) for column in columns} for row in rows]
            shown_columns = columns
    else:
        # select() applies the projection itself; the header union comes
        # from the rows in hand — no second scan of the store.
        rows = store.select(where=where, columns=columns, limit=args.limit)
        shown_columns = columns or sorted({key for row in rows for key in row})
    if args.json:
        print(dumps(rows))
    elif args.csv:
        sys.stdout.write(rows_to_csv(rows, columns=shown_columns))
    else:
        print(format_records(rows, columns=shown_columns, float_format=".4g"))
        print(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return 0


def _command_store_export(args) -> int:
    store = _open_store(args.store)
    count = store.export(args.output, fmt=args.format, columns=_split_columns(args.columns))
    print(f"wrote {count} rows to {args.output}")
    return 0


def _command_store_merge(args) -> int:
    summary = merge_stores(args.sources, args.into)
    if args.json:
        print(dumps(summary))
    else:
        print(
            f"merged {summary['sources']} store(s) into {summary['into']}: "
            f"{summary['segments_copied']} segment(s) copied, "
            f"{summary['segments_skipped']} already present, {summary['rows']} rows total"
        )
    return 0


def _command_bench_history(args) -> int:
    """Ingest bench artifacts, scan every series, gate on the trajectory.

    Exit codes: 0 = no regression, :data:`_EXIT_REGRESSION` = at least one
    series shows a statistically significant regression, 2 = CLI error —
    so CI can gate on perf *trajectory*, not just one-shot thresholds.
    """
    from repro.obs.history import analyze_history, ingest_artifact

    store = ResultStore(args.store)
    ingested = []
    for artifact in args.artifacts:
        outcome = ingest_artifact(store, artifact)
        ingested.append(outcome)
        _LOGGER.debug(
            "ingested %s as %s (%d records)%s",
            outcome["artifact"],
            outcome["segment"],
            outcome["records"],
            "" if outcome["ingested"] else " — already present, skipped",
        )
    report = analyze_history(
        store,
        metric=args.metric,
        window=args.window,
        threshold=args.threshold,
        z_threshold=args.z,
    )
    fresh = sum(1 for outcome in ingested if outcome["ingested"])
    report["ingested"] = fresh
    report["artifacts"] = ingested
    report["store"] = str(store.directory)
    if args.json:
        print(dumps(report))
    else:
        print(
            f"bench history: {fresh} artifact(s) ingested "
            f"({len(ingested) - fresh} already present), "
            f"{report['series_scanned']} series scanned on {args.metric!r}"
        )
        for series in report["series"]:
            label = "/".join(str(part) for part in (series["benchmark"], series["workload"], series["backend"]) if part)
            if series["status"] == "insufficient":
                print(
                    f"  {label}: {series['points']} point(s) — needs {series['required']} "
                    "to arm the detector"
                )
                continue
            verdict = []
            if series["regressions"]:
                verdict.append(f"{len(series['regressions'])} REGRESSION(S)")
            if series["improvements"]:
                verdict.append(f"{len(series['improvements'])} improvement(s)")
            print(f"  {label}: {series['points']} points — {', '.join(verdict) or 'stable'}")
        if report["regressions_detected"]:
            print(
                f"error: {report['regressions_detected']} perf regression(s) detected",
                file=sys.stderr,
            )
    return _EXIT_REGRESSION if report["regressions_detected"] else 0


def _command_serve(args) -> int:
    """Run the async job daemon (or dump its generated OpenAPI document)."""
    from repro.serve.api import ROUTES, ReproServer, serve_forever
    from repro.serve.jobs import JobManager
    from repro.serve.schema import openapi_document

    if args.serve_command == "schema":
        print(dumps(openapi_document(ROUTES)))
        return 0
    state_dir = Path(args.state_dir)
    cache = _open_cache(args.cache_dir if args.cache_dir is not None else str(state_dir / "cache"))
    manager = JobManager(
        cache=cache,
        jobs_dir=state_dir / "jobs",
        workers=args.workers,
        queue_depth=args.queue_depth,
        rate=args.rate,
        burst=args.burst,
    )
    try:
        server = ReproServer((args.host, args.port), manager)
    except OSError as error:
        raise ValueError(f"cannot bind {args.host}:{args.port}: {error}") from None
    host, port = server.server_address[:2]
    _LOGGER.info("repro serve listening on http://%s:%d (SIGTERM/SIGINT to stop)", host, port)
    _LOGGER.debug(
        "state: jobs=%s cache=%s workers=%d queue_depth=%d",
        state_dir / "jobs",
        cache.directory if cache is not None else None,
        args.workers,
        args.queue_depth,
    )
    serve_forever(server)
    _LOGGER.info("repro serve stopped")
    return 0


def _guarded(command, *arguments) -> int:
    """Uniform error envelope of every subcommand.

    One place instead of six per-command ``try`` blocks, so every
    subcommand — including ``serve`` — maps the same conditions to the
    same exit codes: expected operational failures (bad ids, malformed
    specs, unusable paths, store trouble) print ``error: ...`` and exit 2;
    ``BrokenPipeError`` and ``KeyboardInterrupt`` re-raise for the
    top-level guards in :func:`_dispatch` (exit 0 and 130 respectively).
    ``KeyError`` unwraps ``args[0]`` so the message is not repr-quoted.
    """
    try:
        return command(*arguments)
    except (BrokenPipeError, KeyboardInterrupt):
        raise
    except (KeyError, ValueError, OSError, StoreError) as error:
        message = error.args[0] if isinstance(error, KeyError) and error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2


def _route(args):
    """The (command, arguments) pair of one parsed invocation."""
    if args.command == "list":
        return _command_list, (args.json,)
    if args.command == "run":
        return _command_run, (
            args.experiment,
            args.quick,
            args.seed,
            args.json,
            args.figure,
            args.workers,
            args.cache_dir,
        )
    if args.command == "report":
        return _command_report, (
            args.quick,
            args.seed,
            args.output,
            args.workers,
            args.cache_dir,
            args.from_store,
        )
    if args.command == "sweep":
        if args.sweep_command == "status":
            return _command_sweep_status, (args,)
        return (lambda a: _command_sweep_run(a, resume=a.sweep_command == "resume")), (args,)
    if args.command == "store":
        if args.store_command == "query":
            return _command_store_query, (args,)
        if args.store_command == "merge":
            return _command_store_merge, (args,)
        return _command_store_export, (args,)
    if args.command == "bench":
        return _command_bench_history, (args,)
    if args.command == "serve":
        return _command_serve, (args,)
    if args.scenario_command == "list":
        return _command_scenario_list, (args.json,)
    return _command_scenario_run, (
        args.scenario,
        args.rounds,
        args.replicates,
        args.quick,
        args.seed,
        args.json,
        args.workers,
        args.cache_dir,
    )


def _dispatch(args) -> int:
    """Route one parsed invocation through the uniform error envelope."""
    command, arguments = _route(args)
    try:
        return _guarded(command, *arguments)
    except BrokenPipeError:  # pragma: no cover - depends on the consumer
        # The downstream consumer (e.g. `| head`) closed the pipe; park
        # stdout on /dev/null so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:
        # ^C is a clean stop, not a stack trace: the conventional
        # 128+SIGINT code, uniformly for every subcommand.
        print("interrupted", file=sys.stderr)
        return 130


def _command_label(args) -> str:
    """The full command path of an invocation, e.g. ``sweep run``."""
    parts = [args.command]
    for attribute in (
        "sweep_command",
        "store_command",
        "scenario_command",
        "bench_command",
        "serve_command",
    ):
        sub = getattr(args, attribute, None)
        if sub:
            parts.append(sub)
    return " ".join(parts)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro``."""
    args = _build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    if getattr(args, "backend", None) is not None:
        # Set process-wide rather than threading it through every experiment
        # signature. For the bit-identical simulating backends this is purely
        # a performance switch; "analytic" also changes what run_kernel
        # returns (expectations, not samples), which the cache key accounts
        # for (see Submission.cache_key).
        set_default_backend(args.backend)
    if getattr(args, "shard_workers", None) is not None:
        # Same process-wide pattern. Sharding changes the RNG discipline
        # (per-replicate SeedSequence children; identical for every K), so
        # the cache key folds the discipline in — not the K, which cannot
        # change records.
        set_default_shard_workers(args.shard_workers)

    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir is None:
        return _dispatch(args)

    # Telemetry is observation-only: the recorder wraps the whole dispatch
    # in one "run" span, and every probe in kernel/scheduler/cache/sweeps
    # reports into it without touching a single random draw.
    command = _command_label(args)
    recorder = TelemetryRecorder(
        directory=telemetry_dir,
        level="events",
        provenance={"command": command, "seed_root": getattr(args, "seed", None)},
    )
    previous = set_telemetry(recorder)
    try:
        with recorder.span("run", command=command):
            exit_code = _dispatch(args)
        recorder.gauge("run.exit_code", exit_code)
        return exit_code
    finally:
        set_telemetry(previous)
        try:
            summary_path = recorder.write()
        except OSError as error:  # pragma: no cover - disk-full etc.
            print(f"error: could not write telemetry to {telemetry_dir!r}: {error}", file=sys.stderr)
        else:
            _LOGGER.debug("telemetry summary written to %s", summary_path)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
